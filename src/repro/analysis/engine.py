"""The analysis engine: file collection, two passes, suppression, report.

Pass 1 parses every file once (:func:`repro.analysis.facts.collect_facts`)
and runs the per-file rules. Pass 2 merges the cross-module facts: the
``EVENT_SCHEMA`` table and every emit site feed the typed schema
cross-check (R4), and the project-wide call graph
(:mod:`repro.analysis.callgraph`) feeds the effect inference
(:mod:`repro.analysis.effects`) and the whole-program rules — the
interprocedural R1/R2/R3 boundary findings and R10 fabric hygiene.
Suppressions (inline allow comments and the allowlist file) are applied
last, then audited: an allow comment that never absorbed a diagnostic
is itself an R8 finding.

The report is deliberately deterministic: diagnostics are sorted, the
JSON form uses sorted keys and fixed separators, and nothing in it
derives from the wall clock — the linter obeys the same discipline it
enforces.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.analysis.diagnostics import (
    AllowEntry,
    Diagnostic,
    Suppression,
    load_allowlist,
    parse_suppressions,
)
from repro.analysis.callgraph import build_call_graph
from repro.analysis.effects import EffectAnalysis
from repro.analysis.facts import (
    EmitSite,
    FileFacts,
    SchemaDef,
    collect_facts,
)
from repro.analysis.rules import (
    RULE_IDS,
    RULES,
    check_file,
    check_project,
    check_schema,
)

__all__ = ["AnalysisReport", "run_analysis"]

#: Default allowlist filename, discovered in the working directory.
ALLOWLIST_NAME = "analysis-allowlist.txt"

#: The mypy-strict ratchet file; its module prefixes gate which class
#: annotations the typed schema inference trusts.
STRICT_RATCHET = Path("tools") / "typing-strict.txt"


def _strict_prefixes(root: Optional[Path] = None) -> tuple[str, ...]:
    """Module prefixes under the mypy-strict ratchet, if the file is
    discoverable from the working directory (the repo root in CI)."""
    candidate = (root or Path(".")) / STRICT_RATCHET
    if not candidate.exists():
        return ()
    prefixes = []
    for line in candidate.read_text().splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            prefixes.append(line)
    return tuple(prefixes)


@dataclass
class AnalysisReport:
    """Everything one analysis run produced."""

    paths: list[str]
    files_checked: int
    diagnostics: list[Diagnostic]
    suppressed: list[tuple[Diagnostic, str]]
    suppressions: list[Suppression]
    allowlist: list[AllowEntry]
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.diagnostics and not self.errors

    def counts(self) -> dict[str, int]:
        counts = {rule.rule_id: 0 for rule in RULES}
        for diagnostic in self.diagnostics:
            counts[diagnostic.rule] = counts.get(diagnostic.rule, 0) + 1
        return counts

    def to_dict(self) -> dict[str, object]:
        return {
            "version": 1,
            "tool": "repro.analysis",
            "paths": list(self.paths),
            "files_checked": self.files_checked,
            "ok": self.ok,
            "counts": self.counts(),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "suppressed": [
                {**diagnostic.to_dict(), "reason": reason}
                for diagnostic, reason in self.suppressed
            ],
            "suppressions": [s.to_dict() for s in self.suppressions],
            "allowlist": [entry.to_dict() for entry in self.allowlist],
            "errors": list(self.errors),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def render_text(self) -> str:
        lines: list[str] = []
        for error in self.errors:
            lines.append(f"error: {error}")
        for diagnostic in self.diagnostics:
            lines.append(diagnostic.render())
        n_suppressed = len(self.suppressed)
        summary = (
            f"{self.files_checked} file(s) checked,"
            f" {len(self.diagnostics)} finding(s),"
            f" {n_suppressed} suppressed"
        )
        lines.append(summary)
        return "\n".join(lines)


def _collect_python_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def run_analysis(
    paths: list[Path],
    allowlist_path: Optional[Path] = None,
) -> AnalysisReport:
    """Analyze every ``*.py`` under ``paths``; returns the full report.

    ``allowlist_path=None`` auto-discovers ``analysis-allowlist.txt`` in
    the current working directory (the repo root in CI); pass an explicit
    path to pin it, or a nonexistent one to run with no allowlist.
    """
    if allowlist_path is None:
        candidate = Path(ALLOWLIST_NAME)
        allowlist = load_allowlist(candidate) if candidate.exists() else []
    elif allowlist_path.exists():
        allowlist = load_allowlist(allowlist_path)
    else:
        allowlist = []

    errors: list[str] = []
    diagnostics: list[Diagnostic] = []
    suppressions: list[Suppression] = []
    modules: dict[str, str] = {}
    all_facts: list[FileFacts] = []
    facts_by_file: dict[str, FileFacts] = {}
    all_sites: list[EmitSite] = []
    all_defs: list[SchemaDef] = []
    files = _collect_python_files(paths)

    for path in files:
        display = path.as_posix()
        try:
            facts = collect_facts(path, display)
        except (OSError, SyntaxError) as exc:
            errors.append(f"{display}: {exc}")
            continue
        modules[display] = facts.module
        all_facts.append(facts)
        facts_by_file[display] = facts
        all_sites.extend(facts.emit_sites)
        all_defs.extend(facts.schema_defs)
        file_suppressions, r8_problems = parse_suppressions(
            facts.source, display, RULE_IDS
        )
        suppressions.extend(file_suppressions)
        diagnostics.extend(r8_problems)
        diagnostics.extend(check_file(facts))

    graph = build_call_graph(all_facts, strict_prefixes=_strict_prefixes())
    effects = EffectAnalysis(graph)
    diagnostics.extend(check_schema(all_sites, all_defs, graph, facts_by_file))
    diagnostics.extend(check_project(all_facts, graph, effects))

    # Apply suppressions: inline comments first, then allowlist entries.
    # R8 findings are never suppressible — exemptions must stay auditable.
    active: list[Diagnostic] = []
    suppressed: list[tuple[Diagnostic, str]] = []
    for diagnostic in sorted(diagnostics):
        absorbed = False
        if diagnostic.rule != "R8":
            for suppression in suppressions:
                if suppression.covers(diagnostic):
                    suppression.used = True
                    suppressed.append((diagnostic, suppression.reason))
                    absorbed = True
                    break
            if not absorbed:
                module = modules.get(diagnostic.file, "")
                for entry in allowlist:
                    if entry.covers(diagnostic, module):
                        entry.matches += 1
                        suppressed.append((diagnostic, entry.reason))
                        absorbed = True
                        break
        if not absorbed:
            active.append(diagnostic)

    # Audit: every inline suppression must have absorbed something.
    for suppression in suppressions:
        if not suppression.used:
            active.append(
                Diagnostic(
                    suppression.file,
                    suppression.line,
                    0,
                    "R8",
                    "unused suppression: no"
                    f" {'/'.join(suppression.rules)} finding on the"
                    " covered line — remove the allow comment",
                )
            )

    return AnalysisReport(
        paths=[p.as_posix() for p in paths],
        files_checked=len(files),
        diagnostics=sorted(active),
        suppressed=suppressed,
        suppressions=suppressions,
        allowlist=allowlist,
        errors=errors,
    )
