"""SARIF 2.1.0 rendering of an analysis report.

SARIF is the interchange format GitHub code scanning ingests; emitting
it lets CI annotate findings on the PR diff instead of burying them in
a job log. The mapping is intentionally small: one run, one driver,
every rule in the catalog, one ``result`` per surviving diagnostic.
Suppressed findings are NOT exported — the allowlist and inline allow
comments are this repo's suppression mechanism, and re-exporting them
would just duplicate that state in a second system.

Determinism contract: same tree, same report, byte-identical SARIF
(sorted keys, no timestamps), matching the JSON report's guarantee.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules import RULES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.engine import AnalysisReport

__all__ = ["SARIF_VERSION", "to_sarif", "render_sarif"]

SARIF_VERSION = "2.1.0"
_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"


def _rule_descriptor(rule_id: str, name: str, summary: str) -> dict:
    return {
        "id": rule_id,
        "name": name,
        "shortDescription": {"text": summary},
        "defaultConfiguration": {"level": "error"},
    }


def _result(diagnostic: Diagnostic) -> dict:
    # AST columns are 0-based; SARIF columns are 1-based.
    return {
        "ruleId": diagnostic.rule,
        "level": "error",
        "message": {"text": diagnostic.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": diagnostic.file,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": diagnostic.line,
                        "startColumn": diagnostic.col + 1,
                    },
                }
            }
        ],
    }


def to_sarif(report: "AnalysisReport") -> dict:
    """The report as a SARIF 2.1.0 log object (plain dict)."""
    return {
        "$schema": _SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "informationUri": (
                            "https://example.invalid/docs/static-analysis"
                        ),
                        "rules": [
                            _rule_descriptor(
                                rule.rule_id, rule.name, rule.summary
                            )
                            for rule in RULES
                        ],
                    }
                },
                "columnKind": "utf16CodeUnits",
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": [_result(d) for d in report.diagnostics],
                "invocations": [
                    {
                        "executionSuccessful": not report.errors,
                        "toolExecutionNotifications": [
                            {
                                "level": "error",
                                "message": {"text": error},
                            }
                            for error in report.errors
                        ],
                    }
                ],
            }
        ],
    }


def render_sarif(report: "AnalysisReport") -> str:
    """Deterministic JSON text of the SARIF log (sorted keys)."""
    return json.dumps(to_sarif(report), sort_keys=True, indent=2) + "\n"
