"""Command-line front end: ``python -m repro.analysis`` / ``repro lint``.

Exit status: 0 when the tree is clean, 1 when any finding (or parse
error) survives suppression, 2 on usage/configuration errors — the same
contract as the event-stream validator, so CI treats both uniformly.

``--smoke`` runs the self-test against the checked-in fixture corpus
(``tests/analysis/fixtures``): the ``bad`` tree must trip every rule,
the ``good`` tree must come back clean. CI runs it so a regression in
the linter itself — a rule that silently stops firing — fails the build
even before the fixture unit tests run.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.engine import run_analysis
from repro.analysis.rules import RULES

__all__ = ["build_parser", "main", "run_smoke"]

#: Fixture corpus location, relative to the working directory (repo root).
FIXTURES = Path("tests/analysis/fixtures")


def build_parser() -> argparse.ArgumentParser:
    """The linter's argument parser (kept separate for testing)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Determinism & event-schema linter: whole-program checks"
            " R1..R10 over the given files or directories."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="stdout format (default: text diagnostics + summary)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="also write the canonical JSON report to this file",
    )
    parser.add_argument(
        "--sarif",
        default=None,
        metavar="FILE",
        help="also write a SARIF 2.1.0 log to this file (CI upload)",
    )
    parser.add_argument(
        "--allowlist",
        default=None,
        help="allowlist file (default: ./analysis-allowlist.txt if present)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="self-test against the fixture corpus and exit",
    )
    return parser


def run_smoke(fixtures: Path = FIXTURES) -> int:
    """Fixture-corpus self-test; returns a process exit code."""
    bad = fixtures / "bad"
    good = fixtures / "good"
    if not bad.is_dir() or not good.is_dir():
        print(f"error: fixture corpus not found under {fixtures}")
        return 2
    failures: list[str] = []

    bad_report = run_analysis([bad], allowlist_path=fixtures / "missing")
    fired = {d.rule for d in bad_report.diagnostics}
    for rule in RULES:
        if rule.rule_id not in fired:
            failures.append(
                f"rule {rule.rule_id} ({rule.name}) did not fire on the"
                " bad corpus"
            )

    good_report = run_analysis([good], allowlist_path=fixtures / "missing")
    for diagnostic in good_report.diagnostics:
        failures.append(f"good corpus not clean: {diagnostic.render()}")
    for error in good_report.errors + bad_report.errors:
        failures.append(f"fixture parse error: {error}")

    if failures:
        for failure in failures:
            print(failure)
        print(f"smoke: FAIL ({len(failures)} problem(s))")
        return 1
    print(
        f"smoke: OK — all {len(RULES)} rules fire on the bad corpus"
        f" ({len(bad_report.diagnostics)} findings), good corpus clean"
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            scope = "sim-path" if rule.sim_path_only else "all files"
            print(f"{rule.rule_id}  {rule.name:<20} [{scope}] {rule.summary}")
        return 0

    if args.smoke:
        return run_smoke()

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for path in missing:
            print(f"error: no such path {path}", file=sys.stderr)
        return 2

    allowlist = Path(args.allowlist) if args.allowlist is not None else None
    report = run_analysis(paths, allowlist_path=allowlist)

    if args.out is not None:
        Path(args.out).write_text(report.to_json())
    if args.sarif is not None:
        from repro.analysis.sarif import render_sarif

        Path(args.sarif).write_text(render_sarif(report))
    if args.format == "json":
        sys.stdout.write(report.to_json())
    elif args.format == "sarif":
        from repro.analysis.sarif import render_sarif

        sys.stdout.write(render_sarif(report))
    else:
        print(report.render_text())
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
