"""Effect inference: intrinsic nondeterminism sites and taint chains.

Three effect kinds form the taint lattice (absent < present, one bit
per kind, joined over call edges):

* ``wall-clock`` — the function reads host time (R1's subject);
* ``unseeded-rng`` — it draws OS entropy or global RNG state (R2);
* ``iteration-order`` — it iterates a set on an ordering-sensitive
  position (R3).

This module owns the *classifiers* for those primitives — the single
source of truth shared by the local rules in
:mod:`repro.analysis.rules` and by the interprocedural pass — and the
propagation itself: every function's intrinsic sites are collected,
then taints flow from callee to caller over the call graph until a
fixed point, keeping the lexicographically-shortest witness chain per
(function, kind) so diagnostics are deterministic.

**Budget-confined wall-clock reads do not propagate.** A read whose
value is only ever compared (``time.monotonic() > deadline``) or
assigned to locals that are themselves only compared or arithmetically
folded into other such locals enforces a time budget without letting
host time reach a result, an event payload, or a digest — the exact
carve-out the allowlist grants the optimizer's ``time_limit`` plumbing.
A read that escapes any other way (returned, stored on ``self``,
passed as an argument, put in a container) taints the function.

Suppressing an intrinsic site (inline or via the allowlist) does *not*
clear the taint: the waiver covers the site itself, not every sim-path
caller two hops away. That asymmetry is the point of the pass.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.analysis.callgraph import CallGraph, FuncInfo
from repro.analysis.facts import FileFacts, resolve_call_target

__all__ = [
    "EffectAnalysis",
    "KIND_ITERATION",
    "KIND_RNG",
    "KIND_RULES",
    "KIND_WALLCLOCK",
    "PrimitiveSite",
    "TaintStep",
    "classify_unseeded",
    "iter_iteration_sites",
    "iter_wallclock_calls",
    "wallclock_aliases",
]

KIND_WALLCLOCK = "wall-clock"
KIND_RNG = "unseeded-rng"
KIND_ITERATION = "iteration-order"

#: Effect kind -> the rule that fires at a tainted sim-path call site.
KIND_RULES: dict[str, str] = {
    KIND_WALLCLOCK: "R1",
    KIND_RNG: "R2",
    KIND_ITERATION: "R3",
}

# ----------------------------------------------------------------------
# Wall-clock primitives (R1's subject)
# ----------------------------------------------------------------------

WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


def wallclock_aliases(facts: FileFacts) -> dict[str, str]:
    """Local aliases like ``monotonic = time.monotonic`` (a common
    hot-loop micro-optimization) must not evade the rule: calls through
    such a name are wall-clock reads too."""
    aliases: dict[str, str] = {}
    for node in ast.walk(facts.tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target_node = node.targets[0]
            if isinstance(target_node, ast.Name):
                resolved = resolve_call_target(facts, node.value)
                if resolved in WALLCLOCK_CALLS:
                    aliases[target_node.id] = resolved
    return aliases


def iter_wallclock_calls(
    facts: FileFacts,
    root: Optional[ast.AST] = None,
    aliases: Optional[dict[str, str]] = None,
) -> Iterator[tuple[ast.Call, str]]:
    """Every wall-clock read under ``root`` (default: the whole file)."""
    if aliases is None:
        aliases = wallclock_aliases(facts)
    for node in ast.walk(root if root is not None else facts.tree):
        if not isinstance(node, ast.Call):
            continue
        target = resolve_call_target(facts, node.func)
        if target in aliases:
            target = aliases[target]
        if target in WALLCLOCK_CALLS:
            assert target is not None
            yield node, target


# ----------------------------------------------------------------------
# Entropy / unseeded-RNG primitives (R2's subject)
# ----------------------------------------------------------------------

ENTROPY_CALLS = frozenset(
    {
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.randbelow",
    }
)

#: numpy.random constructors that are fine *when given a seed argument*.
NUMPY_SEEDED_CTORS = frozenset(
    {
        "default_rng",
        "RandomState",
        "Generator",
        "SeedSequence",
        "PCG64",
        "Philox",
        "MT19937",
        "SFC64",
    }
)


def classify_unseeded(
    target: Optional[str], has_seed_arg: bool
) -> Optional[str]:
    """The R2 complaint for one resolved call target, or ``None``."""
    if target is None:
        return None
    if target in ENTROPY_CALLS:
        return (
            f"{target}() draws OS entropy; derive values from an"
            " explicit seed instead"
        )
    if target in ("random.Random", "numpy.random.default_rng"):
        if not has_seed_arg:
            return (
                f"{target}() without a seed argument: construct"
                " RNGs from an explicit seed parameter"
            )
        return None
    if target == "random.SystemRandom":
        return (
            "random.SystemRandom draws OS entropy and can never"
            " be seeded"
        )
    if target.startswith("random."):
        return (
            f"{target}() uses the shared module-level RNG; construct"
            " random.Random(seed) from an explicit seed parameter"
        )
    if target.startswith("numpy.random."):
        member = target.rsplit(".", 1)[1]
        if member in NUMPY_SEEDED_CTORS:
            if not has_seed_arg:
                return (
                    f"{target}() without a seed argument: pass an"
                    " explicit seed"
                )
            return None
        return (
            f"{target}() uses numpy's global RNG state; use"
            " numpy.random.default_rng(seed) instead"
        )
    return None


def iter_unseeded_calls(
    facts: FileFacts, root: Optional[ast.AST] = None
) -> Iterator[tuple[ast.Call, str, str]]:
    """``(node, target, message)`` for every R2-positive call."""
    for node in ast.walk(root if root is not None else facts.tree):
        if not isinstance(node, ast.Call):
            continue
        target = resolve_call_target(facts, node.func)
        has_seed_arg = bool(node.args) or bool(node.keywords)
        message = classify_unseeded(target, has_seed_arg)
        if message is not None:
            assert target is not None
            yield node, target, message


# ----------------------------------------------------------------------
# Ordering-sensitive set iteration (R3's subject)
# ----------------------------------------------------------------------

_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate"})
_ORDER_NEUTRAL_WRAPPERS = frozenset(
    {"sorted", "len", "min", "max", "sum", "any", "all", "set", "frozenset"}
)


def _set_typed_names(tree: ast.AST) -> set[str]:
    """Names assigned from set-valued expressions anywhere in ``tree``."""
    names: set[str] = set()
    for node in ast.walk(tree):
        value: Optional[ast.expr] = None
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, ast.AnnAssign):
            value, targets = node.value, [node.target]
        if value is None or not _is_set_expr(value, names):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _is_set_expr(node: ast.expr, set_names: set[str]) -> bool:
    """Whether ``node`` evaluates to a set (syntactically)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute):
            if func.attr == "keys" and not node.args:
                return True
            if func.attr in _SET_METHODS:
                return True
    return False


def _sorted_ancestor(facts: FileFacts, node: ast.AST) -> bool:
    """Whether an enclosing call neutralizes iteration order."""
    for ancestor in facts.ancestors(node):
        if isinstance(ancestor, ast.Call):
            func = ancestor.func
            if (
                isinstance(func, ast.Name)
                and func.id in _ORDER_NEUTRAL_WRAPPERS
            ):
                return True
        if isinstance(ancestor, ast.stmt):
            break
    return False


def iter_iteration_sites(
    facts: FileFacts,
    root: Optional[ast.AST] = None,
    set_names: Optional[set[str]] = None,
) -> Iterator[tuple[ast.expr, str]]:
    """``(node, context)`` for every unsorted ordering-sensitive set
    iteration under ``root`` (default: the whole file)."""
    scope = root if root is not None else facts.tree
    if set_names is None:
        set_names = _set_typed_names(facts.tree)
    for node in ast.walk(scope):
        if isinstance(node, ast.For):
            if _is_set_expr(node.iter, set_names):
                if not _sorted_ancestor(facts, node.iter):
                    yield node.iter, "in a for loop"
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            # SetComp is exempt: its result is itself a set, so the
            # iteration order of its source can never be observed.
            for generator in node.generators:
                if _is_set_expr(generator.iter, set_names):
                    if not _sorted_ancestor(facts, generator.iter):
                        yield generator.iter, "in a comprehension"
        elif isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else None
            is_join = isinstance(func, ast.Attribute) and func.attr == "join"
            if (name in _ORDER_SENSITIVE_CALLS or is_join) and node.args:
                if _is_set_expr(node.args[0], set_names):
                    if not _sorted_ancestor(facts, node.args[0]):
                        yield node.args[0], f"passed to {name or 'join'}()"


# ----------------------------------------------------------------------
# Budget confinement: wall-clock reads that never escape a comparison
# ----------------------------------------------------------------------

_FOLD_NODES = (ast.BinOp, ast.UnaryOp, ast.IfExp, ast.BoolOp)


def _enclosing_statement(
    facts: FileFacts, node: ast.AST
) -> Optional[ast.stmt]:
    current: Optional[ast.AST] = node
    while current is not None and not isinstance(current, ast.stmt):
        current = facts.parent_of(current)
    return current if isinstance(current, ast.stmt) else None


def _compare_guarded(facts: FileFacts, node: ast.AST) -> bool:
    """True when ``node`` only feeds a comparison within its statement."""
    for ancestor in facts.ancestors(node):
        if isinstance(ancestor, ast.Compare):
            return True
        if isinstance(ancestor, ast.stmt):
            return False
        if not isinstance(ancestor, _FOLD_NODES):
            return False
    return False


def _fold_target(facts: FileFacts, node: ast.AST) -> Optional[str]:
    """The local name this value folds into, if the whole path from the
    use to the assignment passes only through arithmetic/conditional
    operators (``deadline = start + limit`` keeps ``deadline`` in the
    budget-tracked set)."""
    for ancestor in facts.ancestors(node):
        if isinstance(ancestor, (ast.BinOp, ast.UnaryOp, ast.IfExp)):
            continue
        if isinstance(ancestor, ast.Assign) and len(ancestor.targets) == 1:
            target = ancestor.targets[0]
            if isinstance(target, ast.Name):
                return target.id
        return None
    return None


def budget_confined(
    facts: FileFacts, func_node: ast.AST, call: ast.Call
) -> bool:
    """Whether one wall-clock read is provably budget-only.

    The read may feed comparisons and locals that themselves only feed
    comparisons (transitively, through arithmetic folds). Any other
    use — return, argument, attribute store, container — escapes.
    """
    if _compare_guarded(facts, call):
        return True
    statement = _enclosing_statement(facts, call)
    if isinstance(statement, ast.Expr):
        return True  # result discarded
    tracked = _fold_target(facts, call)
    if tracked is None:
        return False
    pending = [tracked]
    confined: set[str] = set()
    while pending:
        name = pending.pop()
        if name in confined:
            continue
        confined.add(name)
        for node in ast.walk(func_node):
            if not (isinstance(node, ast.Name) and node.id == name):
                continue
            if isinstance(node.ctx, ast.Store):
                continue
            if _compare_guarded(facts, node):
                continue
            folded = _fold_target(facts, node)
            if folded is not None and folded != name:
                pending.append(folded)
                continue
            # ``is None`` guards and plain re-assignment sources are
            # comparisons/stores; anything else escapes.
            return False
    return True


# ----------------------------------------------------------------------
# Intrinsic sites and propagation
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PrimitiveSite:
    """One intrinsic nondeterminism site inside one function."""

    kind: str
    line: int
    col: int
    detail: str  # e.g. ``time.monotonic`` or ``random.random``
    budget_only: bool = False


@dataclass(frozen=True)
class TaintStep:
    """One hop of a witness chain: what is called, and where."""

    name: str
    file: str
    line: int

    def render(self) -> str:
        return f"{self.name} ({self.file}:{self.line})"


Chain = tuple[TaintStep, ...]


def _chain_key(chain: Chain) -> tuple[int, tuple[str, ...]]:
    return len(chain), tuple(step.render() for step in chain)


class EffectAnalysis:
    """Per-function intrinsic sites plus propagated taint chains."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        #: function qualname -> its intrinsic primitive sites.
        self.intrinsic: dict[str, list[PrimitiveSite]] = {}
        #: function qualname -> kind -> shortest witness chain. The
        #: chain's first step is what the function itself calls; the
        #: last step is the primitive read.
        self.taints: dict[str, dict[str, Chain]] = {}
        #: Per-file memos: alias maps and set-typed names are functions
        #: of the whole file, so computing them per enclosed function
        #: would make collection quadratic in file size.
        self._aliases: dict[str, dict[str, str]] = {}
        self._set_names: dict[str, set[str]] = {}
        self._run()

    # -- collection ----------------------------------------------------

    def _file_memos(self, facts: FileFacts) -> tuple[dict[str, str], set[str]]:
        if facts.file not in self._aliases:
            self._aliases[facts.file] = wallclock_aliases(facts)
            self._set_names[facts.file] = _set_typed_names(facts.tree)
        return self._aliases[facts.file], self._set_names[facts.file]

    def _collect_function(self, info: FuncInfo) -> list[PrimitiveSite]:
        facts = info.facts
        aliases, set_names = self._file_memos(facts)
        nested_ranges = [
            (child.lineno, child.end_lineno or child.lineno)
            for child in ast.walk(info.node)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            and child is not info.node
        ]

        def owned(node: ast.AST) -> bool:
            line = getattr(node, "lineno", None)
            if line is None:
                return False
            return not any(
                start <= line <= end for start, end in nested_ranges
            )

        sites: list[PrimitiveSite] = []
        for call, target in iter_wallclock_calls(facts, info.node, aliases):
            if not owned(call):
                continue
            sites.append(
                PrimitiveSite(
                    kind=KIND_WALLCLOCK,
                    line=call.lineno,
                    col=call.col_offset,
                    detail=target,
                    budget_only=budget_confined(facts, info.node, call),
                )
            )
        for call, target, _message in iter_unseeded_calls(facts, info.node):
            if not owned(call):
                continue
            sites.append(
                PrimitiveSite(
                    kind=KIND_RNG,
                    line=call.lineno,
                    col=call.col_offset,
                    detail=target,
                )
            )
        for expr, context in iter_iteration_sites(facts, info.node, set_names):
            if not owned(expr):
                continue
            sites.append(
                PrimitiveSite(
                    kind=KIND_ITERATION,
                    line=expr.lineno,
                    col=expr.col_offset,
                    detail=f"set iteration {context}",
                )
            )
        sites.sort(key=lambda s: (s.line, s.col, s.kind))
        return sites

    # -- propagation ---------------------------------------------------

    def _run(self) -> None:
        for qualname, info in self.graph.functions.items():
            sites = self._collect_function(info)
            self.intrinsic[qualname] = sites
            chains: dict[str, Chain] = {}
            for site in sites:
                if site.kind == KIND_WALLCLOCK and site.budget_only:
                    continue
                step = TaintStep(
                    name=f"{site.detail}()"
                    if site.kind != KIND_ITERATION
                    else site.detail,
                    file=info.file,
                    line=site.line,
                )
                candidate: Chain = (step,)
                held = chains.get(site.kind)
                if held is None or _chain_key(candidate) < _chain_key(held):
                    chains[site.kind] = candidate
            if chains:
                self.taints[qualname] = chains

        # Fixed point: flow callee taints to callers, always keeping
        # the (length, text)-minimal chain so reports are stable.
        changed = True
        while changed:
            changed = False
            for site in self.graph.call_sites:
                callee_taints = self.taints.get(site.callee)
                if not callee_taints:
                    continue
                caller = site.caller
                if caller not in self.graph.functions:
                    continue  # module-level call: nothing to taint
                hop = TaintStep(
                    name=site.callee, file=site.file, line=site.line
                )
                held_map = self.taints.setdefault(caller, {})
                for kind, chain in callee_taints.items():
                    candidate = (hop, *chain)
                    if len(candidate) > 12:
                        continue  # depth bound; cycles stay finite
                    held = held_map.get(kind)
                    if held is None or _chain_key(candidate) < _chain_key(
                        held
                    ):
                        held_map[kind] = candidate
                        changed = True

    # -- queries -------------------------------------------------------

    def taint_of(self, qualname: str) -> dict[str, Chain]:
        """Every propagated effect of one function (empty if clean)."""
        return self.taints.get(qualname, {})

    def render_chain(self, chain: Chain) -> str:
        return " -> ".join(step.render() for step in chain)
