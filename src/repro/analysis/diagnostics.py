"""Diagnostics, inline suppressions, and the allowlist file.

A :class:`Diagnostic` is one finding: file, position, rule id, message.
Two suppression channels exist, both inventoried in the report so every
exemption stays visible:

* inline comments — ``# repro: allow[R1] reason=fabric profiling`` on
  the offending line, or standing alone on the line(s) just above it;
  several ids may be listed (``allow[R1,R3]``) and the reason is
  mandatory (a reasonless or unknown-id allow is itself an R8 finding);
* the allowlist file — ``<glob> <rule-id|*> <reason>`` lines matched
  against both the dotted module name and the repo-relative path, for
  sites where a whole module is legitimately exempt (e.g. the wall-clock
  profiling in ``repro.experiments.parallel``).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path

__all__ = [
    "AllowEntry",
    "Diagnostic",
    "Suppression",
    "load_allowlist",
    "parse_suppressions",
]

#: A full, well-formed allow comment. The rule-id list is captured in
#: group 1 and the (mandatory) reason in group 2.
_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]\s*reason=(.+)\s*$"
)

#: Anything that *looks* like it tried to be an allow comment. Used to
#: flag malformed suppressions (R8) instead of silently ignoring them.
_ALLOW_ATTEMPT_RE = re.compile(r"#\s*repro:")


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: ``file:line:col rule message``."""

    file: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.file}:{self.line}:{self.col} {self.rule} {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass
class Suppression:
    """One parsed ``# repro: allow[...]`` comment.

    ``target_line`` is the source line the suppression covers: the
    comment's own line for trailing comments, the next code line for
    standalone ones. ``used`` flips when a diagnostic is absorbed.
    """

    file: str
    line: int
    target_line: int
    rules: tuple[str, ...]
    reason: str
    used: bool = field(default=False, compare=False)

    def covers(self, diagnostic: Diagnostic) -> bool:
        return (
            diagnostic.file == self.file
            and diagnostic.line == self.target_line
            and diagnostic.rule in self.rules
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "file": self.file,
            "line": self.line,
            "rules": list(self.rules),
            "reason": self.reason,
            "used": self.used,
        }


@dataclass
class AllowEntry:
    """One allowlist-file line: a module/path glob, a rule id, a reason."""

    pattern: str
    rule: str
    reason: str
    matches: int = field(default=0, compare=False)

    def covers(self, diagnostic: Diagnostic, module: str) -> bool:
        if self.rule != "*" and self.rule != diagnostic.rule:
            return False
        return fnmatchcase(module, self.pattern) or fnmatchcase(
            diagnostic.file, self.pattern
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "pattern": self.pattern,
            "rule": self.rule,
            "reason": self.reason,
            "matches": self.matches,
        }


def parse_suppressions(
    source: str, file: str, known_rules: frozenset[str]
) -> tuple[list[Suppression], list[Diagnostic]]:
    """Extract allow comments from ``source``.

    Returns the well-formed suppressions plus R8 diagnostics for
    malformed attempts (missing ``reason=``, unknown rule ids, bad
    syntax). Standalone comments bind to the next code line; a block of
    consecutive standalone comments all bind to the same statement.
    """
    suppressions: list[Suppression] = []
    problems: list[Diagnostic] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except tokenize.TokenizeError:
        return [], []

    code_lines: set[int] = set()
    comment_tokens: list[tokenize.TokenInfo] = []
    for token in tokens:
        if token.type == tokenize.COMMENT:
            comment_tokens.append(token)
        elif token.type not in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        ):
            for lineno in range(token.start[0], token.end[0] + 1):
                code_lines.add(lineno)

    sorted_code_lines = sorted(code_lines)

    def next_code_line(after: int) -> int:
        for lineno in sorted_code_lines:
            if lineno > after:
                return lineno
        return after

    for token in comment_tokens:
        line, col = token.start
        text = token.string
        match = _ALLOW_RE.search(text)
        if match is None:
            if _ALLOW_ATTEMPT_RE.search(text):
                problems.append(
                    Diagnostic(
                        file,
                        line,
                        col,
                        "R8",
                        "malformed suppression comment: expected"
                        " '# repro: allow[RULE] reason=...'",
                    )
                )
            continue
        rules = tuple(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        reason = match.group(2).strip()
        unknown = sorted(set(rules) - known_rules)
        if unknown or not rules or not reason:
            detail = (
                f"unknown rule id(s) {', '.join(unknown)}"
                if unknown
                else "empty rule list or reason"
            )
            problems.append(
                Diagnostic(
                    file,
                    line,
                    col,
                    "R8",
                    f"invalid suppression comment: {detail}",
                )
            )
            continue
        target = line if line in code_lines else next_code_line(line)
        suppressions.append(Suppression(file, line, target, rules, reason))

    return suppressions, problems


def load_allowlist(path: Path) -> list[AllowEntry]:
    """Parse an allowlist file; raises ``ValueError`` on malformed lines."""
    entries: list[AllowEntry] = []
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(None, 2)
        if len(parts) < 3:
            raise ValueError(
                f"{path}:{lineno}: expected '<glob> <rule-id|*> <reason>',"
                f" got {line!r}"
            )
        pattern, rule, reason = parts
        entries.append(AllowEntry(pattern=pattern, rule=rule, reason=reason))
    return entries
