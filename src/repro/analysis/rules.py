"""The rule catalog: eight checks that mechanize the repo's invariants.

============  =====================  ==========================================
Rule          Name                   Invariant
============  =====================  ==========================================
R1            wall-clock             no wall-clock reads on sim paths; event
                                     time comes from the simulation clock only
R2            unseeded-random        RNGs are constructed from explicit seeds,
                                     never global/OS entropy
R3            unsorted-iteration     no iteration over sets / ``.keys()`` on
                                     ordering-sensitive positions without
                                     ``sorted(...)``
R4            event-schema           every literal event type emitted exists
                                     in ``EVENT_SCHEMA`` with its required
                                     payload keys, and every schema entry has
                                     at least one emitter (no dead schema)
R5            unfrozen-spec          dataclasses crossing the fabric pickle
                                     boundary (``*Spec``) are ``frozen=True``
R6            object-identity        no ``id()`` / builtin ``hash()`` on sim
                                     paths (both vary across processes)
R7            import-fence           fenced modules never import the
                                     process fabric or threading machinery
R8            suppression            allow comments are well-formed, carry a
                                     reason, and actually suppress something
============  =====================  ==========================================

Scoping: R1, R2, R3, R4, R5 and R8 apply to every scanned file; R6
applies only to sim-path modules (``repro.sim``, ``repro.dsps``,
``repro.laar``, ``repro.chaos``, ``repro.fleet``, ``repro.obs``).
R7 covers the sim path *and* ``repro.core``: the deterministic core is
imported by every sim-path module, so a process-bearing import there
would breach the fence transitively. The parallel-search driver is the
one audited exception (see ``_R7_AUDITED_EXCEPTIONS``) — exact modules
only, each reviewed so that importing its parent package never
executes the cleared import. Legitimate exceptions elsewhere are
expressed per line with ``# repro: allow[Rn] reason=...`` or per module
in the allowlist file — never by editing the rule.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Optional

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.facts import (
    EmitSite,
    FileFacts,
    SchemaDef,
    resolve_call_target,
)

__all__ = [
    "RULES",
    "RULE_IDS",
    "Rule",
    "SIM_PATH_PREFIXES",
    "check_file",
    "check_schema",
]

#: Module prefixes forming the deterministic simulation path. Events,
#: digests and replayable artifacts are produced here, so the strictest
#: rules (R6, R7) apply only inside these trees.
SIM_PATH_PREFIXES = (
    "repro.sim",
    "repro.dsps",
    "repro.laar",
    "repro.chaos",
    "repro.fleet",
    "repro.obs",
)


@dataclass(frozen=True)
class Rule:
    """One rule's identity, for reports, docs and ``--list-rules``."""

    rule_id: str
    name: str
    summary: str
    sim_path_only: bool = False


RULES: tuple[Rule, ...] = (
    Rule("R1", "wall-clock", "no wall-clock reads on sim paths"),
    Rule("R2", "unseeded-random", "RNGs must take an explicit seed"),
    Rule(
        "R3",
        "unsorted-iteration",
        "set iteration must go through sorted()",
    ),
    Rule(
        "R4",
        "event-schema",
        "emitted events match EVENT_SCHEMA, no dead entries",
    ),
    Rule(
        "R5",
        "unfrozen-spec",
        "fabric-crossing *Spec dataclasses are frozen",
    ),
    Rule(
        "R6",
        "object-identity",
        "no id()/hash() on sim paths",
        sim_path_only=True,
    ),
    Rule(
        "R7",
        "import-fence",
        "sim/core modules never import the fabric",
        sim_path_only=True,
    ),
    Rule("R8", "suppression", "allow comments are well-formed and used"),
)

RULE_IDS: frozenset[str] = frozenset(rule.rule_id for rule in RULES)


def _is_sim_path(module: str) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in SIM_PATH_PREFIXES
    )


def _diag(
    facts: FileFacts, node: ast.AST, rule: str, message: str
) -> Diagnostic:
    return Diagnostic(
        file=facts.file,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule=rule,
        message=message,
    )


# ----------------------------------------------------------------------
# R1 — wall-clock
# ----------------------------------------------------------------------

_WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


def _check_wallclock(facts: FileFacts) -> list[Diagnostic]:
    diagnostics = []
    # Local aliases like ``monotonic = time.monotonic`` (a common hot-loop
    # micro-optimization) must not evade the rule: calls through such a
    # name are wall-clock reads too.
    aliases: dict[str, str] = {}
    for node in ast.walk(facts.tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target_node = node.targets[0]
            if isinstance(target_node, ast.Name):
                resolved = resolve_call_target(facts, node.value)
                if resolved in _WALLCLOCK_CALLS:
                    aliases[target_node.id] = resolved
    for node in ast.walk(facts.tree):
        if not isinstance(node, ast.Call):
            continue
        target = resolve_call_target(facts, node.func)
        if target in aliases:
            target = aliases[target]
        if target in _WALLCLOCK_CALLS:
            diagnostics.append(
                _diag(
                    facts,
                    node,
                    "R1",
                    f"wall-clock read {target}(): sim-path code must be"
                    " stamped from the simulation clock only",
                )
            )
    return diagnostics


# ----------------------------------------------------------------------
# R2 — unseeded randomness
# ----------------------------------------------------------------------

_ENTROPY_CALLS = frozenset(
    {
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.randbelow",
    }
)

#: numpy.random constructors that are fine *when given a seed argument*.
_NUMPY_SEEDED_CTORS = frozenset(
    {
        "default_rng",
        "RandomState",
        "Generator",
        "SeedSequence",
        "PCG64",
        "Philox",
        "MT19937",
        "SFC64",
    }
)


def _check_unseeded_random(facts: FileFacts) -> list[Diagnostic]:
    diagnostics = []
    for node in ast.walk(facts.tree):
        if not isinstance(node, ast.Call):
            continue
        target = resolve_call_target(facts, node.func)
        if target is None:
            continue
        has_seed_arg = bool(node.args) or bool(node.keywords)
        message: Optional[str] = None
        if target in _ENTROPY_CALLS:
            message = (
                f"{target}() draws OS entropy; derive values from an"
                " explicit seed instead"
            )
        elif target in ("random.Random", "numpy.random.default_rng"):
            if not has_seed_arg:
                message = (
                    f"{target}() without a seed argument: construct"
                    " RNGs from an explicit seed parameter"
                )
        elif target == "random.SystemRandom":
            message = (
                "random.SystemRandom draws OS entropy and can never"
                " be seeded"
            )
        elif target.startswith("random."):
            message = (
                f"{target}() uses the shared module-level RNG; construct"
                " random.Random(seed) from an explicit seed parameter"
            )
        elif target.startswith("numpy.random."):
            member = target.rsplit(".", 1)[1]
            if member in _NUMPY_SEEDED_CTORS:
                if not has_seed_arg:
                    message = (
                        f"{target}() without a seed argument: pass an"
                        " explicit seed"
                    )
            else:
                message = (
                    f"{target}() uses numpy's global RNG state; use"
                    " numpy.random.default_rng(seed) instead"
                )
        if message is not None:
            diagnostics.append(_diag(facts, node, "R2", message))
    return diagnostics


# ----------------------------------------------------------------------
# R3 — unsorted set iteration on ordering-sensitive positions
# ----------------------------------------------------------------------

_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate"})
_ORDER_NEUTRAL_WRAPPERS = frozenset(
    {"sorted", "len", "min", "max", "sum", "any", "all", "set", "frozenset"}
)


def _set_typed_names(tree: ast.AST) -> set[str]:
    """Names assigned from set-valued expressions anywhere in ``tree``."""
    names: set[str] = set()
    for node in ast.walk(tree):
        value: Optional[ast.expr] = None
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, ast.AnnAssign):
            value, targets = node.value, [node.target]
        if value is None or not _is_set_expr(None, value, names):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _is_set_expr(
    facts: Optional[FileFacts], node: ast.expr, set_names: set[str]
) -> bool:
    """Whether ``node`` evaluates to a set (syntactically)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute):
            if func.attr == "keys" and not node.args:
                return True
            if func.attr in _SET_METHODS:
                return True
    return False


def _sorted_ancestor(facts: FileFacts, node: ast.AST) -> bool:
    """Whether an enclosing call neutralizes iteration order."""
    for ancestor in facts.ancestors(node):
        if isinstance(ancestor, ast.Call):
            func = ancestor.func
            if (
                isinstance(func, ast.Name)
                and func.id in _ORDER_NEUTRAL_WRAPPERS
            ):
                return True
        if isinstance(ancestor, ast.stmt):
            break
    return False


def _check_unsorted_iteration(facts: FileFacts) -> list[Diagnostic]:
    diagnostics = []
    set_names = _set_typed_names(facts.tree)

    def flag(node: ast.expr, context: str) -> None:
        if _sorted_ancestor(facts, node):
            return
        diagnostics.append(
            _diag(
                facts,
                node,
                "R3",
                f"iteration over a set {context} is ordering-sensitive;"
                " wrap it in sorted(...) or a canonicalizer",
            )
        )

    for node in ast.walk(facts.tree):
        if isinstance(node, ast.For):
            if _is_set_expr(facts, node.iter, set_names):
                flag(node.iter, "in a for loop")
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            # SetComp is exempt: its result is itself a set, so the
            # iteration order of its source can never be observed.
            for generator in node.generators:
                if _is_set_expr(facts, generator.iter, set_names):
                    flag(generator.iter, "in a comprehension")
        elif isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else None
            is_join = isinstance(func, ast.Attribute) and func.attr == "join"
            if (name in _ORDER_SENSITIVE_CALLS or is_join) and node.args:
                if _is_set_expr(facts, node.args[0], set_names):
                    flag(node.args[0], f"passed to {name or 'join'}()")
    return diagnostics


# ----------------------------------------------------------------------
# R4 — event-schema cross-check (per-site half; see check_schema below)
# ----------------------------------------------------------------------


def check_schema(
    all_sites: list[EmitSite], all_defs: list[SchemaDef]
) -> list[Diagnostic]:
    """The cross-module half of R4, run after every file is parsed.

    * every literal event type emitted anywhere must be declared;
    * literal emit sites without ``**extra`` must pass every required
      payload field;
    * every declared schema entry must have at least one emitter in the
      scanned tree (dead-schema detection).

    With no ``EVENT_SCHEMA`` definition in the scanned tree the check is
    skipped entirely — a partial scan cannot judge schema membership.
    """
    if not all_defs:
        return []
    schema: dict[str, SchemaDef] = {}
    for schema_def in all_defs:
        schema.setdefault(schema_def.event_type, schema_def)
    diagnostics = []
    emitted_types = {site.event_type for site in all_sites}
    for site in all_sites:
        declared = schema.get(site.event_type)
        if declared is None:
            diagnostics.append(
                Diagnostic(
                    site.file,
                    site.line,
                    site.col,
                    "R4",
                    f"event type '{site.event_type}' is not declared in"
                    " EVENT_SCHEMA",
                )
            )
            continue
        if site.has_star_kwargs:
            continue  # dynamic payload: the runtime validator owns this
        missing = sorted(declared.fields - site.keywords)
        if missing:
            diagnostics.append(
                Diagnostic(
                    site.file,
                    site.line,
                    site.col,
                    "R4",
                    f"event '{site.event_type}' missing required payload"
                    f" field(s): {', '.join(missing)}",
                )
            )
    for event_type in sorted(set(schema) - emitted_types):
        declared = schema[event_type]
        diagnostics.append(
            Diagnostic(
                declared.file,
                declared.line,
                0,
                "R4",
                f"schema entry '{event_type}' has no emitter in the"
                " scanned tree (dead schema)",
            )
        )
    return diagnostics


# ----------------------------------------------------------------------
# R5 — frozen-value discipline at the fabric pickle boundary
# ----------------------------------------------------------------------


def _dataclass_decorator(node: ast.ClassDef) -> Optional[ast.expr]:
    for decorator in node.decorator_list:
        target = (
            decorator.func if isinstance(decorator, ast.Call) else decorator
        )
        name: Optional[str] = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name == "dataclass":
            return decorator
    return None


def _check_unfrozen_spec(facts: FileFacts) -> list[Diagnostic]:
    diagnostics = []
    for node in ast.walk(facts.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not node.name.endswith("Spec"):
            continue
        decorator = _dataclass_decorator(node)
        if decorator is None:
            continue
        frozen = False
        if isinstance(decorator, ast.Call):
            for keyword in decorator.keywords:
                if keyword.arg == "frozen":
                    frozen = (
                        isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                    )
        if not frozen:
            diagnostics.append(
                _diag(
                    facts,
                    node,
                    "R5",
                    f"dataclass {node.name} crosses the fabric pickle"
                    " boundary (*Spec) and must be @dataclass(frozen=True)",
                )
            )
    return diagnostics


# ----------------------------------------------------------------------
# R6 — object identity (id() / builtin hash()) on sim paths
# ----------------------------------------------------------------------


def _check_object_identity(facts: FileFacts) -> list[Diagnostic]:
    if not _is_sim_path(facts.module):
        return []
    diagnostics = []
    hash_def_ranges: list[tuple[int, int]] = []
    for node in ast.walk(facts.tree):
        if isinstance(node, ast.FunctionDef) and node.name == "__hash__":
            hash_def_ranges.append(
                (node.lineno, node.end_lineno or node.lineno)
            )
    for node in ast.walk(facts.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Name) or func.id not in ("id", "hash"):
            continue
        if func.id == "hash" and any(
            start <= node.lineno <= end for start, end in hash_def_ranges
        ):
            continue  # __hash__ implementations may delegate to hash()
        diagnostics.append(
            _diag(
                facts,
                node,
                "R6",
                f"{func.id}() varies across processes and hash seeds;"
                " never let it reach an event payload or digest",
            )
        )
    return diagnostics


# ----------------------------------------------------------------------
# R7 — import fences around the sim path and the deterministic core
# ----------------------------------------------------------------------

_BANNED_IMPORT_PREFIXES = (
    "repro.experiments",
    "repro.core.optimizer.parallel",
    "multiprocessing",
    "concurrent",
    "threading",
    "subprocess",
)

#: Trees the fence covers beyond the sim path: the deterministic core
#: is imported by every sim-path module, so a process-bearing import
#: here would breach the fence transitively.
_CORE_FENCED_PREFIXES = ("repro.core",)

#: Audited R7 exceptions. Keys are *exact* modules (never prefixes —
#: the audit does not extend to new files); values are the banned
#: prefixes that module is cleared for, after review that importing its
#: parent package never executes the cleared import:
#:
#: * ``repro.core.optimizer.parallel`` IS the process-bearing parallel
#:   search driver; it owns the fabric pool and shared bound, and the
#:   optimizer package's ``__init__`` deliberately does not import it.
#: * ``repro.core.optimizer.ftsearch`` dispatches to the driver from a
#:   function-local import inside ``ft_search`` (executed only when a
#:   caller explicitly passes ``jobs=``), never at module import time.
_R7_AUDITED_EXCEPTIONS: dict[str, tuple[str, ...]] = {
    "repro.core.optimizer.parallel": (
        "repro.experiments",
        "multiprocessing",
    ),
    "repro.core.optimizer.ftsearch": (
        "repro.core.optimizer.parallel",
    ),
}


def _banned_import(module: str) -> Optional[str]:
    for prefix in _BANNED_IMPORT_PREFIXES:
        if module == prefix or module.startswith(prefix + "."):
            return prefix
    return None


def _is_fenced_module(module: str) -> bool:
    return _is_sim_path(module) or any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in _CORE_FENCED_PREFIXES
    )


def _check_import_fence(facts: FileFacts) -> list[Diagnostic]:
    if not _is_fenced_module(facts.module):
        return []
    cleared = _R7_AUDITED_EXCEPTIONS.get(facts.module, ())
    diagnostics = []
    for node in ast.walk(facts.tree):
        imported: list[str] = []
        if isinstance(node, ast.Import):
            imported = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.module is not None:
            if node.level == 0:
                imported = [node.module]
        for module in imported:
            banned = _banned_import(module)
            if banned is not None and banned not in cleared:
                diagnostics.append(
                    _diag(
                        facts,
                        node,
                        "R7",
                        f"fenced module imports {module!r}: the"
                        f" {banned} machinery is wall-clock/process-"
                        "bearing and fenced off the sim path and core",
                    )
                )
    return diagnostics


# ----------------------------------------------------------------------
# Per-file dispatch
# ----------------------------------------------------------------------

_PER_FILE_CHECKS: tuple[Callable[[FileFacts], list[Diagnostic]], ...] = (
    _check_wallclock,
    _check_unseeded_random,
    _check_unsorted_iteration,
    _check_unfrozen_spec,
    _check_object_identity,
    _check_import_fence,
)


def check_file(facts: FileFacts) -> list[Diagnostic]:
    """Run every per-file rule over one parsed file."""
    diagnostics: list[Diagnostic] = []
    for check in _PER_FILE_CHECKS:
        diagnostics.extend(check(facts))
    return diagnostics
