"""The rule catalog: ten checks that mechanize the repo's invariants.

============  =====================  ==========================================
Rule          Name                   Invariant
============  =====================  ==========================================
R1            wall-clock             no wall-clock reads on sim paths; event
                                     time comes from the simulation clock only
R2            unseeded-random        RNGs are constructed from explicit seeds,
                                     never global/OS entropy
R3            unsorted-iteration     no iteration over sets / ``.keys()`` on
                                     ordering-sensitive positions without
                                     ``sorted(...)``
R4            event-schema           every literal event type emitted exists
                                     in ``EVENT_SCHEMA`` with its required
                                     payload keys and declared value types,
                                     and every schema entry has at least one
                                     emitter (no dead schema)
R5            unfrozen-spec          dataclasses crossing the fabric pickle
                                     boundary (``*Spec``) are ``frozen=True``
R6            object-identity        no ``id()`` / builtin ``hash()`` on sim
                                     paths (both vary across processes)
R7            import-fence           fenced modules never import the
                                     process fabric or threading machinery
R8            suppression            allow comments are well-formed, carry a
                                     reason, and actually suppress something
R9            shared-state           ``multiprocessing`` shared primitives
                                     live only behind the audited accessors;
                                     locks are held via ``with``, never bare
                                     ``acquire``/``release``
R10           fabric-hygiene         functions submitted to ``run_tasks`` /
                                     ``PersistentPool.map`` are top-level and
                                     take frozen/immutable payloads
============  =====================  ==========================================

Scoping: R1, R2, R3, R4, R5, R8, R9 and R10 apply to every scanned
file; R6 applies only to sim-path modules (``repro.sim``,
``repro.dsps``, ``repro.laar``, ``repro.chaos``, ``repro.fleet``,
``repro.obs``). R7 covers the sim path *and* ``repro.core``: the
deterministic core is imported by every sim-path module, so a
process-bearing import there would breach the fence transitively. The
parallel-search driver is the one audited exception (see
``_R7_AUDITED_EXCEPTIONS``) — exact modules only, each reviewed so that
importing its parent package never executes the cleared import.
Legitimate exceptions elsewhere are expressed per line with
``# repro: allow[Rn] reason=...`` or per module in the allowlist file —
never by editing the rule.

**Interprocedural halves.** R1, R2 and R3 also fire *at the sim-path
call site* of a helper outside the sim path whose effect inference
(:mod:`repro.analysis.effects`) proves it transitively reaches a
wall-clock read, unseeded RNG, or unsorted set iteration. The witness
chain is rendered in the diagnostic. Suppressing the intrinsic site
does not clear the propagated taint — each boundary crossing needs its
own audited waiver (or a fix).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Optional

from repro.analysis.callgraph import (
    EXTERNAL,
    CallGraph,
    ClassInfo,
    FuncInfo,
)
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.effects import (
    KIND_RULES,
    EffectAnalysis,
    iter_iteration_sites,
    iter_unseeded_calls,
    iter_wallclock_calls,
)
from repro.analysis.facts import (
    EmitSite,
    FileFacts,
    SchemaDef,
    resolve_call_target,
)

__all__ = [
    "RULES",
    "RULE_IDS",
    "Rule",
    "SIM_PATH_PREFIXES",
    "check_file",
    "check_project",
    "check_schema",
]

#: Module prefixes forming the deterministic simulation path. Events,
#: digests and replayable artifacts are produced here, so the strictest
#: rules (R6, R7) apply only inside these trees, and the
#: interprocedural R1/R2/R3 findings fire where calls *leave* them.
SIM_PATH_PREFIXES = (
    "repro.sim",
    "repro.dsps",
    "repro.laar",
    "repro.chaos",
    "repro.fleet",
    "repro.obs",
)


@dataclass(frozen=True)
class Rule:
    """One rule's identity, for reports, docs and ``--list-rules``."""

    rule_id: str
    name: str
    summary: str
    sim_path_only: bool = False


RULES: tuple[Rule, ...] = (
    Rule("R1", "wall-clock", "no wall-clock reads on sim paths"),
    Rule("R2", "unseeded-random", "RNGs must take an explicit seed"),
    Rule(
        "R3",
        "unsorted-iteration",
        "set iteration must go through sorted()",
    ),
    Rule(
        "R4",
        "event-schema",
        "emitted events match EVENT_SCHEMA fields and types",
    ),
    Rule(
        "R5",
        "unfrozen-spec",
        "fabric-crossing *Spec dataclasses are frozen",
    ),
    Rule(
        "R6",
        "object-identity",
        "no id()/hash() on sim paths",
        sim_path_only=True,
    ),
    Rule(
        "R7",
        "import-fence",
        "sim/core modules never import the fabric",
        sim_path_only=True,
    ),
    Rule("R8", "suppression", "allow comments are well-formed and used"),
    Rule(
        "R9",
        "shared-state",
        "shared primitives only behind audited accessors",
    ),
    Rule(
        "R10",
        "fabric-hygiene",
        "fabric workers are top-level with frozen payloads",
    ),
)

RULE_IDS: frozenset[str] = frozenset(rule.rule_id for rule in RULES)


def _is_sim_path(module: str) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in SIM_PATH_PREFIXES
    )


def _diag(
    facts: FileFacts, node: ast.AST, rule: str, message: str
) -> Diagnostic:
    return Diagnostic(
        file=facts.file,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule=rule,
        message=message,
    )


# ----------------------------------------------------------------------
# R1 — wall-clock (local half; classifiers live in repro.analysis.effects)
# ----------------------------------------------------------------------


def _check_wallclock(facts: FileFacts) -> list[Diagnostic]:
    return [
        _diag(
            facts,
            node,
            "R1",
            f"wall-clock read {target}(): sim-path code must be"
            " stamped from the simulation clock only",
        )
        for node, target in iter_wallclock_calls(facts)
    ]


# ----------------------------------------------------------------------
# R2 — unseeded randomness (local half)
# ----------------------------------------------------------------------


def _check_unseeded_random(facts: FileFacts) -> list[Diagnostic]:
    return [
        _diag(facts, node, "R2", message)
        for node, _target, message in iter_unseeded_calls(facts)
    ]


# ----------------------------------------------------------------------
# R3 — unsorted set iteration on ordering-sensitive positions (local)
# ----------------------------------------------------------------------


def _check_unsorted_iteration(facts: FileFacts) -> list[Diagnostic]:
    return [
        _diag(
            facts,
            node,
            "R3",
            f"iteration over a set {context} is ordering-sensitive;"
            " wrap it in sorted(...) or a canonicalizer",
        )
        for node, context in iter_iteration_sites(facts)
    ]


# ----------------------------------------------------------------------
# R4 — event-schema cross-check (fields and, for typed entries, types)
# ----------------------------------------------------------------------

#: Valid type tags in a typed ``EVENT_SCHEMA`` entry. A trailing ``?``
#: marks a nullable field; ``float`` accepts ints (JSON does not keep
#: the distinction), ``int`` rejects bools.
_VALID_TAG_BASES = frozenset(
    {"str", "int", "float", "bool", "list", "dict", "any"}
)

#: Primitive annotation names mapped to schema tags, for inferring the
#: type of an annotated local used in an emit payload.
_ANNOTATION_TAGS = {
    "str": "str",
    "int": "int",
    "float": "float",
    "bool": "bool",
    "list": "list",
    "tuple": "list",  # tuples serialize as JSON arrays
    "dict": "dict",
}

_CAST_CALL_TAGS = {
    "str": "str",
    "int": "int",
    "float": "float",
    "bool": "bool",
    "len": "int",
    "sorted": "list",
    "list": "list",
    "tuple": "list",
    "dict": "dict",
    "repr": "str",
    "format": "str",
}


def _valid_tag(tag: str) -> bool:
    base = tag[:-1] if tag.endswith("?") else tag
    return base in _VALID_TAG_BASES


def _tag_compatible(inferred: str, declared: str) -> bool:
    if declared == "any":
        return True
    nullable = declared.endswith("?")
    base = declared[:-1] if nullable else declared
    if inferred == "null":
        return nullable
    if inferred.endswith("?"):
        if not nullable:
            return False
        inferred = inferred[:-1]
    if inferred == base:
        return True
    if base == "float" and inferred == "int":
        return True
    return False


def _annotation_tag(annotation: Optional[ast.expr]) -> Optional[str]:
    """The schema tag a simple type annotation denotes, if any."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(annotation, ast.Name):
        return _ANNOTATION_TAGS.get(annotation.id)
    if isinstance(annotation, ast.Subscript):
        value = annotation.value
        if isinstance(value, ast.Name) and value.id == "Optional":
            inner = _annotation_tag(annotation.slice)
            if inner is not None and not inner.endswith("?"):
                return inner + "?"
            return inner
        return _annotation_tag(value)
    if isinstance(annotation, ast.BinOp) and isinstance(
        annotation.op, ast.BitOr
    ):
        # ``float | None`` -> nullable float; other unions stay opaque.
        left = _annotation_tag(annotation.left)
        right = annotation.right
        if (
            left is not None
            and isinstance(right, ast.Constant)
            and right.value is None
        ):
            return left if left.endswith("?") else left + "?"
        return None
    if isinstance(annotation, ast.Attribute):
        return _ANNOTATION_TAGS.get(annotation.attr)
    return None


def _scope_nodes(facts: FileFacts, node: ast.AST) -> list[ast.AST]:
    """The enclosing function bodies (innermost first), then the module."""
    scopes: list[ast.AST] = []
    for ancestor in facts.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append(ancestor)
    scopes.append(facts.tree)
    return scopes


def _name_tag(facts: FileFacts, use: ast.AST, name: str) -> Optional[str]:
    """Infer the tag of a bare name from annotations or a constant
    assignment in an enclosing scope (innermost wins)."""
    for scope in _scope_nodes(facts, use):
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            for arg in [
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
            ]:
                if arg.arg == name:
                    return _annotation_tag(arg.annotation)
        assigned: Optional[str] = None
        multiple = False
        for node in ast.walk(scope):
            if isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if node.target.id == name:
                    return _annotation_tag(node.annotation)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and target.id == name:
                    if assigned is not None:
                        multiple = True
                    assigned = None
                    if isinstance(node.value, ast.Constant):
                        assigned = _constant_tag(node.value.value)
        if assigned is not None and not multiple:
            return assigned
    return None


def _constant_tag(value: object) -> Optional[str]:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    if value is None:
        return "null"
    return None


def _attribute_tag(
    graph: CallGraph, facts: FileFacts, node: ast.Attribute
) -> Optional[str]:
    """The tag of ``obj.attr`` through the receiver's class annotation.

    Annotations are trusted only for classes defined in strict-set
    modules (the mypy-gated prefixes): elsewhere an annotation is
    advisory and must not produce findings.
    """
    info = graph.enclosing_function(facts, node)
    rtype = graph.receiver_type(info, facts, node.value)
    if rtype is None and isinstance(node.value, ast.Name):
        if node.value.id == "self" and info is not None:
            rtype = info.class_qualname
    if rtype is None or rtype.startswith(EXTERNAL):
        return None
    cinfo = graph.classes.get(rtype)
    if cinfo is None:
        return None
    annotation = cinfo.attr_annotations.get(node.attr)
    return _annotation_tag(annotation)


def infer_payload_tag(
    graph: Optional[CallGraph], facts: FileFacts, node: ast.expr
) -> Optional[str]:
    """The schema tag of one emit-payload expression, if inferable."""
    if isinstance(node, ast.Constant):
        return _constant_tag(node.value)
    if isinstance(node, ast.JoinedStr):
        return "str"
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(node, (ast.List, ast.ListComp, ast.Tuple)):
        return "list"
    if isinstance(node, (ast.Compare, ast.BoolOp)):
        return "bool"
    if isinstance(node, ast.UnaryOp):
        if isinstance(node.op, ast.Not):
            return "bool"
        return infer_payload_tag(graph, facts, node.operand)
    if isinstance(node, ast.BinOp):
        left = infer_payload_tag(graph, facts, node.left)
        right = infer_payload_tag(graph, facts, node.right)
        if left == "int" and right == "int":
            return "int"
        if {left, right} <= {"int", "float"} and left and right:
            return "float"
        return None
    if isinstance(node, ast.IfExp):
        body = infer_payload_tag(graph, facts, node.body)
        orelse = infer_payload_tag(graph, facts, node.orelse)
        if body == orelse:
            return body
        if {body, orelse} == {"null", None}:
            return None
        if body == "null" and orelse is not None:
            return orelse + "?" if not orelse.endswith("?") else orelse
        if orelse == "null" and body is not None:
            return body + "?" if not body.endswith("?") else body
        return None
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            return _CAST_CALL_TAGS.get(func.id)
        return None
    if isinstance(node, ast.Name):
        return _name_tag(facts, node, node.id)
    if isinstance(node, ast.Attribute) and graph is not None:
        return _attribute_tag(graph, facts, node)
    return None


def check_schema(
    all_sites: list[EmitSite],
    all_defs: list[SchemaDef],
    graph: Optional[CallGraph] = None,
    facts_by_file: Optional[dict[str, FileFacts]] = None,
) -> list[Diagnostic]:
    """The cross-module half of R4, run after every file is parsed.

    * every literal event type emitted anywhere must be declared;
    * literal emit sites without ``**extra`` must pass every required
      payload field;
    * every declared schema entry must have at least one emitter in the
      scanned tree (dead-schema detection);
    * for *typed* schema entries: tags must be well-formed, inferable
      payload values must match their declared tag, and every declared
      field must be passed literally at least once somewhere (a field
      only ever smuggled through ``**extra`` is never statically
      validated).

    With no ``EVENT_SCHEMA`` definition in the scanned tree the check is
    skipped entirely — a partial scan cannot judge schema membership.
    """
    if not all_defs:
        return []
    schema: dict[str, SchemaDef] = {}
    for schema_def in all_defs:
        schema.setdefault(schema_def.event_type, schema_def)
    diagnostics = []
    emitted_types = {site.event_type for site in all_sites}
    literal_fields: dict[str, set[str]] = {}
    for site in all_sites:
        literal_fields.setdefault(site.event_type, set()).update(site.keywords)
    for schema_def in schema.values():
        for field_name, tag in sorted(schema_def.type_map().items()):
            if not _valid_tag(tag):
                diagnostics.append(
                    Diagnostic(
                        schema_def.file,
                        schema_def.line,
                        0,
                        "R4",
                        f"schema entry '{schema_def.event_type}' declares"
                        f" unknown type tag {tag!r} for field"
                        f" '{field_name}'",
                    )
                )
    for site in all_sites:
        declared = schema.get(site.event_type)
        if declared is None:
            diagnostics.append(
                Diagnostic(
                    site.file,
                    site.line,
                    site.col,
                    "R4",
                    f"event type '{site.event_type}' is not declared in"
                    " EVENT_SCHEMA",
                )
            )
            continue
        types = declared.type_map()
        if types:
            facts = (facts_by_file or {}).get(site.file)
            for field_name, value in site.values:
                tag = types.get(field_name)
                if tag is None or facts is None:
                    continue
                inferred = infer_payload_tag(graph, facts, value)
                if inferred is None:
                    continue
                if not _tag_compatible(inferred, tag):
                    diagnostics.append(
                        Diagnostic(
                            site.file,
                            site.line,
                            site.col,
                            "R4",
                            f"event '{site.event_type}' field"
                            f" '{field_name}': payload is {inferred}"
                            f" but the schema declares {tag}",
                        )
                    )
        if site.has_star_kwargs:
            continue  # dynamic payload: the runtime validator owns this
        missing = sorted(declared.fields - site.keywords)
        if missing:
            diagnostics.append(
                Diagnostic(
                    site.file,
                    site.line,
                    site.col,
                    "R4",
                    f"event '{site.event_type}' missing required payload"
                    f" field(s): {', '.join(missing)}",
                )
            )
    for event_type in sorted(set(schema) - emitted_types):
        declared = schema[event_type]
        diagnostics.append(
            Diagnostic(
                declared.file,
                declared.line,
                0,
                "R4",
                f"schema entry '{event_type}' has no emitter in the"
                " scanned tree (dead schema)",
            )
        )
    for event_type in sorted(schema):
        declared = schema[event_type]
        if declared.types is None or event_type not in literal_fields:
            continue
        never = sorted(declared.fields - literal_fields[event_type])
        for field_name in never:
            diagnostics.append(
                Diagnostic(
                    declared.file,
                    declared.line,
                    0,
                    "R4",
                    f"field '{field_name}' of '{event_type}' is never"
                    " passed literally at any emit site, so its type is"
                    " never statically validated",
                )
            )
    return diagnostics


# ----------------------------------------------------------------------
# R5 — frozen-value discipline at the fabric pickle boundary
# ----------------------------------------------------------------------


def _dataclass_decorator(node: ast.ClassDef) -> Optional[ast.expr]:
    for decorator in node.decorator_list:
        target = (
            decorator.func if isinstance(decorator, ast.Call) else decorator
        )
        name: Optional[str] = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name == "dataclass":
            return decorator
    return None


def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
    decorator = _dataclass_decorator(node)
    if not isinstance(decorator, ast.Call):
        return False
    for keyword in decorator.keywords:
        if keyword.arg == "frozen":
            return (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            )
    return False


def _check_unfrozen_spec(facts: FileFacts) -> list[Diagnostic]:
    diagnostics = []
    for node in ast.walk(facts.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not node.name.endswith("Spec"):
            continue
        if _dataclass_decorator(node) is None:
            continue
        if not _is_frozen_dataclass(node):
            diagnostics.append(
                _diag(
                    facts,
                    node,
                    "R5",
                    f"dataclass {node.name} crosses the fabric pickle"
                    " boundary (*Spec) and must be @dataclass(frozen=True)",
                )
            )
    return diagnostics


# ----------------------------------------------------------------------
# R6 — object identity (id() / builtin hash()) on sim paths
# ----------------------------------------------------------------------


def _check_object_identity(facts: FileFacts) -> list[Diagnostic]:
    if not _is_sim_path(facts.module):
        return []
    diagnostics = []
    hash_def_ranges: list[tuple[int, int]] = []
    for node in ast.walk(facts.tree):
        if isinstance(node, ast.FunctionDef) and node.name == "__hash__":
            hash_def_ranges.append(
                (node.lineno, node.end_lineno or node.lineno)
            )
    for node in ast.walk(facts.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Name) or func.id not in ("id", "hash"):
            continue
        if func.id == "hash" and any(
            start <= node.lineno <= end for start, end in hash_def_ranges
        ):
            continue  # __hash__ implementations may delegate to hash()
        diagnostics.append(
            _diag(
                facts,
                node,
                "R6",
                f"{func.id}() varies across processes and hash seeds;"
                " never let it reach an event payload or digest",
            )
        )
    return diagnostics


# ----------------------------------------------------------------------
# R7 — import fences around the sim path and the deterministic core
# ----------------------------------------------------------------------

_BANNED_IMPORT_PREFIXES = (
    "repro.experiments",
    "repro.core.optimizer.parallel",
    "multiprocessing",
    "concurrent",
    "threading",
    "subprocess",
)

#: Trees the fence covers beyond the sim path: the deterministic core
#: is imported by every sim-path module, so a process-bearing import
#: here would breach the fence transitively.
_CORE_FENCED_PREFIXES = ("repro.core",)

#: Audited R7 exceptions. Keys are *exact* modules (never prefixes —
#: the audit does not extend to new files); values are the banned
#: prefixes that module is cleared for, after review that importing its
#: parent package never executes the cleared import:
#:
#: * ``repro.core.optimizer.parallel`` IS the process-bearing parallel
#:   search driver; it owns the fabric pool and shared bound, and the
#:   optimizer package's ``__init__`` deliberately does not import it.
#: * ``repro.core.optimizer.ftsearch`` dispatches to the driver from a
#:   function-local import inside ``ft_search`` (executed only when a
#:   caller explicitly passes ``jobs=``), never at module import time.
_R7_AUDITED_EXCEPTIONS: dict[str, tuple[str, ...]] = {
    "repro.core.optimizer.parallel": (
        "repro.experiments",
        "multiprocessing",
    ),
    "repro.core.optimizer.ftsearch": (
        "repro.core.optimizer.parallel",
    ),
}


def _banned_import(module: str) -> Optional[str]:
    for prefix in _BANNED_IMPORT_PREFIXES:
        if module == prefix or module.startswith(prefix + "."):
            return prefix
    return None


def _is_fenced_module(module: str) -> bool:
    return _is_sim_path(module) or any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in _CORE_FENCED_PREFIXES
    )


def _check_import_fence(facts: FileFacts) -> list[Diagnostic]:
    if not _is_fenced_module(facts.module):
        return []
    cleared = _R7_AUDITED_EXCEPTIONS.get(facts.module, ())
    diagnostics = []
    for node in ast.walk(facts.tree):
        imported: list[str] = []
        if isinstance(node, ast.Import):
            imported = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.module is not None:
            if node.level == 0:
                imported = [node.module]
        for module in imported:
            banned = _banned_import(module)
            if banned is not None and banned not in cleared:
                diagnostics.append(
                    _diag(
                        facts,
                        node,
                        "R7",
                        f"fenced module imports {module!r}: the"
                        f" {banned} machinery is wall-clock/process-"
                        "bearing and fenced off the sim path and core",
                    )
                )
    return diagnostics


# ----------------------------------------------------------------------
# R9 — shared-state discipline around multiprocessing primitives
# ----------------------------------------------------------------------

#: Constructors of cross-process shared state. Owning one of these
#: anywhere outside the audited home module is a finding: shared
#: mutable state is how cross-process nondeterminism sneaks past the
#: per-process determinism discipline.
_R9_SHARED_CTORS = frozenset(
    {
        "multiprocessing.Value",
        "multiprocessing.RawValue",
        "multiprocessing.Array",
        "multiprocessing.RawArray",
        "multiprocessing.Manager",
        "multiprocessing.sharedctypes.Value",
        "multiprocessing.sharedctypes.RawValue",
        "multiprocessing.sharedctypes.Array",
        "multiprocessing.sharedctypes.RawArray",
        "multiprocessing.shared_memory.SharedMemory",
    }
)

#: Lock constructors whose instances must only be held via ``with``.
#: ``.acquire()``/``.release()`` is flagged only on names provably bound
#: to one of these (or to a ``.get_lock()`` result) — an arbitrary
#: ``pool.release(name)`` is not a lock operation.
_R9_LOCK_CTORS = frozenset(
    {
        "multiprocessing.Lock",
        "multiprocessing.RLock",
        "multiprocessing.Semaphore",
        "multiprocessing.BoundedSemaphore",
        "multiprocessing.Condition",
        "threading.Lock",
        "threading.RLock",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "threading.Condition",
    }
)

#: The audited homes of shared primitives: module -> accessor classes
#: whose methods may touch ``.value`` / ``.get_lock()`` directly. The
#: table is exact (module and class names, never globs), and the
#: earns-its-keep test drops it to prove every entry is load-bearing.
#: ``SharedBound`` is PR 9's tighten-only incumbent bound: every read
#: and write goes through its ``get``/``offer``/``reset`` methods,
#: each of which holds the primitive's lock via ``with``.
_R9_AUDITED_ACCESSORS: dict[str, tuple[str, ...]] = {
    "repro.core.optimizer.parallel": ("SharedBound",),
}


def _enclosing_class_name(facts: FileFacts, node: ast.AST) -> Optional[str]:
    for ancestor in facts.ancestors(node):
        if isinstance(ancestor, ast.ClassDef):
            return ancestor.name
    return None


def _check_shared_state(facts: FileFacts) -> list[Diagnostic]:
    audited = _R9_AUDITED_ACCESSORS.get(facts.module)
    diagnostics = []
    tracked: set[str] = set()
    locks: set[str] = set()

    def _is_lock_source(value: ast.expr) -> bool:
        if not isinstance(value, ast.Call):
            return False
        func = value.func
        if isinstance(func, ast.Attribute) and func.attr == "get_lock":
            return True
        return resolve_call_target(facts, func) in _R9_LOCK_CTORS

    for node in ast.walk(facts.tree):
        value: Optional[ast.expr] = None
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value, targets = node.value, [node.target]
        if not isinstance(value, ast.Call):
            continue
        is_shared = (
            resolve_call_target(facts, value.func) in _R9_SHARED_CTORS
        )
        is_lock = _is_lock_source(value)
        if not (is_shared or is_lock):
            continue
        for target in targets:
            bound: Optional[str] = None
            if isinstance(target, ast.Name):
                bound = target.id
            elif isinstance(target, ast.Attribute) and isinstance(
                target.value, ast.Name
            ):
                if target.value.id == "self":
                    bound = f"self.{target.attr}"
            if bound is None:
                continue
            (tracked if is_shared else locks).add(bound)

    def _bound_name(node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Name
        ):
            if node.value.id == "self":
                return f"self.{node.attr}"
        return None

    def _tracked_base(node: ast.expr) -> bool:
        return _bound_name(node) in tracked

    def _is_lock_receiver(node: ast.expr) -> bool:
        if _is_lock_source(node):
            return True  # v.get_lock().acquire() chains
        return _bound_name(node) in locks

    def _in_audited_accessor(node: ast.AST) -> bool:
        if audited is None:
            return False
        owner = _enclosing_class_name(facts, node)
        return owner is not None and owner in audited

    for node in ast.walk(facts.tree):
        if isinstance(node, ast.Call):
            target = resolve_call_target(facts, node.func)
            if target in _R9_SHARED_CTORS and audited is None:
                diagnostics.append(
                    _diag(
                        facts,
                        node,
                        "R9",
                        f"{target}() creates cross-process shared state"
                        " outside the audited home"
                        " (repro.core.optimizer.parallel); route shared"
                        " bounds through SharedBound",
                    )
                )
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "get_lock":
                if not _in_audited_accessor(node):
                    diagnostics.append(
                        _diag(
                            facts,
                            node,
                            "R9",
                            "shared-primitive lock acquired outside the"
                            " audited accessor classes; go through"
                            " SharedBound",
                        )
                    )
                elif not isinstance(facts.parent_of(node), ast.withitem):
                    diagnostics.append(
                        _diag(
                            facts,
                            node,
                            "R9",
                            "lock acquisition without `with`: hold"
                            " get_lock() via a context manager so"
                            " worker crashes cannot leak the lock",
                        )
                    )
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("acquire", "release")
                and _is_lock_receiver(func.value)
            ):
                diagnostics.append(
                    _diag(
                        facts,
                        node,
                        "R9",
                        f"bare .{func.attr}() on a lock: use `with` so"
                        " the lock is released on every exit path",
                    )
                )
        elif isinstance(node, ast.Attribute) and node.attr == "value":
            if _tracked_base(node.value) and not _in_audited_accessor(node):
                diagnostics.append(
                    _diag(
                        facts,
                        node,
                        "R9",
                        "raw .value access on a shared primitive outside"
                        " the audited accessors; every read/write goes"
                        " through SharedBound under its lock",
                    )
                )
    return diagnostics


# ----------------------------------------------------------------------
# R10 — fabric task hygiene (project-level; needs the call graph)
# ----------------------------------------------------------------------

#: The fabric entry points whose first argument is a worker function.
_FABRIC_TASK_FUNCS = frozenset({"repro.experiments.parallel.run_tasks"})
_FABRIC_POOL_CLASS = "repro.experiments.parallel.PersistentPool"
_FABRIC_POOL_METHODS = frozenset({"map"})

#: Builtin payload types that are immutable enough to cross the pickle
#: boundary without a frozen dataclass (shallow immutability — a tuple
#: of lists still slips through; documented blind spot).
_IMMUTABLE_PAYLOAD_BASES = frozenset(
    {"str", "int", "float", "bool", "bytes", "tuple", "frozenset", "None"}
)


def _fabric_call_kind(
    graph: CallGraph, facts: FileFacts, node: ast.Call
) -> Optional[str]:
    """``run_tasks``/``PersistentPool.map`` detection for one call."""
    dotted = resolve_call_target(facts, node.func)
    if dotted is not None:
        if graph.resolve_export(dotted) in _FABRIC_TASK_FUNCS:
            return "run_tasks"
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in _FABRIC_POOL_METHODS:
        info = graph.enclosing_function(facts, node)
        rtype = graph.receiver_type(info, facts, func.value)
        if rtype is not None:
            plain = rtype.removeprefix(EXTERNAL)
            if plain == _FABRIC_POOL_CLASS:
                return f"PersistentPool.{func.attr}"
    return None


def _payload_problem(graph: CallGraph, worker: FuncInfo) -> Optional[str]:
    """Why the worker's payload annotation violates R10, if it does."""
    args = worker.node.args
    params = [*args.posonlyargs, *args.args]
    if not params:
        return None
    payload = params[0]
    annotation = payload.annotation
    if annotation is None:
        return (
            f"worker {worker.name}() takes an unannotated payload"
            f" '{payload.arg}'; annotate it with a frozen *Spec (or"
            " immutable builtin) type"
        )
    base = annotation
    if isinstance(base, ast.Subscript):
        value = base.value
        if isinstance(value, ast.Name) and value.id == "Optional":
            base = base.slice
        else:
            base = value
    if isinstance(base, ast.Name) and base.id in _IMMUTABLE_PAYLOAD_BASES:
        return None
    resolved = graph.annotation_type(worker.facts, annotation)
    if resolved is not None and resolved in graph.classes:
        cinfo = graph.classes[resolved]
        if _is_frozen_dataclass(cinfo.node):
            return None
        return (
            f"worker {worker.name}() payload type {cinfo.name} is not"
            " a frozen dataclass; fabric payloads must be immutable"
        )
    described = ast.unparse(annotation)
    return (
        f"worker {worker.name}() payload type {described!r} is neither"
        " a scanned frozen dataclass nor an immutable builtin"
    )


def _check_fabric_hygiene(
    all_facts: list[FileFacts], graph: CallGraph
) -> list[Diagnostic]:
    diagnostics = []
    for facts in all_facts:
        for node in ast.walk(facts.tree):
            if not isinstance(node, ast.Call):
                continue
            kind = _fabric_call_kind(graph, facts, node)
            if kind is None or not node.args:
                continue
            worker_expr = node.args[0]
            if isinstance(worker_expr, ast.Lambda):
                diagnostics.append(
                    _diag(
                        facts,
                        worker_expr,
                        "R10",
                        f"lambda submitted to {kind}: workers must be"
                        " top-level functions (lambdas cannot pickle)",
                    )
                )
                continue
            dotted = resolve_call_target(facts, worker_expr)
            if dotted is None:
                continue  # dynamically chosen worker: blind spot
            resolved = graph.resolve_export(dotted)
            candidates = [resolved, f"{facts.module}.{resolved}"]
            enclosing = graph.enclosing_function(facts, node)
            if enclosing is not None:
                candidates.insert(0, f"{enclosing.qualname}.{resolved}")
            worker = next(
                (
                    graph.functions[name]
                    for name in candidates
                    if name in graph.functions
                ),
                None,
            )
            if worker is None:
                continue  # worker outside the scan
            if worker.is_nested:
                diagnostics.append(
                    _diag(
                        facts,
                        worker_expr,
                        "R10",
                        f"nested function {worker.name}() submitted to"
                        f" {kind}: workers must be top-level so child"
                        " processes can unpickle them by module path",
                    )
                )
                continue
            if worker.is_method:
                diagnostics.append(
                    _diag(
                        facts,
                        worker_expr,
                        "R10",
                        f"method {worker.name}() submitted to {kind}:"
                        " workers must be top-level functions, not"
                        " bound methods dragging instance state",
                    )
                )
                continue
            problem = _payload_problem(graph, worker)
            if problem is not None:
                diagnostics.append(_diag(facts, worker_expr, "R10", problem))
    return diagnostics


# ----------------------------------------------------------------------
# Interprocedural R1/R2/R3: taint crossing into the sim path
# ----------------------------------------------------------------------


def _check_boundary_taint(
    all_facts: list[FileFacts],
    graph: CallGraph,
    effects: EffectAnalysis,
) -> list[Diagnostic]:
    """Fire R1/R2/R3 where a sim-path call reaches a tainted helper.

    A finding is emitted only where taint *crosses into* the sim path:
    the call site sits in a sim-path module, the callee does not, and
    the callee transitively reaches a primitive. Calls within the sim
    path are not re-flagged (the local rules already cover intrinsic
    sites there), so each crossing yields exactly one finding per
    effect kind, carrying the witness chain.
    """
    module_of = {facts.file: facts.module for facts in all_facts}
    kind_names = {
        "wall-clock": "a wall-clock read",
        "unseeded-rng": "an unseeded RNG",
        "iteration-order": "an unsorted set iteration",
    }
    diagnostics = []
    for site in graph.call_sites:
        caller_module = module_of.get(site.file)
        if caller_module is None or not _is_sim_path(caller_module):
            continue
        callee = graph.functions.get(site.callee)
        if callee is None or _is_sim_path(callee.module):
            continue
        for kind in sorted(effects.taint_of(site.callee)):
            chain = effects.taint_of(site.callee)[kind]
            diagnostics.append(
                Diagnostic(
                    site.file,
                    site.line,
                    site.col,
                    KIND_RULES[kind],
                    f"sim-path call into {site.callee}() reaches"
                    f" {kind_names[kind]} [chain:"
                    f" {effects.render_chain(chain)}]",
                )
            )
    return diagnostics


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------

_PER_FILE_CHECKS: tuple[Callable[[FileFacts], list[Diagnostic]], ...] = (
    _check_wallclock,
    _check_unseeded_random,
    _check_unsorted_iteration,
    _check_unfrozen_spec,
    _check_object_identity,
    _check_import_fence,
    _check_shared_state,
)


def check_file(facts: FileFacts) -> list[Diagnostic]:
    """Run every per-file rule over one parsed file."""
    diagnostics: list[Diagnostic] = []
    for check in _PER_FILE_CHECKS:
        diagnostics.extend(check(facts))
    return diagnostics


def check_project(
    all_facts: list[FileFacts],
    graph: CallGraph,
    effects: EffectAnalysis,
) -> list[Diagnostic]:
    """Run the whole-program rules: boundary taint (R1/R2/R3 at call
    sites) and fabric hygiene (R10)."""
    diagnostics = _check_boundary_taint(all_facts, graph, effects)
    diagnostics.extend(_check_fabric_hygiene(all_facts, graph))
    return diagnostics
