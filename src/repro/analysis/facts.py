"""Per-file facts: parsed AST, import aliases, emit sites, schema defs.

Pass 1 of the engine turns every scanned file into a :class:`FileFacts`
value. Rules consume these; the cross-module checks (R4) additionally
merge the ``schema`` and ``emit_sites`` facts from every file before
judging anything, so an event type emitted in one module and declared
in another is resolved correctly.

Everything here is purely syntactic — no file under analysis is ever
imported, so linting a fixture corpus full of deliberate violations is
safe.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

__all__ = [
    "EmitSite",
    "FileFacts",
    "SchemaDef",
    "collect_facts",
    "module_name_for",
    "resolve_call_target",
]


def module_name_for(path: Path) -> str:
    """The dotted module name, derived from the ``__init__.py`` chain.

    Walks up from ``path`` while the parent directory is a package
    (contains ``__init__.py``); works for any rooted scan, including
    fixture corpora that mimic the real package layout.
    """
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts)) if parts else path.stem


@dataclass(frozen=True)
class EmitSite:
    """One ``*.emit("event.type", key=..., **extra)`` call site."""

    file: str
    line: int
    col: int
    event_type: str
    keywords: frozenset[str]
    has_star_kwargs: bool
    #: The keyword value expressions, for payload type inference. AST
    #: nodes compare by identity, so these stay out of equality.
    values: tuple[tuple[str, ast.expr], ...] = field(default=(), compare=False)


@dataclass(frozen=True)
class SchemaDef:
    """One ``EVENT_SCHEMA`` entry: an event type and its required fields.

    ``types`` maps field names to declared type tags for the typed
    (dict-literal) schema form; it is ``None`` for the legacy
    ``frozenset({...})`` form, which declares field names only.
    """

    file: str
    line: int
    event_type: str
    fields: frozenset[str]
    types: Optional[tuple[tuple[str, str], ...]] = None

    def type_map(self) -> dict[str, str]:
        return dict(self.types) if self.types is not None else {}


@dataclass
class FileFacts:
    """Everything a rule needs to know about one scanned file."""

    path: Path
    file: str  # display path (as given on the command line)
    module: str
    source: str
    tree: ast.Module
    parents: dict[int, ast.AST] = field(default_factory=dict)
    module_aliases: dict[str, str] = field(default_factory=dict)
    name_aliases: dict[str, str] = field(default_factory=dict)
    emit_sites: list[EmitSite] = field(default_factory=list)
    schema_defs: list[SchemaDef] = field(default_factory=list)

    def parent_of(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parents.get(id(node))

    def ancestors(self, node: ast.AST) -> list[ast.AST]:
        chain: list[ast.AST] = []
        current = self.parent_of(node)
        while current is not None:
            chain.append(current)
            current = self.parent_of(current)
        return chain


def _collect_imports(facts: FileFacts) -> None:
    """Build the alias maps used to resolve dotted call targets.

    ``import numpy as np`` maps ``np -> numpy``; ``from time import
    perf_counter as pc`` maps ``pc -> time.perf_counter``; ``from
    datetime import datetime`` maps ``datetime -> datetime.datetime``.
    Relative imports carry no resolvable absolute module and are skipped.
    """
    for node in ast.walk(facts.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".", 1)[0]
                target = alias.name if alias.asname else bound
                facts.module_aliases[bound] = target
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                facts.name_aliases[bound] = f"{node.module}.{alias.name}"


def resolve_call_target(facts: FileFacts, func: ast.expr) -> Optional[str]:
    """The absolute dotted name a call expression refers to, if knowable.

    ``np.random.rand`` resolves to ``numpy.random.rand`` through the
    import aliases; ``self.rng.random`` resolves to ``None`` (the base is
    not an imported module, so the target cannot be named statically).
    Bare names resolve through ``from``-import aliases or to themselves
    (builtins like ``id`` and ``sorted``).
    """
    attrs: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        attrs.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = node.id
    if base in facts.name_aliases:
        resolved = facts.name_aliases[base]
    elif base in facts.module_aliases:
        resolved = facts.module_aliases[base]
    elif not attrs:
        return base  # a bare name: builtin or local
    else:
        return None  # attribute access on a non-module object
    return ".".join([resolved, *reversed(attrs)])


def _collect_emit_sites(facts: FileFacts) -> None:
    """Record every ``<obj>.emit("literal.type", ...)`` call."""
    for node in ast.walk(facts.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "emit"):
            continue
        if not node.args:
            continue
        first = node.args[0]
        if not isinstance(first, ast.Constant):
            continue  # forwarding wrappers like emit(type_, **fields)
        if not isinstance(first.value, str):
            continue
        keywords = frozenset(
            kw.arg for kw in node.keywords if kw.arg is not None
        )
        has_star = any(kw.arg is None for kw in node.keywords)
        facts.emit_sites.append(
            EmitSite(
                file=facts.file,
                line=node.lineno,
                col=node.col_offset,
                event_type=first.value,
                keywords=keywords,
                has_star_kwargs=has_star,
                values=tuple(
                    (kw.arg, kw.value)
                    for kw in node.keywords
                    if kw.arg is not None
                ),
            )
        )


def _frozenset_literal_fields(node: ast.expr) -> Optional[frozenset[str]]:
    """The string elements of ``frozenset({...})`` / ``{...}`` / ``set()``."""
    if isinstance(node, ast.Call) and node.args:
        func = node.func
        name = func.id if isinstance(func, ast.Name) else None
        if name in ("frozenset", "set"):
            return _frozenset_literal_fields(node.args[0])
    if isinstance(node, ast.Call) and not node.args:
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("frozenset", "set"):
            return frozenset()
    if isinstance(node, ast.Set):
        values = []
        for element in node.elts:
            if not (
                isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ):
                return None
            values.append(element.value)
        return frozenset(values)
    return None


def _typed_literal_fields(
    node: ast.expr,
) -> Optional[tuple[tuple[str, str], ...]]:
    """The ``{"field": "type", ...}`` pairs of a typed schema entry."""
    if not isinstance(node, ast.Dict):
        return None
    pairs: list[tuple[str, str]] = []
    for key, value in zip(node.keys, node.values):
        if not (
            isinstance(key, ast.Constant)
            and isinstance(key.value, str)
            and isinstance(value, ast.Constant)
            and isinstance(value.value, str)
        ):
            return None
        pairs.append((key.value, value.value))
    return tuple(pairs)


def _collect_schema_defs(facts: FileFacts) -> None:
    """Parse ``EVENT_SCHEMA`` literals, in either declaration form:
    typed ``{"type": {"field": "tag", ...}, ...}`` dict entries or the
    legacy ``{"type": frozenset({...}), ...}`` field-name sets."""
    for node in ast.walk(facts.tree):
        value: Optional[ast.expr] = None
        target_name: Optional[str] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                target_name = target.id
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                target_name = node.target.id
            value = node.value
        if target_name != "EVENT_SCHEMA" or not isinstance(value, ast.Dict):
            continue
        for key, entry in zip(value.keys, value.values):
            if not (
                isinstance(key, ast.Constant) and isinstance(key.value, str)
            ):
                continue
            types = _typed_literal_fields(entry)
            if types is not None:
                fields = frozenset(name for name, _tag in types)
            else:
                parsed = _frozenset_literal_fields(entry)
                fields = parsed if parsed is not None else frozenset()
            facts.schema_defs.append(
                SchemaDef(
                    file=facts.file,
                    line=key.lineno,
                    event_type=key.value,
                    fields=fields,
                    types=types,
                )
            )


def collect_facts(path: Path, display: str) -> FileFacts:
    """Parse one file and gather every fact the rules consume."""
    source = path.read_text()
    tree = ast.parse(source, filename=display)
    facts = FileFacts(
        path=path,
        file=display,
        module=module_name_for(path),
        source=source,
        tree=tree,
    )
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            facts.parents[id(child)] = parent
    _collect_imports(facts)
    _collect_emit_sites(facts)
    _collect_schema_defs(facts)
    return facts
