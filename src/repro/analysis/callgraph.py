"""Project-wide call graph over the scanned tree (pass 2 substrate).

Pass 1 gives every file a :class:`~repro.analysis.facts.FileFacts`;
this module merges them into one :class:`CallGraph`: every function and
class definition indexed by dotted qualname, plus every call site with
its resolved callee. The effect inference (:mod:`repro.analysis.effects`)
and the interprocedural rules (R1/R2/R3 at call sites, R10 fabric
hygiene) are consumers.

Resolution is deliberately *syntactic* and layered — no file under
analysis is ever imported:

1. **direct** — a bare name naming a function defined in the same
   module (or the lexically enclosing function, for nested defs);
2. **alias** — ``from``-import and module-import aliases, followed
   through package re-exports (``from repro.core.optimizer import
   ft_search`` resolves to ``repro.core.optimizer.ftsearch.ft_search``
   through the package ``__init__``);
3. **constructor** — a resolved class name called as a constructor
   binds to its ``__init__`` when one is defined in the scan;
4. **self** — ``self.method()`` binds within the enclosing class
   (base-class methods are a known blind spot);
5. **receiver** — ``obj.method()`` through the inferred type of
   ``obj``: parameter/variable annotations, assignment from a resolved
   constructor or from a call whose return annotation names a scanned
   class, ``with ... as`` bindings, and one level of annotated
   attribute access (``session.pool.map``);
6. **unique** — a method call on a receiver of *unknown* type falls
   back to the method name when exactly one scanned class defines it.
   A receiver whose type resolved to something *external* (e.g. a
   ``ProcessPoolExecutor``) blocks this fallback: known-foreign is not
   unknown.

Unresolved calls produce no edge — the analysis is deliberately
under-approximate, and docs/static-analysis.md lists the blind spots.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.analysis.facts import FileFacts, resolve_call_target

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FuncInfo",
    "build_call_graph",
]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Receiver types resolved to a dotted name outside the scan are marked
#: with this prefix: they carry enough information to *block* the
#: unique-name fallback without ever matching a scanned class.
EXTERNAL = "external:"


@dataclass
class FuncInfo:
    """One function or method definition in the scanned tree."""

    qualname: str
    module: str
    file: str
    line: int
    name: str
    class_qualname: Optional[str]
    is_nested: bool
    node: FunctionNode
    facts: FileFacts

    @property
    def is_method(self) -> bool:
        return self.class_qualname is not None

    @property
    def is_top_level(self) -> bool:
        return not self.is_nested and self.class_qualname is None


@dataclass
class ClassInfo:
    """One class definition: methods, annotated attributes, decorators."""

    qualname: str
    module: str
    file: str
    line: int
    name: str
    node: ast.ClassDef
    facts: FileFacts
    methods: dict[str, FuncInfo] = field(default_factory=dict)
    #: Attribute name -> resolved type (class qualname or external:...).
    attr_types: dict[str, str] = field(default_factory=dict)
    #: Attribute name -> raw annotation node, for primitive-tag
    #: inference (typed R4). Strict-gated like ``attr_types``.
    attr_annotations: dict[str, ast.expr] = field(default_factory=dict)


@dataclass
class CallSite:
    """One resolved call edge: caller scope, callee, position."""

    caller: str  # enclosing function qualname, or the module for
    # module-level calls
    callee: str  # resolved function/method qualname
    file: str
    line: int
    col: int
    resolution: str  # direct | alias | constructor | self | receiver
    # | unique
    node: ast.Call = field(repr=False)


class CallGraph:
    """Merged definitions and resolved call edges for one scan."""

    def __init__(self, strict_prefixes: tuple[str, ...] = ()) -> None:
        self.functions: dict[str, FuncInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.call_sites: list[CallSite] = []
        self.calls_from: dict[str, list[CallSite]] = {}
        self.callers_of: dict[str, list[CallSite]] = {}
        #: ``module.bound -> absolute target`` for every from-import,
        #: giving re-export chains through package ``__init__`` files.
        self.reexports: dict[str, str] = {}
        self._methods_by_name: dict[str, list[str]] = {}
        #: Module prefixes whose annotations are mypy-strict-gated; only
        #: their class attribute annotations are trusted for inference.
        self.strict_prefixes = strict_prefixes
        self._scope_types: dict[str, dict[str, str]] = {}

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------

    def _index_file(self, facts: FileFacts) -> None:
        for bound, target in facts.name_aliases.items():
            self.reexports[f"{facts.module}.{bound}"] = target
        self._index_body(facts, facts.tree.body, facts.module, None, False)

    def _index_body(
        self,
        facts: FileFacts,
        body: list[ast.stmt],
        scope: str,
        class_info: Optional[ClassInfo],
        nested: bool,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{scope}.{stmt.name}"
                info = FuncInfo(
                    qualname=qualname,
                    module=facts.module,
                    file=facts.file,
                    line=stmt.lineno,
                    name=stmt.name,
                    class_qualname=(
                        class_info.qualname if class_info else None
                    ),
                    is_nested=nested,
                    node=stmt,
                    facts=facts,
                )
                self.functions.setdefault(qualname, info)
                if class_info is not None:
                    class_info.methods.setdefault(stmt.name, info)
                    self._methods_by_name.setdefault(stmt.name, []).append(
                        qualname
                    )
                self._index_body(facts, stmt.body, qualname, None, True)
            elif isinstance(stmt, ast.ClassDef):
                qualname = f"{scope}.{stmt.name}"
                cinfo = ClassInfo(
                    qualname=qualname,
                    module=facts.module,
                    file=facts.file,
                    line=stmt.lineno,
                    name=stmt.name,
                    node=stmt,
                    facts=facts,
                )
                self.classes.setdefault(qualname, cinfo)
                self._index_class_attrs(facts, cinfo)
                self._index_body(facts, stmt.body, qualname, cinfo, nested)

    def _index_class_attrs(self, facts: FileFacts, info: ClassInfo) -> None:
        if not self._is_strict_module(facts.module):
            return
        for stmt in info.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                info.attr_annotations[stmt.target.id] = stmt.annotation
                resolved = self.annotation_type(facts, stmt.annotation)
                if resolved is not None:
                    info.attr_types[stmt.target.id] = resolved

    def _is_strict_module(self, module: str) -> bool:
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.strict_prefixes
        )

    def enclosing_function(
        self, facts: FileFacts, node: ast.AST
    ) -> Optional[FuncInfo]:
        """The :class:`FuncInfo` lexically enclosing ``node``, if any."""
        chain = facts.ancestors(node)  # innermost first
        for index, ancestor in enumerate(chain):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names = [ancestor.name]
                for outer in chain[index + 1 :]:
                    if isinstance(
                        outer,
                        (
                            ast.FunctionDef,
                            ast.AsyncFunctionDef,
                            ast.ClassDef,
                        ),
                    ):
                        names.append(outer.name)
                qualname = ".".join([facts.module, *reversed(names)])
                return self.functions.get(qualname)
        return None

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------

    def resolve_export(self, dotted: str) -> str:
        """Follow re-export chains (``pkg.name -> pkg.module.name``)."""
        seen = set()
        while dotted in self.reexports and dotted not in seen:
            seen.add(dotted)
            dotted = self.reexports[dotted]
        return dotted

    def annotation_type(
        self, facts: FileFacts, node: Optional[ast.expr]
    ) -> Optional[str]:
        """Resolve an annotation to a scanned class qualname or
        ``external:<dotted>``; ``None`` when it cannot be named."""
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.Subscript):
            base = self.annotation_type(facts, node.value)
            if base == f"{EXTERNAL}typing.Optional":
                inner = node.slice
                return self.annotation_type(facts, inner)
            return base
        if isinstance(node, (ast.Name, ast.Attribute)):
            dotted = resolve_call_target(facts, node)
            if dotted is None:
                return None
            dotted = self.resolve_export(dotted)
            if dotted in self.classes:
                return dotted
            local = f"{facts.module}.{dotted}"
            if local in self.classes:
                return local
            return f"{EXTERNAL}{dotted}"
        return None

    def _scope_variable_types(self, info: FuncInfo) -> dict[str, str]:
        """Variable name -> resolved type inside one function scope."""
        cached = self._scope_types.get(info.qualname)
        if cached is not None:
            return cached
        types: dict[str, str] = {}
        args = info.node.args
        for arg in [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ]:
            resolved = self.annotation_type(info.facts, arg.annotation)
            if resolved is not None:
                types[arg.arg] = resolved
        for node in self._walk_scope(info.node):
            if isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                resolved = self.annotation_type(info.facts, node.annotation)
                if resolved is not None:
                    types[node.target.id] = resolved
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    resolved = self._value_type(info.facts, node.value)
                    if resolved is not None:
                        types[target.id] = resolved
            elif isinstance(node, ast.With) or isinstance(node, ast.AsyncWith):
                for item in node.items:
                    if isinstance(item.optional_vars, ast.Name):
                        resolved = self._value_type(
                            info.facts, item.context_expr
                        )
                        if resolved is not None:
                            types[item.optional_vars.id] = resolved
        self._scope_types[info.qualname] = types
        return types

    def _value_type(self, facts: FileFacts, node: ast.expr) -> Optional[str]:
        """The type of an expression used as an assignment source."""
        if not isinstance(node, ast.Call):
            return None
        dotted = resolve_call_target(facts, node.func)
        if dotted is not None:
            dotted = self.resolve_export(dotted)
            for candidate in (dotted, f"{facts.module}.{dotted}"):
                if candidate in self.classes:
                    return candidate
                called = self.functions.get(candidate)
                if called is not None:
                    return self.annotation_type(
                        called.facts, called.node.returns
                    )
            if "." in dotted:
                return f"{EXTERNAL}{dotted}"
        return None

    @staticmethod
    def _walk_scope(root: FunctionNode) -> list[ast.AST]:
        """Every node of one function body, nested defs excluded."""
        found: list[ast.AST] = []
        stack: list[ast.AST] = list(root.body)
        while stack:
            node = stack.pop()
            found.append(node)
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
                ):
                    continue
                stack.append(child)
        return found

    # ------------------------------------------------------------------
    # Call-site resolution
    # ------------------------------------------------------------------

    def receiver_type(
        self, info: Optional[FuncInfo], facts: FileFacts, node: ast.expr
    ) -> Optional[str]:
        """The resolved type of a method-call receiver expression."""
        if isinstance(node, ast.Name):
            if info is not None:
                scoped = self._scope_variable_types(info).get(node.id)
                if scoped is not None:
                    return scoped
            return None
        if isinstance(node, ast.Call):
            return self._value_type(facts, node)
        if isinstance(node, ast.Attribute):
            base = self.receiver_type(info, facts, node.value)
            if base is None and isinstance(node.value, ast.Name):
                if node.value.id == "self" and info is not None:
                    base = info.class_qualname
            if base is not None and base in self.classes:
                return self.classes[base].attr_types.get(node.attr)
            return None
        return None

    def _resolve_call(
        self,
        facts: FileFacts,
        info: Optional[FuncInfo],
        call: ast.Call,
    ) -> Optional[tuple[str, str]]:
        """``(callee qualname, resolution kind)`` for one call, if any."""
        func = call.func
        dotted = resolve_call_target(facts, func)
        if dotted is not None:
            resolved = self.resolve_export(dotted)
            kind = "direct" if "." not in resolved else "alias"
            for candidate in (resolved, f"{facts.module}.{resolved}"):
                if candidate in self.functions:
                    return candidate, kind
                if candidate in self.classes:
                    init = self.classes[candidate].methods.get("__init__")
                    if init is not None:
                        return init.qualname, "constructor"
                    return None
        if not isinstance(func, ast.Attribute):
            return None
        method = func.attr
        receiver = func.value
        if isinstance(receiver, ast.Name) and receiver.id == "self":
            if info is not None and info.class_qualname is not None:
                owner = self.classes.get(info.class_qualname)
                if owner is not None and method in owner.methods:
                    return owner.methods[method].qualname, "self"
                return None
        rtype = self.receiver_type(info, facts, receiver)
        if rtype is not None and rtype in self.classes:
            target = self.classes[rtype].methods.get(method)
            if target is not None:
                return target.qualname, "receiver"
            return None
        if rtype is not None and rtype.startswith(EXTERNAL):
            return None  # known-foreign receiver: no fallback
        candidates = self._methods_by_name.get(method, [])
        if len(candidates) == 1:
            return candidates[0], "unique"
        return None

    def _link_file(self, facts: FileFacts) -> None:
        # Map every call node to its lexically enclosing function.
        owners: dict[int, Optional[FuncInfo]] = {}

        def assign_owner(
            body: list[ast.stmt], owner: Optional[FuncInfo], scope: str
        ) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    inner = self.functions.get(f"{scope}.{stmt.name}")
                    assign_owner(stmt.body, inner, f"{scope}.{stmt.name}")
                    for deco in stmt.decorator_list:
                        for node in ast.walk(deco):
                            owners[id(node)] = owner
                elif isinstance(stmt, ast.ClassDef):
                    assign_owner(stmt.body, owner, f"{scope}.{stmt.name}")
                else:
                    for node in ast.walk(stmt):
                        owners[id(node)] = owner

        assign_owner(facts.tree.body, None, facts.module)
        for node in ast.walk(facts.tree):
            if not isinstance(node, ast.Call):
                continue
            info = owners.get(id(node))
            resolved = self._resolve_call(facts, info, node)
            if resolved is None:
                continue
            callee, how = resolved
            site = CallSite(
                caller=info.qualname if info else facts.module,
                callee=callee,
                file=facts.file,
                line=node.lineno,
                col=node.col_offset,
                resolution=how,
                node=node,
            )
            self.call_sites.append(site)
            self.calls_from.setdefault(site.caller, []).append(site)
            self.callers_of.setdefault(site.callee, []).append(site)


def build_call_graph(
    all_facts: list[FileFacts],
    strict_prefixes: tuple[str, ...] = (),
) -> CallGraph:
    """Index every file, then resolve every call site."""
    graph = CallGraph(strict_prefixes=strict_prefixes)
    for facts in all_facts:
        graph._index_file(facts)
    for facts in all_facts:
        graph._link_file(facts)
    graph.call_sites.sort(key=lambda s: (s.file, s.line, s.col, s.callee))
    return graph
