"""repro — a reproduction of LAAR (Load-Adaptive Active Replication).

Paper: Bellavista, Corradi, Reale, Kotoulas — "Adaptive Fault-Tolerance
for Dynamic Resource Provisioning in Distributed Stream Processing
Systems", EDBT 2014.

The library is organised as:

* :mod:`repro.core` — the paper's formal model and the FT-Search optimizer.
* :mod:`repro.placement` — replicated PE placement (the ``theta`` producers).
* :mod:`repro.rtree` — Guttman R-tree and the configuration lookup index.
* :mod:`repro.sim` — a from-scratch discrete-event simulation kernel.
* :mod:`repro.dsps` — a distributed stream processing platform simulator
  (the stand-in for IBM InfoSphere Streams).
* :mod:`repro.laar` — the LAAR runtime middleware (RateMonitor,
  HAController, HAProxy, application preprocessor).
* :mod:`repro.workloads` — the synthetic application generator of Sec. 5.2.
* :mod:`repro.experiments` — variant construction, failure modes, and the
  drivers that regenerate every figure of the evaluation.
"""

from repro.errors import (
    DeploymentError,
    DescriptorError,
    ExperimentError,
    GraphError,
    InfeasibleError,
    ModelError,
    OptimizationError,
    ReproError,
    RTreeError,
    SimulationError,
    StrategyError,
    WorkloadError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "ModelError",
    "GraphError",
    "DescriptorError",
    "DeploymentError",
    "StrategyError",
    "OptimizationError",
    "InfeasibleError",
    "SimulationError",
    "RTreeError",
    "WorkloadError",
    "ExperimentError",
]
