"""Discrete-event simulation kernel (the substrate under repro.dsps)."""

from repro.sim.kernel import Environment, EventHandle, Process, Signal

__all__ = ["Environment", "EventHandle", "Process", "Signal"]
