"""A from-scratch discrete-event simulation kernel.

This is the substrate under :mod:`repro.dsps` (the stream platform
simulator). It provides:

* an :class:`Environment` with a monotonically advancing virtual clock and
  a binary-heap event queue with deterministic FIFO tie-breaking;
* cancellable scheduled callbacks (:class:`EventHandle`);
* generator-coroutine *processes* (:class:`Process`) that ``yield``
  either a float delay or a :class:`Signal` to wait on;
* :class:`Signal`, a triggerable one-shot event carrying a value.

The design follows the classic event-list simulation loop; it is
deliberately minimal (no shared resources, no preemption) because the DSPS
layer models CPU contention explicitly through per-core service queues.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Generator, Optional

from repro.errors import SimulationError

__all__ = ["Environment", "EventHandle", "Signal", "Process"]


class EventHandle:
    """A scheduled callback; ``cancel()`` prevents it from firing."""

    __slots__ = ("time", "callback", "cancelled")

    def __init__(self, time: float, callback: Callable[[], None]) -> None:
        self.time = time
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Signal:
    """A one-shot triggerable event processes can wait on.

    ``trigger(value)`` wakes every waiting process (and future waiters
    resume immediately). Triggering twice is an error — signals are
    one-shot by design; recreate one per occurrence.
    """

    __slots__ = ("_env", "_triggered", "_value", "_waiters")

    def __init__(self, env: "Environment") -> None:
        self._env = env
        self._triggered = False
        self._value: Any = None
        self._waiters: list[Process] = []

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        return self._value

    def trigger(self, value: Any = None) -> None:
        if self._triggered:
            raise SimulationError("signal triggered twice")
        self._triggered = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self._env.schedule(0.0, lambda p=process: p._resume(value))

    def _add_waiter(self, process: "Process") -> None:
        if self._triggered:
            self._env.schedule(
                0.0, lambda p=process: p._resume(self._value)
            )
        else:
            self._waiters.append(process)


class Process:
    """A generator-coroutine process.

    The generator yields either a non-negative float (sleep for that many
    simulated seconds) or a :class:`Signal` (sleep until triggered; the
    ``yield`` evaluates to the signal's value). When the generator
    returns, the process is *finished* and its :attr:`done` signal fires
    with the generator's return value.
    """

    __slots__ = ("_env", "_generator", "done", "_alive")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Any, Any, Any],
    ) -> None:
        self._env = env
        self._generator = generator
        self.done = Signal(env)
        self._alive = True
        env.schedule(0.0, lambda: self._resume(None))

    @property
    def alive(self) -> bool:
        return self._alive

    def interrupt(self) -> None:
        """Stop the process; its generator is closed, ``done`` never fires."""
        if self._alive:
            self._alive = False
            self._generator.close()

    def _resume(self, value: Any) -> None:
        if not self._alive:
            return
        try:
            yielded = self._generator.send(value)
        except StopIteration as stop:
            self._alive = False
            self.done.trigger(stop.value)
            return
        if isinstance(yielded, Signal):
            yielded._add_waiter(self)
        elif isinstance(yielded, (int, float)):
            delay = float(yielded)
            if delay < 0 or math.isnan(delay):
                self._alive = False
                raise SimulationError(
                    f"process yielded an invalid delay: {yielded!r}"
                )
            self._env.schedule(delay, lambda: self._resume(None))
        else:
            self._alive = False
            raise SimulationError(
                f"process yielded an unsupported value: {yielded!r}"
            )


class Environment:
    """The simulation clock and event queue.

    ``telemetry`` may be set to a :class:`repro.obs.events.EventLog`
    (the platform layer does this); when present, :meth:`run` emits
    ``sim.run.start`` / ``sim.run.end`` events. The kernel stays
    import-free of the observability layer — the attribute is duck-typed
    and defaults to None, costing nothing when unused.

    ``engine`` may be set to a batched execution engine (see
    :mod:`repro.dsps.batched`): an object that owns *out-of-heap* event
    streams (source arrivals, host completions) and is granted the
    interval between consecutive heap events. The kernel calls
    ``engine.advance(time, seq, until)`` before dispatching each heap
    event — the engine must process exactly its events with key strictly
    below ``(time, seq)`` (and not beyond ``until``) — and
    ``engine.finish(time, seq)`` once at the end of :meth:`run` so
    cancelled-event accounting converges with the heap's lazy purge.
    Like ``telemetry``, the attribute is duck-typed and defaults to
    None, costing one comparison per event when unused.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[tuple[float, int, EventHandle]] = []
        self._sequence = 0
        self._events_processed = 0
        self._events_cancelled = 0
        self.telemetry = None
        self.engine = None

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        """Events whose callback actually ran (cancelled ones excluded)."""
        return self._events_processed

    @property
    def events_cancelled(self) -> int:
        """Cancelled events discarded from the queue so far."""
        return self._events_cancelled

    def take_seq(self) -> int:
        """Allocate the next event sequence number (FIFO tie-break key).

        The heap and any attached engine draw from the *same* sequence so
        their merged event stream keeps one global FIFO order.
        """
        seq = self._sequence
        self._sequence = seq + 1
        return seq

    def bump_seq(self, count: int) -> None:
        """Skip ``count`` sequence numbers in one step.

        Used by the batched engine to account for events it executed in
        closed form, so subsequent allocations match what a tuple-granular
        run would have drawn.
        """
        self._sequence += count

    def engine_fire(self, time: float) -> None:
        """Advance the clock to one engine-executed event and count it."""
        if time < self._now:
            raise SimulationError("event queue went back in time")
        self._now = time
        self._events_processed += 1

    def engine_account(self, processed: int = 0, cancelled: int = 0) -> None:
        """Bulk-count events the engine executed or discarded in closed
        form (the clock is advanced separately via :meth:`engine_fire`)."""
        self._events_processed += processed
        self._events_cancelled += cancelled

    def advance_clock(self, time: float) -> None:
        """Move the clock forward without counting an event (the engine
        stamps the end of a closed-form batch this way)."""
        if time < self._now:
            raise SimulationError("event queue went back in time")
        self._now = time

    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Run ``callback`` after ``delay`` simulated seconds."""
        if delay < 0 or math.isnan(delay):
            raise SimulationError(f"cannot schedule in the past: {delay}")
        handle = EventHandle(self._now + delay, callback)
        heapq.heappush(self._queue, (handle.time, self.take_seq(), handle))
        return handle

    def schedule_at(
        self, time: float, callback: Callable[[], None]
    ) -> EventHandle:
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before now ({self._now})"
            )
        return self.schedule(time - self._now, callback)

    def process(self, generator: Generator[Any, Any, Any]) -> Process:
        return Process(self, generator)

    def signal(self) -> Signal:
        return Signal(self)

    def run(self, until: Optional[float] = None) -> None:
        """Process events in time order.

        With ``until`` set, the clock stops exactly at ``until`` (events
        scheduled at ``until`` are processed; later ones stay queued).
        Without it, runs until the queue drains.
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until {until}, already at {self._now}"
            )
        if self.telemetry is not None:
            self.telemetry.emit("sim.run.start", until=until)
        engine = self.engine
        queue = self._queue
        while True:
            self._purge_cancelled()
            if not queue:
                if engine is None:
                    break
                # Heap drained: let the engine run out (bounded by
                # ``until``). Engine callbacks never push heap events on
                # the data path, but re-check in case a control callback
                # did.
                engine.advance(None, None, until)
                if not queue:
                    break
                continue
            time, seq, handle = queue[0]
            if engine is not None:
                engine.advance(time, seq, until)
                if queue[0][2] is not handle:
                    # An engine callback scheduled (or cancelled into)
                    # an earlier heap event; re-merge from the top.
                    continue
            if until is not None and time > until:
                break
            heapq.heappop(queue)
            if time < self._now:  # pragma: no cover - defensive
                raise SimulationError("event queue went back in time")
            self._now = time
            self._events_processed += 1
            handle.callback()
        if engine is not None:
            # Converge cancelled-event accounting with the heap's lazy
            # purge: everything below the first *live* event (heap or
            # engine) counts, exactly as a tuple-granular run would have
            # purged it.
            self._purge_cancelled()
            if queue:
                engine.finish(queue[0][0], queue[0][1])
            else:
                engine.finish(None, None)
        if until is not None:
            self._now = max(self._now, until)
        if self.telemetry is not None:
            self.telemetry.emit(
                "sim.run.end",
                events_processed=self._events_processed,
                events_cancelled=self._events_cancelled,
            )

    def peek(self) -> float:
        """Time of the next pending event (inf when idle)."""
        self._purge_cancelled()
        return self._queue[0][0] if self._queue else math.inf

    def _purge_cancelled(self) -> None:
        """Drop cancelled events from the head of the queue lazily."""
        queue = self._queue
        while queue and queue[0][2].cancelled:
            heapq.heappop(queue)
            self._events_cancelled += 1
