"""The LAAR deployment workflow (Fig. 7): build an extended application.

The application preprocessor of the paper rewrites the user's dataflow so
that every operator replica is wrapped in an HAProxy, and inserts the Rate
Monitor and HAController PEs (Fig. 8). In this reproduction the HAProxy
behaviour (activation commands, primary-only forwarding, heartbeats) is
part of the simulated operator runtime, so "preprocessing" amounts to
assembling the platform with the strategy's initial activation state and
wiring the monitor to the controller — which is exactly what
:class:`ExtendedApplication` does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.core.deployment import ReplicatedDeployment
from repro.core.strategy import ActivationStrategy
from repro.dsps.metrics import RunMetrics
from repro.dsps.platform import PlatformConfig, StreamPlatform
from repro.dsps.traces import InputTrace
from repro.errors import SimulationError
from repro.laar.hacontroller import HAController
from repro.laar.rate_monitor import RateMonitor
from repro.rtree.config_index import ConfigurationIndex

__all__ = ["MiddlewareConfig", "ExtendedApplication"]


@dataclass(frozen=True)
class MiddlewareConfig:
    """Runtime parameters of the LAAR middleware layer."""

    monitor_interval: float = 1.0
    command_latency: float = 0.05
    rate_tolerance: float = 0.0
    down_confirmation: int = 1
    dynamic: bool = True

    def __post_init__(self) -> None:
        if self.monitor_interval <= 0:
            raise SimulationError("monitor_interval must be > 0")
        if self.command_latency < 0:
            raise SimulationError("command_latency must be >= 0")
        if self.rate_tolerance < 0:
            raise SimulationError("rate_tolerance must be >= 0")
        if self.down_confirmation < 1:
            raise SimulationError("down_confirmation must be >= 1")


class ExtendedApplication:
    """A deployed application extended with the LAAR runtime (Fig. 8).

    Bundles the simulated platform, the HAController (initialised with the
    activation strategy), and the Rate Monitor. With ``dynamic=False`` the
    monitor is omitted and the initial configuration's activation stays in
    force — how the static SR and NR variants run.
    """

    def __init__(
        self,
        deployment: ReplicatedDeployment,
        strategy: ActivationStrategy,
        traces: Mapping[str, InputTrace],
        platform_config: PlatformConfig | None = None,
        middleware_config: MiddlewareConfig | None = None,
    ) -> None:
        self._middleware_config = middleware_config or MiddlewareConfig()
        self.strategy = strategy

        initial_config = self._initial_configuration(deployment, traces)
        initial_active = strategy.active_map(initial_config)
        self.platform = StreamPlatform(
            deployment,
            traces,
            initial_active=initial_active,
            config=platform_config,
        )
        self.controller = HAController(
            self.platform,
            strategy,
            initial_config=initial_config,
            command_latency=self._middleware_config.command_latency,
            rate_tolerance=self._middleware_config.rate_tolerance,
            down_confirmation=self._middleware_config.down_confirmation,
        )
        self.monitor: Optional[RateMonitor] = None
        if self._middleware_config.dynamic:
            self.monitor = RateMonitor(
                self.platform,
                self.controller.on_rates,
                interval=self._middleware_config.monitor_interval,
            )

    @staticmethod
    def _initial_configuration(
        deployment: ReplicatedDeployment,
        traces: Mapping[str, InputTrace],
    ) -> int:
        """The configuration matching the traces' rates at time zero."""
        index = ConfigurationIndex(
            deployment.descriptor.configuration_space
        )
        initial_rates = {
            source: trace.rate_at(0.0) for source, trace in traces.items()
        }
        return index.lookup_index(initial_rates)

    def run(
        self, until: Optional[float] = None, drain: float = 2.0
    ) -> RunMetrics:
        return self.platform.run(until=until, drain=drain)
