"""The Rate Monitor PE (Sec. 4.6).

"At runtime, the Rate Monitor PE periodically measures the data rates
from sources and outputs this measurement result."

The simulated monitor samples each source's emitted-tuple counter on a
fixed interval and reports the per-window average rate to its listener
(the HAController). Window-diff sampling is exact — no tuple is counted
in two windows — so measured rates converge to the trace's nominal rates
within one interval of a configuration change.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.dsps.platform import StreamPlatform
from repro.errors import SimulationError

__all__ = ["RateMonitor"]


class RateMonitor:
    """Periodically measures source output rates and notifies a listener."""

    def __init__(
        self,
        platform: StreamPlatform,
        listener: Callable[[Mapping[str, float]], None],
        interval: float = 1.0,
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"monitor interval must be > 0: {interval}")
        self._platform = platform
        self._listener = listener
        self.interval = interval
        self._last_counts = {
            name: source.emitted
            for name, source in platform.sources.items()
        }
        self.measurements: list[tuple[float, dict[str, float]]] = []
        platform.env.process(self._run())

    def _run(self):
        while True:
            yield self.interval
            rates = self._measure()
            self.measurements.append((self._platform.env.now, rates))
            self._listener(rates)

    def _measure(self) -> dict[str, float]:
        rates: dict[str, float] = {}
        for name, source in self._platform.sources.items():
            count = source.emitted
            rates[name] = (count - self._last_counts[name]) / self.interval
            self._last_counts[name] = count
        return rates
