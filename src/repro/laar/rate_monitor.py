"""The Rate Monitor PE (Sec. 4.6).

"At runtime, the Rate Monitor PE periodically measures the data rates
from sources and outputs this measurement result."

The simulated monitor samples each source's emitted-tuple counter on a
fixed interval and reports the per-window average rate to its listener
(the HAController). Window-diff sampling is exact — no tuple is counted
in two windows — so measured rates converge to the trace's nominal rates
within one interval of a configuration change.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.dsps.platform import StreamPlatform
from repro.errors import SimulationError

__all__ = ["RateMonitor"]


class RateMonitor:
    """Periodically measures source output rates and notifies a listener."""

    def __init__(
        self,
        platform: StreamPlatform,
        listener: Callable[[Mapping[str, float]], None],
        interval: float = 1.0,
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"monitor interval must be > 0: {interval}")
        self._platform = platform
        self._listener = listener
        self.interval = interval
        # The baseline counts are snapshotted lazily when the monitor
        # process starts, not at construction: anything the sources emit
        # between attaching the monitor and the simulation actually
        # running must not be charged to the first window.
        self._last_counts: dict[str, int] | None = None
        self.measurements: list[tuple[float, dict[str, float]]] = []
        platform.env.process(self._run())

    def _run(self):
        if self._last_counts is None:
            self._last_counts = {
                name: source.emitted
                for name, source in self._platform.sources.items()
            }
        while True:
            yield self.interval
            rates = self._measure()
            self.measurements.append((self._platform.env.now, rates))
            self._platform.telemetry.emit("rate.measurement", rates=rates)
            self._listener(rates)

    def _measure(self) -> dict[str, float]:
        rates: dict[str, float] = {}
        last = self._last_counts
        for name, source in self._platform.sources.items():
            count = source.emitted
            # A source unseen at baseline time charges its whole history
            # to this window — the overestimate is the safe direction for
            # the never-underestimate guarantee.
            rates[name] = (count - last.get(name, 0)) / self.interval
            last[name] = count
        return rates
