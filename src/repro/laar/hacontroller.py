"""The High Availability Controller PE (Sec. 4.6).

Initialised at startup with the chosen replica activation strategy, the
HAController receives measured source rates from the Rate Monitor and
selects the appropriate replica activation state for the current input
configuration. The configuration lookup uses the R-tree index of
:mod:`repro.rtree.config_index`, which picks the spatially-closest
configuration whose components all dominate the measured rates — so the
chosen activation never underestimates the actual load.

Whenever the selected configuration changes, the controller reliably sends
activation/deactivation commands to the affected PE replicas (commands are
delivered after ``command_latency`` seconds, modelling control-plane
messaging)."""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.deployment import ReplicaId
from repro.core.strategy import ActivationStrategy
from repro.dsps.platform import StreamPlatform
from repro.errors import SimulationError
from repro.rtree.config_index import ConfigurationIndex

__all__ = ["HAController"]


class HAController:
    """Drives replica activations from measured input rates."""

    def __init__(
        self,
        platform: StreamPlatform,
        strategy: ActivationStrategy,
        initial_config: int,
        command_latency: float = 0.05,
        rate_tolerance: float = 0.0,
        down_confirmation: int = 1,
    ) -> None:
        """``rate_tolerance`` relaxes the dominance test of the R-tree
        lookup (measurement noise around a nominal rate must not read as
        a configuration change); ``down_confirmation`` requires that many
        consecutive identical selections before switching to a *cheaper*
        configuration. Switches towards heavier configurations always
        happen immediately — the never-underestimate guarantee is only
        ever relaxed by the explicit tolerance, never by hysteresis."""
        if strategy.deployment is not platform.deployment:
            raise SimulationError(
                "strategy was computed for a different deployment"
            )
        if command_latency < 0:
            raise SimulationError("command_latency must be >= 0")
        if down_confirmation < 1:
            raise SimulationError("down_confirmation must be >= 1")
        self._platform = platform
        self._strategy = strategy
        space = platform.deployment.descriptor.configuration_space
        self._index = ConfigurationIndex(
            space,
            tolerance=rate_tolerance,
            telemetry=platform.telemetry,
        )
        self._total_rate = {
            config.index: sum(config.rates.values()) for config in space
        }
        self._command_latency = command_latency
        self._down_confirmation = down_confirmation
        self._pending_down: tuple[int, int] | None = None  # (config, count)
        self.current_config = initial_config
        self.switch_log: list[tuple[float, int, int]] = []
        self.commands_sent = 0

    @property
    def strategy(self) -> ActivationStrategy:
        return self._strategy

    def on_rates(self, rates: Mapping[str, float]) -> None:
        """Rate Monitor callback: re-evaluate the input configuration."""
        selected = self._index.lookup_index(rates)
        previous = self.current_config
        switched = False
        if selected == previous:
            self._pending_down = None
        else:
            heavier = (
                self._total_rate[selected] > self._total_rate[previous]
            )
            if heavier or self._down_confirmation <= 1:
                self._pending_down = None
                self._switch_to(selected)
                switched = True
            else:
                # Down-switch hysteresis: demand consecutive confirmations.
                if self._pending_down and self._pending_down[0] == selected:
                    count = self._pending_down[1] + 1
                else:
                    count = 1
                if count >= self._down_confirmation:
                    self._pending_down = None
                    self._switch_to(selected)
                    switched = True
                else:
                    self._pending_down = (selected, count)
        self._platform.telemetry.emit(
            "sla.check",
            selected=selected,
            current=previous,
            switched=switched,
        )

    def _switch_to(self, config_index: int) -> None:
        now = self._platform.env.now
        self.switch_log.append((now, self.current_config, config_index))
        self._platform.metrics.config_switches.append((now, config_index))
        previous = self.current_config
        self.current_config = config_index
        sent_before = self.commands_sent
        for replica_id in self._platform.deployment.replicas:
            desired = self._strategy.is_active(replica_id, config_index)
            if desired == self._strategy.is_active(replica_id, previous):
                continue  # no command needed for unchanged replicas
            self._send_command(replica_id, desired)
        telemetry = self._platform.telemetry
        transition = {"from": previous, "to": config_index}
        telemetry.emit(
            "config.switch",
            commands=self.commands_sent - sent_before,
            **transition,
        )
        # Span over the decision→commands-applied window: commands land
        # after command_latency, so close the span on the same clock.
        span = telemetry.spans.begin("config.switch", **transition)
        self._platform.env.schedule(self._command_latency, span.end)

    def _send_command(self, replica_id: ReplicaId, active: bool) -> None:
        self.commands_sent += 1
        self._platform.env.schedule(
            self._command_latency,
            lambda: self._platform.set_activation(replica_id, active),
        )

    def force_configuration(self, config_index: Optional[int] = None) -> None:
        """Immediately apply the activation state for a configuration.

        Used at deployment time to install the initial activation, and by
        tests to drive the controller without a Rate Monitor.
        """
        target = (
            self.current_config if config_index is None else config_index
        )
        self.current_config = target
        for replica_id in self._platform.deployment.replicas:
            self._platform.set_activation(
                replica_id, self._strategy.is_active(replica_id, target)
            )
