"""The LAAR runtime middleware: RateMonitor, HAController, extended apps."""

from repro.laar.hacontroller import HAController
from repro.laar.middleware import ExtendedApplication, MiddlewareConfig
from repro.laar.rate_monitor import RateMonitor

__all__ = [
    "RateMonitor",
    "HAController",
    "ExtendedApplication",
    "MiddlewareConfig",
]
