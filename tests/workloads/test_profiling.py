"""Tests for operator profiling: run -> descriptor round trips."""

from __future__ import annotations

import pytest

from repro.core import Host, RateTable
from repro.dsps import InputTrace, StreamPlatform, TraceSegment
from repro.errors import WorkloadError
from repro.placement import balanced_placement
from repro.workloads import (
    infer_source_rates,
    measured_edge_profile,
    profile_application,
    windowed_rates,
)

GIGA = 1.0e9


class TestWindowedRates:
    def test_uniform_arrivals(self):
        arrivals = [0.25 * i for i in range(40)]  # 4 t/s for 10 s
        rates = windowed_rates(arrivals, duration=10.0, window=1.0)
        assert len(rates) == 10
        assert all(rate == pytest.approx(4.0) for rate in rates)

    def test_out_of_range_arrivals_ignored(self):
        rates = windowed_rates([-1.0, 0.5, 99.0], duration=2.0, window=1.0)
        assert rates == [1.0, 0.0]

    def test_invalid_window_rejected(self):
        with pytest.raises(WorkloadError):
            windowed_rates([1.0], duration=2.0, window=0.0)

    def test_invalid_duration_rejected(self):
        with pytest.raises(WorkloadError):
            windowed_rates([1.0], duration=0.0, window=1.0)


class TestInferSourceRates:
    def test_two_level_trace_recovered(self):
        # 4 t/s for 20 s, then 8 t/s for 10 s.
        arrivals = [0.25 * i for i in range(1, 81)]
        arrivals += [20.0 + 0.125 * i for i in range(1, 81)]
        table = infer_source_rates(arrivals, duration=30.0, bins=2)
        assert len(table) == 2
        (low, p_low), (high, p_high) = table
        assert low < high
        assert p_low == pytest.approx(2.0 / 3.0, abs=0.05)
        assert p_high == pytest.approx(1.0 / 3.0, abs=0.05)
        # Upper-edge binning: the inferred levels cover the true rates.
        assert high >= 8.0 - 1e-9
        assert low >= 4.0 - 1e-9

    def test_probabilities_sum_to_one(self):
        arrivals = [0.1 * i for i in range(1, 300)]
        table = infer_source_rates(arrivals, duration=30.0, bins=4)
        assert sum(p for _, p in table) == pytest.approx(1.0)


class TestProfileRoundTrip:
    @pytest.fixture(scope="class")
    def profiled(self, request):
        """Run the diamond app, then rebuild its descriptor from metrics."""
        # Rebuild the diamond fixture locally (class-scoped fixture
        # cannot depend on the function-scoped conftest one).
        from tests.conftest import diamond_descriptor as _fixture  # noqa: F401
        from repro.core import (
            ApplicationDescriptor,
            ApplicationGraph,
            ConfigurationSpace,
            EdgeProfile,
        )

        graph = ApplicationGraph.build(
            ["src"], ["a", "b", "c", "d"], ["sink"],
            [("src", "a"), ("a", "b"), ("a", "c"), ("b", "d"),
             ("c", "d"), ("d", "sink")],
        )
        space = ConfigurationSpace.two_level("src", 5.0, 10.0, 0.75)
        true_profiles = {
            ("src", "a"): EdgeProfile(1.0, 0.02 * GIGA),
            ("a", "b"): EdgeProfile(0.5, 0.03 * GIGA),
            ("a", "c"): EdgeProfile(1.5, 0.01 * GIGA),
            ("b", "d"): EdgeProfile(1.0, 0.02 * GIGA),
            ("c", "d"): EdgeProfile(0.8, 0.015 * GIGA),
        }
        descriptor = ApplicationDescriptor(
            graph, true_profiles, space, name="diamond"
        )
        hosts = [Host("h0", cores=4, cycles_per_core=GIGA),
                 Host("h1", cores=4, cycles_per_core=GIGA)]
        deployment = balanced_placement(descriptor, hosts, 2)
        platform = StreamPlatform(
            deployment,
            {"src": InputTrace([TraceSegment(5.0, 120.0, "Low")])},
        )
        metrics = platform.run()
        profiled = profile_application(
            graph,
            metrics,
            source_rates={"src": [(5.0, 0.75), (10.0, 0.25)]},
            cycles_per_core=GIGA,
        )
        return descriptor, profiled

    def test_selectivities_recovered(self, profiled):
        truth, inferred = profiled
        for pe in truth.graph.pes:
            for edge in truth.graph.pe_input_edges(pe):
                assert inferred.selectivity(edge.tail, pe) == pytest.approx(
                    truth.selectivity(edge.tail, pe), rel=0.05
                )

    def test_cpu_costs_recovered(self, profiled):
        truth, inferred = profiled
        for pe in truth.graph.pes:
            for edge in truth.graph.pe_input_edges(pe):
                assert inferred.cpu_cost(edge.tail, pe) == pytest.approx(
                    truth.cpu_cost(edge.tail, pe), rel=0.05
                )

    def test_profiled_descriptor_predicts_same_rates(self, profiled):
        truth, inferred = profiled
        true_rates = RateTable(truth)
        inferred_rates = RateTable(inferred)
        for pe in truth.graph.pes:
            for c in range(2):
                assert inferred_rates.rate(pe, c) == pytest.approx(
                    true_rates.rate(pe, c), rel=0.06
                )

    def test_unexercised_edge_raises(self, profiled):
        truth, _ = profiled
        from repro.dsps.metrics import RunMetrics

        with pytest.raises(WorkloadError, match="never processed"):
            measured_edge_profile(RunMetrics(), "a", "src", GIGA)
