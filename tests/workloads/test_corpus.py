"""Tests for application bundle / corpus persistence."""

from __future__ import annotations

import json

import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    GeneratorParams,
    bundle_from_dict,
    bundle_to_dict,
    generate_application,
    load_bundle,
    load_corpus,
    save_bundle,
    save_corpus,
)


@pytest.fixture(scope="module")
def small_apps():
    params = GeneratorParams(n_pes=6)
    return [
        generate_application(seed, params=params, name=f"bundle-{seed}")
        for seed in (60, 61)
    ]


class TestBundleRoundTrip:
    def test_dict_round_trip(self, small_apps):
        app = small_apps[0]
        clone = bundle_from_dict(bundle_to_dict(app))
        assert clone.descriptor.to_dict() == app.descriptor.to_dict()
        assert clone.deployment.to_dict() == app.deployment.to_dict()
        assert clone.low_rate == app.low_rate
        assert clone.high_rate == app.high_rate
        assert clone.seed == app.seed

    def test_file_round_trip(self, small_apps, tmp_path):
        app = small_apps[0]
        path = tmp_path / "app.json"
        save_bundle(app, path)
        clone = load_bundle(path)
        assert clone.name == app.name
        assert clone.descriptor.to_dict() == app.descriptor.to_dict()

    def test_wrong_format_rejected(self):
        with pytest.raises(WorkloadError, match="not an application bundle"):
            bundle_from_dict({"format": "something-else"})

    def test_corrupt_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(WorkloadError, match="invalid bundle JSON"):
            load_bundle(path)

    def test_loaded_bundle_is_usable(self, small_apps, tmp_path):
        """A reloaded bundle drives the optimizer like the original."""
        from repro.core import OptimizationProblem, ft_search

        app = small_apps[0]
        path = tmp_path / "app.json"
        save_bundle(app, path)
        clone = load_bundle(path)
        original = ft_search(
            OptimizationProblem(app.deployment, ic_target=0.3),
            time_limit=2.0, seed_incumbent=True,
        )
        reloaded = ft_search(
            OptimizationProblem(clone.deployment, ic_target=0.3),
            time_limit=2.0, seed_incumbent=True,
        )
        assert original.strategy is not None
        assert reloaded.strategy is not None
        assert reloaded.best_cost == pytest.approx(
            original.best_cost, rel=1e-6
        )


class TestCorpus:
    def test_save_and_load_corpus(self, small_apps, tmp_path):
        directory = tmp_path / "corpus"
        paths = save_corpus(small_apps, directory)
        assert len(paths) == 2
        assert all(p.exists() for p in paths)
        loaded = load_corpus(directory)
        assert [a.name for a in loaded] == [a.name for a in small_apps]

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(WorkloadError, match="not a corpus directory"):
            load_corpus(tmp_path / "ghost")

    def test_load_empty_directory(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(WorkloadError, match="no bundles"):
            load_corpus(empty)

    def test_bundle_files_are_valid_json(self, small_apps, tmp_path):
        paths = save_corpus(small_apps, tmp_path / "c")
        for path in paths:
            payload = json.loads(path.read_text())
            assert payload["format"].startswith("repro-application-bundle")
