"""Tests for the synthetic application generator (Sec. 5.2 calibration)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RateTable
from repro.core.baselines import greedy_deactivation
from repro.errors import WorkloadError
from repro.workloads import (
    ClusterParams,
    GeneratorParams,
    generate_application,
    generate_corpus,
)


class TestParams:
    def test_rejects_bad_n_pes(self):
        with pytest.raises(WorkloadError):
            GeneratorParams(n_pes=0)

    def test_rejects_bad_probability(self):
        with pytest.raises(WorkloadError):
            GeneratorParams(low_probability=1.5)

    def test_rejects_ratio_below_one(self):
        with pytest.raises(WorkloadError):
            GeneratorParams(rate_ratio_range=(0.9, 1.5))

    def test_cluster_hosts(self):
        cluster = ClusterParams(n_hosts=3, cores_per_host=4)
        hosts = cluster.hosts()
        assert len(hosts) == 3
        assert all(h.cores == 4 for h in hosts)


class TestCalibration:
    def test_deterministic_in_seed(self):
        a = generate_application(5)
        b = generate_application(5)
        assert a.descriptor.to_dict() == b.descriptor.to_dict()
        assert a.deployment.to_dict() == b.deployment.to_dict()

    def test_different_seeds_differ(self):
        a = generate_application(5)
        b = generate_application(6)
        assert a.descriptor.to_dict() != b.descriptor.to_dict()

    def test_paper_condition_low_fits(self):
        app = generate_application(3)
        table = RateTable(app.descriptor)
        assert not app.deployment.is_overloaded(0, table)

    def test_paper_condition_high_overloads(self):
        app = generate_application(3)
        table = RateTable(app.descriptor)
        assert app.deployment.is_overloaded(1, table)

    def test_greedy_has_room_to_fix_high(self):
        app = generate_application(3)
        # The generator guarantees a dynamic strategy can de-overload.
        greedy_deactivation(app.deployment)

    def test_structure_matches_parameters(self):
        params = GeneratorParams(n_pes=12)
        app = generate_application(0, params=params)
        graph = app.descriptor.graph
        assert len(graph.pes) == 12
        assert graph.sources == ("src",)
        assert graph.sinks == ("sink",)

    def test_selectivities_in_band(self):
        app = generate_application(7)
        descriptor = app.descriptor
        for pe in descriptor.graph.pes:
            for edge in descriptor.graph.pe_input_edges(pe):
                selectivity = descriptor.selectivity(edge.tail, pe)
                assert 0.5 <= selectivity <= 1.5

    def test_rates_in_paper_band(self):
        app = generate_application(8)
        assert 1.0 <= app.low_rate <= 20.0
        assert app.high_rate > app.low_rate

    def test_throughput_budget_respected(self):
        params = GeneratorParams(n_pes=16, tuple_budget=300.0)
        app = generate_application(2, params=params)
        table = RateTable(app.descriptor)
        assert table.total_pe_input_rate(1) <= 300.0 + 1e-6

    def test_corpus_names_and_size(self):
        corpus = generate_corpus(3, base_seed=50)
        assert len(corpus) == 3
        assert [app.name for app in corpus] == [
            "app-050",
            "app-051",
            "app-052",
        ]

    def test_corpus_size_validated(self):
        with pytest.raises(WorkloadError):
            generate_corpus(0)


class TestCalibrationProperty:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=200))
    def test_calibration_invariants_hold_for_any_seed(self, seed):
        params = GeneratorParams(n_pes=10)
        cluster = ClusterParams(n_hosts=3, cores_per_host=8)
        app = generate_application(seed, params=params, cluster=cluster)
        table = RateTable(app.descriptor)
        assert not app.deployment.is_overloaded(0, table)
        assert app.deployment.is_overloaded(1, table)
        # Low utilisation calibrated to the configured headroom.
        max_low = max(
            app.deployment.host_load(host, 0, table)
            for host in app.deployment.host_names
        )
        capacity = app.deployment.hosts[0].capacity
        assert max_low == pytest.approx(
            params.low_utilization * capacity, rel=1e-6
        )
