"""Tests for the Rate Monitor PE."""

from __future__ import annotations

import pytest

from repro.core import Host
from repro.dsps import InputTrace, StreamPlatform, TraceSegment
from repro.errors import SimulationError
from repro.laar import RateMonitor
from repro.placement import balanced_placement

GIGA = 1.0e9


def build_platform(pipeline_descriptor, trace):
    hosts = [
        Host("h0", cores=2, cycles_per_core=0.5 * GIGA),
        Host("h1", cores=2, cycles_per_core=0.5 * GIGA),
    ]
    deployment = balanced_placement(pipeline_descriptor, hosts, 2)
    return StreamPlatform(deployment, {"src": trace})


class TestRateMonitor:
    def test_invalid_interval_rejected(self, pipeline_descriptor):
        platform = build_platform(
            pipeline_descriptor, InputTrace([TraceSegment(4.0, 5.0)])
        )
        with pytest.raises(SimulationError):
            RateMonitor(platform, lambda rates: None, interval=0.0)

    def test_measures_constant_rate(self, pipeline_descriptor):
        platform = build_platform(
            pipeline_descriptor, InputTrace([TraceSegment(4.0, 10.0)])
        )
        reports = []
        RateMonitor(platform, reports.append, interval=1.0)
        platform.run(until=10.0)
        # After the first (partial) window, every report reads 4 t/s.
        steady = [r["src"] for r in reports[1:]]
        assert steady
        assert all(value == pytest.approx(4.0) for value in steady)

    def test_windows_do_not_double_count(self, pipeline_descriptor):
        platform = build_platform(
            pipeline_descriptor, InputTrace([TraceSegment(4.0, 10.0)])
        )
        reports = []
        RateMonitor(platform, reports.append, interval=1.0)
        platform.run(until=10.0)
        total_measured = sum(r["src"] for r in reports)  # interval = 1 s
        assert total_measured <= platform.sources["src"].emitted

    def test_detects_rate_change_within_one_interval(
        self, pipeline_descriptor
    ):
        trace = InputTrace(
            [TraceSegment(4.0, 10.0, "Low"), TraceSegment(8.0, 10.0, "High")]
        )
        platform = build_platform(pipeline_descriptor, trace)
        reports = []
        monitor = RateMonitor(
            platform,
            lambda rates: reports.append((platform.env.now, rates["src"])),
            interval=1.0,
        )
        platform.run(until=20.0)
        above = [t for t, rate in reports if rate > 4.0]
        assert above and min(above) <= 12.0
        assert monitor.measurements  # the monitor keeps its own log

    def test_longer_interval_smooths(self, pipeline_descriptor):
        # The rate switch at t=8 falls inside the (6, 9] window.
        trace = InputTrace([TraceSegment(4.0, 8.0), TraceSegment(8.0, 10.0)])
        platform = build_platform(pipeline_descriptor, trace)
        reports = []
        RateMonitor(platform, lambda r: reports.append(r["src"]), interval=3.0)
        platform.run(until=18.0)
        assert len(reports) == 6
        # The straddling window reads a mixed average.
        assert any(4.0 < rate < 8.0 for rate in reports)

    def test_baseline_taken_at_monitor_start_not_construction(
        self, pipeline_descriptor
    ):
        """Regression: tuples emitted before the monitor process starts
        must not be charged to its first window. A monitor attached
        after 5 s of history would otherwise report the whole backlog
        (~24 tuples) as one window's rate."""
        platform = build_platform(
            pipeline_descriptor, InputTrace([TraceSegment(4.0, 20.0)])
        )
        platform.run(until=5.0)
        assert platform.sources["src"].emitted > 0
        reports = []
        RateMonitor(platform, lambda r: reports.append(r["src"]), interval=1.0)
        platform.run(until=10.0)
        assert reports
        assert all(rate == pytest.approx(4.0, abs=1.0) for rate in reports)

    def test_measurements_reach_the_telemetry_log(self, pipeline_descriptor):
        platform = build_platform(
            pipeline_descriptor, InputTrace([TraceSegment(4.0, 10.0)])
        )
        RateMonitor(platform, lambda rates: None, interval=1.0)
        platform.run(until=5.0)
        events = platform.telemetry.events.of_type("rate.measurement")
        assert events
        assert all("src" in e.fields["rates"] for e in events)
