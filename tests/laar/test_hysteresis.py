"""Unit tests for HAController rate tolerance and down-switch hysteresis."""

from __future__ import annotations

import pytest

from repro.core import Host, OptimizationProblem, ft_search
from repro.dsps import InputTrace, StreamPlatform, TraceSegment
from repro.laar import HAController
from repro.placement import balanced_placement

GIGA = 1.0e9


@pytest.fixture
def setup(pipeline_descriptor):
    hosts = [
        Host("h0", cores=2, cycles_per_core=0.5 * GIGA),
        Host("h1", cores=2, cycles_per_core=0.5 * GIGA),
    ]
    deployment = balanced_placement(pipeline_descriptor, hosts, 2)
    result = ft_search(
        OptimizationProblem(deployment, ic_target=0.5), time_limit=10.0
    )
    platform = StreamPlatform(
        deployment,
        {"src": InputTrace([TraceSegment(4.0, 60.0, "Low")])},
        initial_active=result.strategy.active_map(0),
    )
    return platform, result.strategy


class TestRateTolerance:
    def test_noise_within_tolerance_does_not_switch(self, setup):
        platform, strategy = setup
        controller = HAController(
            platform, strategy, initial_config=0, rate_tolerance=0.25
        )
        # Low is 4 t/s; up to 5 t/s is measurement noise, not a change.
        for rate in (4.2, 4.6, 4.9, 5.0):
            controller.on_rates({"src": rate})
            assert controller.current_config == 0
        assert controller.switch_log == []

    def test_rates_beyond_tolerance_switch_up(self, setup):
        platform, strategy = setup
        controller = HAController(
            platform, strategy, initial_config=0, rate_tolerance=0.25
        )
        controller.on_rates({"src": 5.2})
        assert controller.current_config == 1

    def test_zero_tolerance_is_strict(self, setup):
        platform, strategy = setup
        controller = HAController(
            platform, strategy, initial_config=0, rate_tolerance=0.0
        )
        controller.on_rates({"src": 4.05})
        assert controller.current_config == 1


class TestDownConfirmation:
    def test_up_switches_are_never_delayed(self, setup):
        platform, strategy = setup
        controller = HAController(
            platform, strategy, initial_config=0, down_confirmation=3
        )
        controller.on_rates({"src": 7.5})
        assert controller.current_config == 1  # immediate: safety first

    def test_down_switch_needs_consecutive_confirmations(self, setup):
        platform, strategy = setup
        controller = HAController(
            platform, strategy, initial_config=1, down_confirmation=3
        )
        controller.on_rates({"src": 3.0})
        assert controller.current_config == 1
        controller.on_rates({"src": 3.2})
        assert controller.current_config == 1
        controller.on_rates({"src": 3.1})
        assert controller.current_config == 0  # third consecutive vote

    def test_interrupted_confirmation_resets(self, setup):
        platform, strategy = setup
        controller = HAController(
            platform, strategy, initial_config=1, down_confirmation=2
        )
        controller.on_rates({"src": 3.0})  # vote 1 for Low
        controller.on_rates({"src": 7.0})  # back to High: reset
        assert controller.current_config == 1
        controller.on_rates({"src": 3.0})  # vote 1 again
        assert controller.current_config == 1
        controller.on_rates({"src": 3.0})  # vote 2: switch
        assert controller.current_config == 0

    def test_confirmation_of_one_switches_immediately(self, setup):
        platform, strategy = setup
        controller = HAController(
            platform, strategy, initial_config=1, down_confirmation=1
        )
        controller.on_rates({"src": 3.0})
        assert controller.current_config == 0

    def test_invalid_confirmation_rejected(self, setup):
        platform, strategy = setup
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            HAController(
                platform, strategy, initial_config=0, down_confirmation=0
            )
