"""Tests for the HAController."""

from __future__ import annotations

import pytest

from repro.core import ActivationStrategy, Host, ReplicaId
from repro.core.optimizer import OptimizationProblem, ft_search
from repro.dsps import InputTrace, StreamPlatform, TraceSegment
from repro.errors import SimulationError
from repro.laar import HAController
from repro.placement import balanced_placement

GIGA = 1.0e9


@pytest.fixture
def setup(pipeline_descriptor):
    hosts = [
        Host("h0", cores=2, cycles_per_core=0.5 * GIGA),
        Host("h1", cores=2, cycles_per_core=0.5 * GIGA),
    ]
    deployment = balanced_placement(pipeline_descriptor, hosts, 2)
    result = ft_search(
        OptimizationProblem(deployment, ic_target=0.5), time_limit=10.0
    )
    assert result.strategy is not None
    platform = StreamPlatform(
        deployment,
        {"src": InputTrace([TraceSegment(4.0, 60.0, "Low")])},
        initial_active=result.strategy.active_map(0),
    )
    return platform, result.strategy


class TestHAController:
    def test_rejects_foreign_strategy(self, setup, diamond_deployment):
        platform, _ = setup
        foreign = ActivationStrategy.all_active(diamond_deployment)
        with pytest.raises(SimulationError, match="different deployment"):
            HAController(platform, foreign, initial_config=0)

    def test_rejects_negative_latency(self, setup):
        platform, strategy = setup
        with pytest.raises(SimulationError):
            HAController(
                platform, strategy, initial_config=0, command_latency=-1.0
            )

    def test_no_switch_for_dominated_rates(self, setup):
        platform, strategy = setup
        controller = HAController(platform, strategy, initial_config=0)
        controller.on_rates({"src": 3.5})
        assert controller.current_config == 0
        assert controller.switch_log == []

    def test_switch_to_high_applies_strategy(self, setup):
        platform, strategy = setup
        controller = HAController(
            platform, strategy, initial_config=0, command_latency=0.0
        )
        controller.on_rates({"src": 6.0})  # exceeds Low -> High config
        assert controller.current_config == 1
        platform.env.run(until=0.1)
        for replica_id in platform.deployment.replicas:
            assert platform.replica(replica_id).active == strategy.is_active(
                replica_id, 1
            )

    def test_commands_only_for_changed_replicas(self, setup):
        platform, strategy = setup
        controller = HAController(platform, strategy, initial_config=0)
        controller.on_rates({"src": 6.0})
        expected = sum(
            1
            for replica_id in platform.deployment.replicas
            if strategy.is_active(replica_id, 0)
            != strategy.is_active(replica_id, 1)
        )
        assert controller.commands_sent == expected

    def test_switch_back_restores(self, setup):
        platform, strategy = setup
        controller = HAController(
            platform, strategy, initial_config=0, command_latency=0.0
        )
        controller.on_rates({"src": 6.0})
        controller.on_rates({"src": 3.0})
        platform.env.run(until=0.1)
        assert controller.current_config == 0
        for replica_id in platform.deployment.replicas:
            assert platform.replica(replica_id).active == strategy.is_active(
                replica_id, 0
            )
        assert len(controller.switch_log) == 2

    def test_command_latency_delays_effect(self, setup):
        platform, strategy = setup
        controller = HAController(
            platform, strategy, initial_config=0, command_latency=0.5
        )
        changed = [
            replica_id
            for replica_id in platform.deployment.replicas
            if strategy.is_active(replica_id, 0)
            != strategy.is_active(replica_id, 1)
        ]
        assert changed, "fixture strategy must differ between configs"
        controller.on_rates({"src": 6.0})
        probe = changed[0]
        state_before = platform.replica(probe).active
        platform.env.run(until=0.4)
        assert platform.replica(probe).active == state_before
        platform.env.run(until=0.6)
        assert platform.replica(probe).active == strategy.is_active(probe, 1)

    def test_force_configuration(self, setup):
        platform, strategy = setup
        controller = HAController(platform, strategy, initial_config=0)
        controller.force_configuration(1)
        assert controller.current_config == 1
        for replica_id in platform.deployment.replicas:
            assert platform.replica(replica_id).active == strategy.is_active(
                replica_id, 1
            )

    def test_switches_recorded_in_metrics(self, setup):
        platform, strategy = setup
        controller = HAController(platform, strategy, initial_config=0)
        controller.on_rates({"src": 7.0})
        assert platform.metrics.config_switches
        time, config = platform.metrics.config_switches[0]
        assert config == 1
