"""End-to-end LAAR on a two-source application (4 input configurations).

The paper's experiments use a single source, but the model (Sec. 4.2) is
defined over the Cartesian configuration space of any number of sources.
This test drives the whole stack — descriptor, FT-Search, R-tree lookup,
Rate Monitor, HAController — with two independently bursting sources.
"""

from __future__ import annotations

import pytest

from repro.core import (
    ApplicationDescriptor,
    ApplicationGraph,
    ConfigurationSpace,
    EdgeProfile,
    Host,
    OptimizationProblem,
    ft_search,
    internal_completeness,
)
from repro.dsps import InputTrace, TraceSegment
from repro.laar import ExtendedApplication, MiddlewareConfig
from repro.placement import balanced_placement

GIGA = 1.0e9


@pytest.fixture(scope="module")
def two_source_setup():
    graph = ApplicationGraph.build(
        sources=["sensors", "tickets"],
        pes=["fuse", "analyze"],
        sinks=["out"],
        edges=[
            ("sensors", "fuse"),
            ("tickets", "fuse"),
            ("fuse", "analyze"),
            ("analyze", "out"),
        ],
    )
    space = ConfigurationSpace.from_source_rates(
        {
            "sensors": [(4.0, 0.7), (8.0, 0.3)],
            "tickets": [(2.0, 0.6), (5.0, 0.4)],
        }
    )
    profiles = {
        ("sensors", "fuse"): EdgeProfile(1.0, 0.05 * GIGA),
        ("tickets", "fuse"): EdgeProfile(1.0, 0.05 * GIGA),
        ("fuse", "analyze"): EdgeProfile(1.0, 0.06 * GIGA),
    }
    descriptor = ApplicationDescriptor(graph, profiles, space, "two-source")
    hosts = [
        Host("h0", cores=2, cycles_per_core=0.55 * GIGA),
        Host("h1", cores=2, cycles_per_core=0.55 * GIGA),
    ]
    deployment = balanced_placement(descriptor, hosts, 2)
    result = ft_search(
        OptimizationProblem(deployment, ic_target=0.5), time_limit=15.0
    )
    assert result.strategy is not None
    return descriptor, deployment, result


class TestModel:
    def test_configuration_space_is_cartesian(self, two_source_setup):
        descriptor, _, _ = two_source_setup
        space = descriptor.configuration_space
        assert len(space) == 4
        assert sum(c.probability for c in space) == pytest.approx(1.0)

    def test_strategy_meets_target_over_all_configs(self, two_source_setup):
        _, _, result = two_source_setup
        assert internal_completeness(result.strategy) >= 0.5 - 1e-9

    def test_worst_configuration_is_overloaded_when_static(
        self, two_source_setup
    ):
        descriptor, deployment, _ = two_source_setup
        from repro.core import RateTable

        table = RateTable(descriptor)
        # (8, 5): fuse 13 t/s * 0.05e9 * 2 + analyze 13 * 0.06e9... per
        # host with all replicas active exceeds 1.1e9.
        worst = max(range(4), key=lambda c: table.total_pe_input_rate(c))
        assert deployment.is_overloaded(worst, table)


class TestRuntime:
    def run(self, two_source_setup, sensors_trace, tickets_trace):
        _, deployment, result = two_source_setup
        app = ExtendedApplication(
            deployment,
            result.strategy,
            {"sensors": sensors_trace, "tickets": tickets_trace},
            middleware_config=MiddlewareConfig(
                monitor_interval=2.0, rate_tolerance=0.2
            ),
        )
        return app, app.run()

    def test_independent_bursts_tracked(self, two_source_setup):
        sensors = InputTrace(
            [
                TraceSegment(4.0, 20.0, "Low"),
                TraceSegment(8.0, 20.0, "High"),
                TraceSegment(4.0, 20.0, "Low"),
            ]
        )
        tickets = InputTrace(
            [
                TraceSegment(2.0, 40.0, "Low"),
                TraceSegment(5.0, 20.0, "High"),
            ]
        )
        app, metrics = self.run(two_source_setup, sensors, tickets)
        # The controller visited at least three of the four corners:
        # (L,L) initial, (H,L) during the sensors burst, (L,H) at the end.
        visited = {app.controller.current_config}
        visited.update(config for _, config in metrics.config_switches)
        assert len(visited) >= 3

    def test_output_tracks_input_through_corners(self, two_source_setup):
        sensors = InputTrace(
            [TraceSegment(4.0, 20.0, "Low"), TraceSegment(8.0, 40.0, "High")]
        )
        tickets = InputTrace(
            [TraceSegment(2.0, 40.0, "Low"), TraceSegment(5.0, 20.0, "High")]
        )
        _, metrics = self.run(two_source_setup, sensors, tickets)
        assert metrics.total_output >= 0.93 * metrics.total_input

    def test_monitor_reports_both_sources(self, two_source_setup):
        sensors = InputTrace([TraceSegment(4.0, 10.0, "Low")])
        tickets = InputTrace([TraceSegment(2.0, 10.0, "Low")])
        app, _ = self.run(two_source_setup, sensors, tickets)
        assert app.monitor is not None
        _, rates = app.monitor.measurements[-1]
        assert set(rates) == {"sensors", "tickets"}
