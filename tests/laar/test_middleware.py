"""End-to-end tests of the LAAR extended application (the Fig. 3 scenario)."""

from __future__ import annotations

import pytest

from repro.core import (
    Host,
    OptimizationProblem,
    ft_search,
    static_replication,
)
from repro.dsps import two_level_trace
from repro.errors import SimulationError
from repro.laar import ExtendedApplication, MiddlewareConfig
from repro.placement import balanced_placement

GIGA = 1.0e9


@pytest.fixture
def fig3_setup(pipeline_descriptor):
    """The Sec. 4.1 deployment: two hosts of 1e9 cycles/s each, so the
    High configuration (1.6e9 per host, fully replicated) overloads."""
    hosts = [
        Host("h0", cores=2, cycles_per_core=0.5 * GIGA),
        Host("h1", cores=2, cycles_per_core=0.5 * GIGA),
    ]
    deployment = balanced_placement(pipeline_descriptor, hosts, 2)
    result = ft_search(
        OptimizationProblem(deployment, ic_target=0.5), time_limit=10.0
    )
    assert result.strategy is not None
    trace = {"src": two_level_trace(4.0, 8.0, duration=90.0)}
    return deployment, result.strategy, trace


class TestConfigValidation:
    def test_bad_monitor_interval(self):
        with pytest.raises(SimulationError):
            MiddlewareConfig(monitor_interval=0.0)

    def test_bad_command_latency(self):
        with pytest.raises(SimulationError):
            MiddlewareConfig(command_latency=-0.1)


class TestStaticVariant:
    def test_static_app_has_no_monitor(self, fig3_setup):
        deployment, strategy, trace = fig3_setup
        app = ExtendedApplication(
            deployment,
            static_replication(deployment),
            trace,
            middleware_config=MiddlewareConfig(dynamic=False),
        )
        assert app.monitor is None

    def test_static_replication_saturates_during_peak(self, fig3_setup):
        """Fig. 3a: with static replication the CPUs saturate in High and
        the output rate falls behind the input rate."""
        deployment, _, trace = fig3_setup
        app = ExtendedApplication(
            deployment,
            static_replication(deployment),
            trace,
            middleware_config=MiddlewareConfig(dynamic=False),
        )
        metrics = app.run()
        # Host capacity caps throughput at 1e9 / 1.6e9 = 62.5% of High.
        peak_output = metrics.output_rate_in_window(35.0, 58.0)
        assert peak_output == pytest.approx(5.0, rel=0.15)
        assert metrics.logical_dropped > 0


class TestDynamicVariant:
    def test_laar_follows_the_input_rate(self, fig3_setup):
        """Fig. 3b: deactivating replicas during High lets the output
        follow the input."""
        deployment, strategy, trace = fig3_setup
        app = ExtendedApplication(deployment, strategy, trace)
        metrics = app.run()
        peak_output = metrics.output_rate_in_window(35.0, 58.0)
        assert peak_output == pytest.approx(8.0, rel=0.1)
        assert metrics.total_output >= 0.97 * metrics.total_input

    def test_laar_switches_and_switches_back(self, fig3_setup):
        deployment, strategy, trace = fig3_setup
        app = ExtendedApplication(deployment, strategy, trace)
        metrics = app.run()
        configs = [config for _, config in metrics.config_switches]
        assert configs == [1, 0]  # into High, back to Low

    def test_laar_uses_less_cpu_than_static(self, fig3_setup):
        deployment, strategy, trace = fig3_setup
        static_metrics = ExtendedApplication(
            deployment,
            static_replication(deployment),
            trace,
            middleware_config=MiddlewareConfig(dynamic=False),
        ).run()
        laar_metrics = ExtendedApplication(deployment, strategy, trace).run()
        assert laar_metrics.total_cpu_time < static_metrics.total_cpu_time

    def test_initial_configuration_matches_trace_start(self, fig3_setup):
        deployment, strategy, trace = fig3_setup
        app = ExtendedApplication(deployment, strategy, trace)
        assert app.controller.current_config == 0  # trace starts Low

    def test_initial_configuration_for_high_start(
        self, fig3_setup
    ):
        deployment, strategy, _ = fig3_setup
        trace = {
            "src": two_level_trace(
                4.0, 8.0, duration=60.0, high_position=0.0
            )
        }
        app = ExtendedApplication(deployment, strategy, trace)
        assert app.controller.current_config == 1
