"""Violation artifacts: distil, write, load, replay, minimize."""

from __future__ import annotations

import json

import pytest

from repro.chaos import (
    CampaignSpec,
    Injection,
    load_artifact,
    minimize_campaign,
    replay_artifact,
    run_campaign,
    sabotage_strategy,
    violation_artifact,
    write_artifact,
)
from repro.errors import ChaosError


@pytest.fixture(scope="session")
def failing(proven, bundle_path, strategy_path, chaos_dir):
    """A sabotaged campaign spec plus its (violating) digest."""
    broken, _, _ = sabotage_strategy(proven)
    broken_path = chaos_dir / "artifact-sabotaged.json"
    broken.to_json(broken_path)
    spec = CampaignSpec(
        bundle=bundle_path,
        strategy=str(broken_path),
        seed=1,
        reference_strategy=strategy_path,
        duration=30.0,
        schedule=(
            Injection.build(
                "slow_host", at=3.0, host="host1", factor=0.6,
                duration=4.0,
            ),
            Injection.build("pessimistic", at=8.0),
            Injection.build(
                "rack_crash", at=14.0, hosts=("host2",), downtime=3.0
            ),
        ),
    )
    digest = run_campaign(spec)
    assert not digest["invariants"]["ok"]
    return spec, digest


class TestArtifactRoundtrip:
    def test_distil_write_load(self, failing, tmp_path):
        spec, digest = failing
        artifact = violation_artifact(digest, spec)
        path = write_artifact(artifact, tmp_path / "violation.json")
        loaded = load_artifact(path)
        assert loaded == artifact
        assert loaded["first_violation"]["invariant"] == "ic-bound"
        assert loaded["seed"] == spec.seed

    def test_window_brackets_the_violation(self, failing):
        spec, digest = failing
        artifact = violation_artifact(digest, spec, window=2.0)
        t0 = artifact["first_violation"]["time"]
        times = [
            json.loads(line)["t"] for line in artifact["event_window"]
        ]
        assert times, "window captured no events"
        assert all(t0 - 2.0 <= t <= t0 + 2.0 for t in times)

    def test_clean_digest_refuses_to_distil(
        self, bundle_path, strategy_path
    ):
        digest = run_campaign(
            CampaignSpec(
                bundle=bundle_path,
                strategy=strategy_path,
                seed=0,
                duration=15.0,
            )
        )
        assert digest["invariants"]["ok"]
        with pytest.raises(ChaosError, match="no invariant violations"):
            violation_artifact(digest, "unused")


class TestReplay:
    def test_replay_reproduces_the_run_byte_for_byte(
        self, failing, tmp_path
    ):
        spec, digest = failing
        path = write_artifact(
            violation_artifact(digest, spec), tmp_path / "v.json"
        )
        replayed = replay_artifact(path)
        assert replayed["jsonl"] == digest["jsonl"]
        assert (
            replayed["invariants"]["violations"]
            == digest["invariants"]["violations"]
        )

    def test_replay_accepts_a_loaded_dict(self, failing):
        spec, digest = failing
        artifact = violation_artifact(digest, spec)
        replayed = replay_artifact(artifact)
        assert replayed["jsonl"] == digest["jsonl"]


class TestLoadArtifactErrors:
    def test_not_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{nope")
        with pytest.raises(ChaosError, match="not JSON"):
            load_artifact(path)

    def test_missing_spec(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps({"version": 1}))
        with pytest.raises(ChaosError, match="no campaign spec"):
            load_artifact(path)

    def test_wrong_version(self, failing, tmp_path):
        spec, digest = failing
        artifact = violation_artifact(digest, spec)
        artifact["version"] = 99
        path = write_artifact(artifact, tmp_path / "future.json")
        with pytest.raises(ChaosError, match="version"):
            load_artifact(path)

    def test_unknown_spec_field_rejected(self, failing, tmp_path):
        spec, digest = failing
        artifact = violation_artifact(digest, spec)
        artifact["spec"]["warp_drive"] = True
        path = write_artifact(artifact, tmp_path / "alien.json")
        with pytest.raises(ChaosError, match="unknown fields"):
            replay_artifact(path)


class TestMinimize:
    def test_minimize_drops_irrelevant_injections(self, failing):
        spec, digest = failing
        minimized, small_digest = minimize_campaign(spec, digest)
        assert len(minimized.schedule) == 1
        assert minimized.schedule[0].kind == "pessimistic"
        assert (
            small_digest["invariants"]["violations"][0]["invariant"]
            == "ic-bound"
        )

    def test_minimized_spec_still_replays(self, failing, tmp_path):
        spec, digest = failing
        minimized, small_digest = minimize_campaign(spec, digest)
        artifact = violation_artifact(small_digest, minimized)
        path = write_artifact(artifact, tmp_path / "minimal.json")
        replayed = replay_artifact(path)
        assert not replayed["invariants"]["ok"]

    def test_minimize_requires_a_violation(
        self, bundle_path, strategy_path
    ):
        spec = CampaignSpec(
            bundle=bundle_path,
            strategy=strategy_path,
            seed=0,
            duration=15.0,
        )
        with pytest.raises(ChaosError, match="nothing to minimize"):
            minimize_campaign(spec)
