"""The ``repro chaos`` command group end to end."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestChaosRun:
    def test_sweep_with_existing_bundle(
        self, bundle_path, strategy_path, tmp_path, capsys
    ):
        out_dir = tmp_path / "run"
        code = main(
            [
                "chaos", "run",
                "--bundle", bundle_path,
                "--strategy", strategy_path,
                "--campaigns", "3",
                "--duration", "20",
                "--jobs", "2",
                "--out-dir", str(out_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "all invariants held" in out

        report = json.loads((out_dir / "report.json").read_text())
        assert report["meta"]["campaigns"] == 3
        assert len(report["campaigns"]) == 3
        assert all(
            digest["invariants"]["ok"]
            for digest in report["campaigns"]
        )
        for digest in report["campaigns"]:
            events = out_dir / f"events-{digest['seed']}.jsonl"
            assert events.exists()
            assert (
                len(events.read_text().splitlines())
                == digest["events_emitted"]
            )

    def test_sweep_generates_its_own_workload(self, tmp_path, capsys):
        out_dir = tmp_path / "auto"
        code = main(
            [
                "chaos", "run",
                "--seed", "5",
                "--campaigns", "2",
                "--pes", "3",
                "--hosts", "3",
                "--duration", "15",
                "--time-limit", "3",
                "--out-dir", str(out_dir),
            ]
        )
        assert code == 0
        assert (out_dir / "bundle.json").exists()
        assert (out_dir / "strategy.json").exists()
        capsys.readouterr()


class TestChaosSabotage:
    @pytest.fixture(scope="class")
    def sabotage_dir(self, bundle_path, strategy_path, tmp_path_factory):
        out_dir = tmp_path_factory.mktemp("sabotage")
        code = main(
            [
                "chaos", "run",
                "--bundle", bundle_path,
                "--strategy", strategy_path,
                "--duration", "20",
                "--sabotage",
                "--out-dir", str(out_dir),
            ]
        )
        assert code == 0
        return out_dir

    def test_sabotage_is_caught_with_artifact(
        self, sabotage_dir, capsys
    ):
        artifact = json.loads(
            (sabotage_dir / "sabotage-artifact.json").read_text()
        )
        assert artifact["first_violation"]["invariant"] == "ic-bound"
        assert len(artifact["spec"]["schedule"]) == 1

    def test_artifact_replays(self, sabotage_dir, capsys):
        code = main(
            [
                "chaos", "replay",
                str(sabotage_dir / "sabotage-artifact.json"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "matches" in out

    def test_minimize_is_idempotent(self, sabotage_dir, tmp_path, capsys):
        target = tmp_path / "re-minimized.json"
        code = main(
            [
                "chaos", "minimize",
                str(sabotage_dir / "sabotage-artifact.json"),
                "--out", str(target),
            ]
        )
        assert code == 0
        minimized = json.loads(target.read_text())
        assert len(minimized["spec"]["schedule"]) == 1
        assert minimized["first_violation"]["invariant"] == "ic-bound"
