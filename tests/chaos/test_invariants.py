"""The invariant checker on synthetic event logs (known-good and broken)."""

from __future__ import annotations

import pytest

from repro.chaos import check_campaign, check_conservation
from repro.core import ActivationStrategy
from repro.obs.events import Event


def _events(*records):
    """Parsed-JSONL-style event dicts with sequential seq numbers."""
    return [
        {"seq": index, **record} for index, record in enumerate(records)
    ]


def _check(deployment, events, *, strategy=None, reference=None, **kw):
    strategy = strategy or ActivationStrategy.all_active(deployment)
    reference = reference or strategy
    kw.setdefault("command_latency", 0.05)
    kw.setdefault("detection_bound", 1.3)
    kw.setdefault("horizon", 30.0)
    return check_campaign(
        events, deployment, strategy, reference, 0, **kw
    )


class TestICBound:
    def test_clean_log_passes(self, pipeline_deployment):
        result = _check(pipeline_deployment, _events())
        assert result.ok
        assert result.violations == ()
        assert result.stats["intervals"] == 1
        assert result.stats["intervals_checked"] == 1

    def test_single_crash_per_pe_is_dominated_and_fine(
        self, pipeline_deployment
    ):
        result = _check(
            pipeline_deployment,
            _events(
                {"t": 5.0, "type": "replica.crash", "replica": "pe1#0"},
                {"t": 6.0, "type": "replica.crash", "replica": "pe2#1"},
            ),
        )
        assert result.ok
        # Fully replicated reference: the survivor keeps phi at 1, so
        # the realized rate sits exactly on the pessimistic floor.
        assert result.stats["min_ic_margin"] == pytest.approx(0.0)

    def test_double_crash_is_outside_the_model(self, pipeline_deployment):
        result = _check(
            pipeline_deployment,
            _events(
                {"t": 5.0, "type": "replica.crash", "replica": "pe1#0"},
                {"t": 6.0, "type": "replica.crash", "replica": "pe1#1"},
            ),
        )
        # Both replicas dead beats the pessimistic model's one victim:
        # the bound makes no promise there, so nothing is violated.
        assert result.ok
        assert result.stats["intervals_not_dominated"] >= 1

    def test_crash_plus_deactivation_breaks_the_bound(
        self, pipeline_deployment
    ):
        result = _check(
            pipeline_deployment,
            _events(
                {"t": 5.0, "type": "replica.crash", "replica": "pe1#0"},
                {
                    "t": 6.0,
                    "type": "replica.deactivate",
                    "replica": "pe1#1",
                },
            ),
        )
        assert not result.ok
        first = result.first()
        assert first.invariant == "ic-bound"
        assert first.time == pytest.approx(6.0)
        assert "pe1" in first.detail

    def test_host_crash_expands_to_its_replicas(self, pipeline_deployment):
        host = pipeline_deployment.host_names[0]
        on_host = pipeline_deployment.replicas_on(host)
        result = _check(
            pipeline_deployment,
            _events(
                {"t": 4.0, "type": "host.crash", "host": host},
                {"t": 9.0, "type": "host.recover", "host": host},
            ),
        )
        # Balanced placement puts one replica of each PE per host, so a
        # single host crash is exactly the pessimistic scenario.
        assert {r.pe for r in on_host} == {"pe1", "pe2"}
        assert result.ok

    def test_accepts_event_objects(self, pipeline_deployment):
        events = [
            Event(0, 5.0, "replica.crash", {"replica": "pe1#0"}),
            Event(1, 6.0, "replica.deactivate", {"replica": "pe1#1"}),
        ]
        result = _check(pipeline_deployment, events)
        assert not result.ok
        assert result.first().invariant == "ic-bound"

    def test_transition_window_is_excluded(self, pipeline_deployment):
        # During the command-latency gap after a switch decision, even a
        # PE with zero active replicas must not trip the bound — the
        # platform is legitimately mid-reconfiguration.
        result = _check(
            pipeline_deployment,
            _events(
                {
                    "t": 10.0,
                    "type": "config.switch",
                    "from": 0,
                    "to": 1,
                    "commands": 2,
                },
                {
                    "t": 10.02,
                    "type": "replica.deactivate",
                    "replica": "pe1#0",
                },
                {
                    "t": 10.03,
                    "type": "replica.deactivate",
                    "replica": "pe1#1",
                },
                {
                    "t": 10.05,
                    "type": "replica.activate",
                    "replica": "pe1#0",
                },
                {
                    "t": 10.05,
                    "type": "replica.activate",
                    "replica": "pe1#1",
                },
            ),
        )
        assert result.ok
        assert result.stats["intervals_transition"] >= 1

    def test_same_gap_outside_transition_violates(
        self, pipeline_deployment
    ):
        result = _check(
            pipeline_deployment,
            _events(
                {
                    "t": 10.02,
                    "type": "replica.deactivate",
                    "replica": "pe1#0",
                },
                {
                    "t": 10.03,
                    "type": "replica.deactivate",
                    "replica": "pe1#1",
                },
                {
                    "t": 10.05,
                    "type": "replica.activate",
                    "replica": "pe1#0",
                },
            ),
        )
        assert not result.ok
        assert result.first().invariant == "ic-bound"


class TestHostCapacity:
    def test_overcommitted_activation_is_flagged(
        self, tight_pipeline_deployment
    ):
        # Single-core hosts: all-active needs 160% of each host in the
        # High configuration (the Fig. 3 scenario).
        strategy = ActivationStrategy.all_active(tight_pipeline_deployment)
        result = check_campaign(
            _events(
                {
                    "t": 2.0,
                    "type": "config.switch",
                    "from": 0,
                    "to": 1,
                    "commands": 0,
                },
            ),
            tight_pipeline_deployment,
            strategy,
            strategy,
            0,
            command_latency=0.05,
            detection_bound=1.3,
            horizon=30.0,
        )
        assert not result.ok
        assert any(
            v.invariant == "host-capacity" for v in result.violations
        )

    def test_fits_within_capacity_in_low(self, tight_pipeline_deployment):
        strategy = ActivationStrategy.all_active(tight_pipeline_deployment)
        result = check_campaign(
            _events(),
            tight_pipeline_deployment,
            strategy,
            strategy,
            0,
            command_latency=0.05,
            detection_bound=1.3,
            horizon=30.0,
        )
        assert result.ok


class TestFailoverSpan:
    def _span(self, start, duration, pe="pe1", extra=()):
        return _events(
            *extra,
            {
                "t": start,
                "type": "span.start",
                "span": "s1",
                "name": "failover",
                "pe": pe,
                "replica": f"{pe}#0",
            },
            {
                "t": start + duration,
                "type": "span.end",
                "span": "s1",
                "name": "failover",
                "duration": duration,
                "pe": pe,
                "replica": f"{pe}#0",
            },
        )

    def test_prompt_failover_passes(self, pipeline_deployment):
        result = _check(pipeline_deployment, self._span(5.0, 1.0))
        assert result.ok
        assert result.stats["spans_checked"] == 1

    def test_overlong_failover_is_flagged(self, pipeline_deployment):
        result = _check(pipeline_deployment, self._span(5.0, 3.0))
        assert not result.ok
        assert result.first().invariant == "failover-span"

    def test_no_survivor_time_is_excused(self, pipeline_deployment):
        # Both replicas dead for 2.5 s inside the span: the election
        # could not complete, so the budget stretches accordingly.
        events = _events(
            {"t": 5.0, "type": "replica.crash", "replica": "pe1#0"},
            {"t": 5.0, "type": "replica.crash", "replica": "pe1#1"},
            {
                "t": 5.0,
                "type": "span.start",
                "span": "s1",
                "name": "failover",
                "pe": "pe1",
                "replica": "pe1#0",
            },
            {"t": 7.5, "type": "replica.recover", "replica": "pe1#1"},
            {
                "t": 7.8,
                "type": "span.end",
                "span": "s1",
                "name": "failover",
                "duration": 2.8,
                "pe": "pe1",
                "replica": "pe1#0",
            },
        )
        result = _check(pipeline_deployment, events)
        assert all(
            v.invariant != "failover-span" for v in result.violations
        )

    def test_unfinished_span_is_censored(self, pipeline_deployment):
        events = _events(
            {
                "t": 5.0,
                "type": "span.start",
                "span": "s1",
                "name": "failover",
                "pe": "pe1",
                "replica": "pe1#0",
            },
        )
        result = _check(pipeline_deployment, events)
        assert result.ok
        assert result.stats["spans_open"] == 1


class TestConservationAndLog:
    def test_balanced_counters_pass(self):
        violations = check_conservation(
            {
                "pe1#0": {
                    "received": 10,
                    "processed": 7,
                    "dropped": 1,
                    "lost": 1,
                    "queued": 1,
                }
            }
        )
        assert violations == []

    def test_leak_is_flagged(self):
        violations = check_conservation(
            {
                "pe1#0": {
                    "received": 10,
                    "processed": 7,
                    "dropped": 1,
                    "lost": 0,
                    "queued": 1,
                }
            }
        )
        assert len(violations) == 1
        assert violations[0].invariant == "conservation"
        assert "pe1#0" in violations[0].detail

    def test_conservation_feeds_check_campaign(self, pipeline_deployment):
        result = _check(
            pipeline_deployment,
            _events(),
            conservation={
                "pe1#0": {
                    "received": 5,
                    "processed": 3,
                    "dropped": 0,
                    "lost": 0,
                    "queued": 0,
                }
            },
        )
        assert not result.ok
        assert result.first().invariant == "conservation"

    def test_truncated_log_fails_loudly(self, pipeline_deployment):
        result = _check(pipeline_deployment, _events(), evicted=12)
        assert not result.ok
        assert result.first().invariant == "log-complete"
        assert "12" in result.first().detail


class TestMigrationInvariants:
    def _move_events(self, *extra):
        return _events(
            {
                "t": 2.0, "type": "migration.start", "migration": "m0",
                "pe": "pe1", "action": "move", "replica": "pe1#2",
                "src": "h0", "dst": "h1",
            },
            *extra,
        )

    def test_aborted_migration_rolls_back_cleanly(
        self, pipeline_deployment
    ):
        result = _check(
            pipeline_deployment,
            self._move_events(
                {
                    "t": 3.0, "type": "migration.abort",
                    "migration": "m0", "pe": "pe1",
                    "reason": "host.crash:h1",
                },
            ),
        )
        assert result.ok
        assert result.stats["migrations_seen"] == 1

    def test_election_of_rolled_back_replica_is_flagged(
        self, pipeline_deployment
    ):
        result = _check(
            pipeline_deployment,
            self._move_events(
                {
                    "t": 3.0, "type": "migration.abort",
                    "migration": "m0", "pe": "pe1",
                    "reason": "host.crash:h1",
                },
                {
                    "t": 4.0, "type": "primary.elected",
                    "pe": "pe1", "replica": "pe1#2",
                },
            ),
        )
        assert not result.ok
        assert [v.invariant for v in result.violations] == [
            "migration-rollback"
        ]

    def test_election_after_completed_migration_is_fine(
        self, pipeline_deployment
    ):
        result = _check(
            pipeline_deployment,
            self._move_events(
                {
                    "t": 3.0, "type": "migration.cutover",
                    "migration": "m0", "pe": "pe1",
                    "from": "pe1#0", "to": "pe1#2",
                },
                {
                    "t": 3.5, "type": "migration.done",
                    "migration": "m0", "pe": "pe1", "action": "move",
                    "lost": 0,
                },
                {
                    "t": 4.0, "type": "primary.elected",
                    "pe": "pe1", "replica": "pe1#2",
                },
            ),
        )
        assert result.ok

    def test_open_window_holds_the_worse_floor(self, pipeline_deployment):
        from repro.chaos.invariants import _Replay

        state = _Replay(
            pipeline_deployment,
            ActivationStrategy.all_active(pipeline_deployment),
            initial_config=0,
            command_latency=0.05,
        )
        floors = {0: 0.9, 1: 0.4}
        assert state.migration_floor(floors) == 0.9
        state.apply(
            2.0,
            "migration.start",
            {
                "migration": "m0", "pe": "pe1", "action": "move",
                "replica": "pe1#2", "src": "h0", "dst": "h1",
            },
        )
        # The window opened in config 0; after a switch to config 1 the
        # interval is held to the worse of the two deployments' floors.
        state.apply(2.5, "config.switch", {"to": 1})
        assert state.migration_floor(floors) == 0.4
        state.apply(2.6, "config.switch", {"to": 0})
        floors_flipped = {0: 0.4, 1: 0.9}
        state.apply(
            2.7,
            "migration.done",
            {"migration": "m0", "pe": "pe1", "action": "move", "lost": 0},
        )
        assert state.migration_floor(floors_flipped) == 0.4

    def test_remove_shrinks_membership(self, pipeline_deployment):
        result = _check(
            pipeline_deployment,
            _events(
                {
                    "t": 2.0, "type": "migration.start",
                    "migration": "m0", "pe": "pe1", "action": "remove",
                    "replica": "pe1#1", "src": "h1", "dst": "",
                },
                {
                    "t": 2.0, "type": "migration.done",
                    "migration": "m0", "pe": "pe1", "action": "remove",
                    "lost": 0,
                },
                # The removed replica's host crashing later must not
                # count against pe1 — it no longer lives there.
                {"t": 5.0, "type": "host.crash", "host": "h1"},
                {"t": 6.0, "type": "host.recover", "host": "h1"},
            ),
        )
        assert result.ok
