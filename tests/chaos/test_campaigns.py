"""Campaign generation and the seeded sweep the CI gauntlet runs.

The 50-seed sweep is the heart of the chaos suite: every seeded
campaign against the FT-Search-proven strategy must satisfy every
invariant, and the digests must be byte-identical whether the sweep
runs serially or across four worker processes.
"""

from __future__ import annotations

import json

import pytest

from repro.chaos import (
    INJECTION_KINDS,
    CampaignSpec,
    Injection,
    generate_schedule,
    run_campaign,
    run_campaigns,
    sabotage_strategy,
)
from repro.dsps import two_level_trace
from repro.errors import ChaosError
from repro.obs.validate import validate_lines
from repro.workloads import load_bundle

SWEEP_SEEDS = range(50)


def _sweep_specs(bundle_path, strategy_path):
    return [
        CampaignSpec(
            bundle=bundle_path,
            strategy=strategy_path,
            seed=seed,
            duration=40.0,
            n_injections=3,
            heartbeat_interval=0.5 if seed % 2 else None,
        )
        for seed in SWEEP_SEEDS
    ]


@pytest.fixture(scope="session")
def sweep(bundle_path, strategy_path):
    return run_campaigns(
        _sweep_specs(bundle_path, strategy_path), jobs=4
    )


class TestCampaignSpec:
    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ChaosError, match="duration"):
            CampaignSpec(bundle="b", strategy="s", seed=0, duration=0.0)

    def test_rejects_negative_injections(self):
        with pytest.raises(ChaosError, match="n_injections"):
            CampaignSpec(
                bundle="b", strategy="s", seed=0, n_injections=-1
            )

    def test_detection_bound_grows_with_heartbeats(self):
        abstract = CampaignSpec(bundle="b", strategy="s", seed=0)
        emergent = CampaignSpec(
            bundle="b", strategy="s", seed=0, heartbeat_interval=0.5
        )
        assert emergent.detection_bound == pytest.approx(
            abstract.detection_bound + 1.0
        )


class TestGenerateSchedule:
    @pytest.fixture()
    def app(self, bundle_path):
        return load_bundle(bundle_path)

    def _schedule(self, app, seed, n=6, duration=40.0):
        spec = CampaignSpec(
            bundle="unused",
            strategy="unused",
            seed=seed,
            duration=duration,
            n_injections=n,
        )
        trace = two_level_trace(app.low_rate, app.high_rate, duration)
        return generate_schedule(spec, app.deployment, trace)

    def test_same_seed_same_schedule(self, app):
        assert self._schedule(app, 3) == self._schedule(app, 3)

    def test_different_seeds_differ(self, app):
        schedules = {self._schedule(app, seed) for seed in range(8)}
        assert len(schedules) > 1

    def test_schedule_is_sorted_and_in_range(self, app):
        schedule = self._schedule(app, 11, n=8)
        times = [injection.at for injection in schedule]
        assert times == sorted(times)
        assert all(1.0 <= t <= 39.0 for t in times)
        assert all(
            injection.kind in INJECTION_KINDS for injection in schedule
        )

    def test_at_most_one_pessimistic(self, app):
        for seed in range(20):
            schedule = self._schedule(app, seed, n=8)
            pessimistic = [
                i for i in schedule if i.kind == "pessimistic"
            ]
            assert len(pessimistic) <= 1


class TestSweep:
    def test_every_campaign_holds_every_invariant(self, sweep):
        failures = [
            (digest["seed"], digest["invariants"]["violations"])
            for digest in sweep
            if not digest["invariants"]["ok"]
        ]
        assert failures == []

    def test_sweep_covers_the_injection_library(self, sweep):
        kinds = {
            injection["kind"]
            for digest in sweep
            for injection in digest["schedule"]
        }
        # migration_strike needs a live MigrationEngine, so it is not
        # part of the generator's draw (and seeded schedules predating
        # it stay stable); everything else must be covered.
        assert kinds == set(INJECTION_KINDS) - {"migration_strike"}

    def test_no_campaign_loses_events(self, sweep):
        assert all(digest["events_evicted"] == 0 for digest in sweep)

    def test_event_logs_validate_against_the_schema(self, sweep):
        digest = sweep[0]
        lines = digest["jsonl"].splitlines()
        assert len(lines) == digest["events_emitted"]
        assert validate_lines(lines) == []

    def test_conservation_counters_are_complete(self, sweep, chaos_app):
        digest = sweep[1]
        expected = {str(r) for r in chaos_app.deployment.replicas}
        assert set(digest["conservation"]) == expected
        for counters in digest["conservation"].values():
            assert set(counters) == {
                "received", "processed", "dropped", "lost", "queued",
            }

    def test_clean_sweep_fires_no_burn_alerts(self, sweep):
        # A proven strategy under the full injection library must stay
        # above its pessimistic floor: any firing availability-burn
        # alert on a clean sweep is a false positive.
        firing = [
            (digest["seed"], alert)
            for digest in sweep
            for alert in digest["slo"]["alerts"]
            if alert["state"] == "firing"
        ]
        assert firing == []
        for digest in sweep:
            slo = digest["slo"]
            assert slo["verdict"] == "met"
            assert slo["trusted"] is True
            assert slo["n_windows"] > 0
            assert digest["log_complete"] is True

    def test_slo_events_land_in_the_stream(self, sweep):
        digest = sweep[0]
        types = {
            json.loads(line)["type"]
            for line in digest["jsonl"].splitlines()
        }
        assert {"slo.window", "slo.budget"} <= types

    def test_failover_spans_exercised(self, sweep):
        checked = sum(
            digest["invariants"]["stats"]["spans_checked"]
            for digest in sweep
        )
        assert checked > 0

    def test_serial_and_parallel_are_byte_identical(
        self, sweep, bundle_path, strategy_path
    ):
        serial = run_campaigns(
            _sweep_specs(bundle_path, strategy_path)[:6], jobs=1
        )
        for one, many in zip(serial, sweep[:6], strict=True):
            assert one["jsonl"] == many["jsonl"]
            assert json.dumps(one, sort_keys=True) == json.dumps(
                many, sort_keys=True
            )

    def test_rerun_of_one_campaign_is_deterministic(
        self, sweep, bundle_path, strategy_path
    ):
        spec = _sweep_specs(bundle_path, strategy_path)[2]
        again = run_campaign(spec)
        assert again["jsonl"] == sweep[2]["jsonl"]


class TestRunCampaign:
    def test_rejects_non_spec(self):
        with pytest.raises(TypeError, match="CampaignSpec"):
            run_campaign({"seed": 0})

    def test_explicit_schedule_is_pinned_in_digest(
        self, bundle_path, strategy_path
    ):
        schedule = (
            Injection.build(
                "slow_host", at=4.0, host="host0", factor=0.5,
                duration=3.0,
            ),
        )
        digest = run_campaign(
            CampaignSpec(
                bundle=bundle_path,
                strategy=strategy_path,
                seed=9,
                duration=15.0,
                schedule=schedule,
            )
        )
        assert digest["schedule"] == [schedule[0].to_dict()]
        assert digest["invariants"]["ok"]

    def test_digest_metrics_add_up(self, bundle_path, strategy_path):
        digest = run_campaign(
            CampaignSpec(
                bundle=bundle_path,
                strategy=strategy_path,
                seed=4,
                duration=20.0,
            )
        )
        metrics = digest["metrics"]
        assert metrics["input"] > 0
        assert metrics["processed"] > 0
        assert digest["initial_config"] in (0, 1)


class TestSabotage:
    def test_sabotaged_strategy_is_caught(
        self, chaos_app, proven, bundle_path, strategy_path, chaos_dir
    ):
        broken, pe, config_index = sabotage_strategy(proven)
        assert proven.fully_replicated(pe, config_index)
        assert not broken.fully_replicated(pe, config_index)
        broken_path = chaos_dir / "sabotaged.json"
        broken.to_json(broken_path)

        digest = run_campaign(
            CampaignSpec(
                bundle=bundle_path,
                strategy=str(broken_path),
                seed=0,
                reference_strategy=strategy_path,
                duration=30.0,
                schedule=(Injection.build("pessimistic", at=5.0),),
            )
        )
        assert not digest["invariants"]["ok"]
        invariants = {
            violation["invariant"]
            for violation in digest["invariants"]["violations"]
        }
        assert "ic-bound" in invariants
        # The streaming SLO engine must catch the same breach as a
        # burn-rate alert and a breached budget.
        firing = [
            alert
            for alert in digest["slo"]["alerts"]
            if alert["state"] == "firing"
        ]
        assert firing, "sabotage must fire an availability-burn alert"
        assert firing[0]["rule"] == "availability-burn"
        assert digest["slo"]["verdict"] == "breached"

    def test_sabotage_requires_a_replicated_cell(self, chaos_app, proven):
        broken, _, _ = sabotage_strategy(proven)
        assert broken.name.endswith("-sabotaged")
