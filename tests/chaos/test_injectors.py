"""The injection value type, rack grouping, and schedule application."""

from __future__ import annotations

import json

import pytest

from repro.chaos import CampaignSpec, Injection, racks, run_campaign
from repro.errors import ChaosError


class TestInjection:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ChaosError, match="unknown injection kind"):
            Injection.build("meteor_strike", at=1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ChaosError, match="must be >= 0"):
            Injection.build("flap", at=-0.5)

    def test_param_lookup(self):
        injection = Injection.build(
            "slow_host", at=2.0, host="host0", factor=0.5, duration=3.0
        )
        assert injection.param("host") == "host0"
        assert injection.param("factor") == 0.5
        with pytest.raises(ChaosError, match="no parameter"):
            injection.param("nope")

    def test_dict_roundtrip_preserves_identity(self):
        original = Injection.build(
            "rack_crash", at=4.5, hosts=("host0", "host1"), downtime=3.0
        )
        restored = Injection.from_dict(original.to_dict())
        assert restored == original

    def test_dict_roundtrip_survives_json(self):
        original = Injection.build(
            "recovery_storm",
            at=9.0,
            hosts=("host1", "host2"),
            stagger=0.5,
            downtime=4.0,
        )
        over_the_wire = json.loads(json.dumps(original.to_dict()))
        assert Injection.from_dict(over_the_wire) == original

    def test_params_are_order_insensitive(self):
        a = Injection.build("flap", at=1.0, host="h", cycles=2,
                            period=2.0, downtime=0.5)
        b = Injection.from_dict(
            {
                "kind": "flap",
                "at": 1.0,
                "params": {
                    "period": 2.0, "downtime": 0.5,
                    "host": "h", "cycles": 2,
                },
            }
        )
        assert a == b


class TestRacks:
    def test_chunks_sorted_hosts(self):
        grouping = racks(["host2", "host0", "host1"], rack_size=2)
        assert grouping == (("host0", "host1"), ("host2",))

    def test_rack_size_one(self):
        assert racks(["b", "a"], rack_size=1) == (("a",), ("b",))

    def test_invalid_rack_size(self):
        with pytest.raises(ChaosError, match="rack_size"):
            racks(["a"], rack_size=0)


class TestApplyInjection:
    """Schedule application, observed through a real campaign run."""

    def _run(self, bundle_path, strategy_path, schedule):
        spec = CampaignSpec(
            bundle=bundle_path,
            strategy=strategy_path,
            seed=0,
            duration=20.0,
            schedule=schedule,
        )
        return run_campaign(spec)

    def test_rack_crash_crashes_and_recovers_hosts(
        self, bundle_path, strategy_path
    ):
        digest = self._run(
            bundle_path,
            strategy_path,
            (
                Injection.build(
                    "rack_crash",
                    at=5.0,
                    hosts=("host0", "host1"),
                    downtime=4.0,
                ),
            ),
        )
        counts = digest["event_counts"]
        assert counts["chaos.inject"] == 1
        assert counts["host.crash"] == 2
        assert counts["host.recover"] == 2
        assert digest["invariants"]["ok"]

    def test_flap_cycles_one_host(self, bundle_path, strategy_path):
        digest = self._run(
            bundle_path,
            strategy_path,
            (
                Injection.build(
                    "flap",
                    at=3.0,
                    host="host0",
                    cycles=3,
                    period=3.0,
                    downtime=0.4,
                ),
            ),
        )
        assert digest["event_counts"]["host.crash"] == 3
        assert digest["event_counts"]["host.recover"] == 3

    def test_slow_host_degrades_and_restores(
        self, bundle_path, strategy_path
    ):
        digest = self._run(
            bundle_path,
            strategy_path,
            (
                Injection.build(
                    "slow_host",
                    at=4.0,
                    host="host1",
                    factor=0.4,
                    duration=6.0,
                ),
            ),
        )
        assert digest["event_counts"]["host.degrade"] == 1
        assert digest["event_counts"]["host.restore"] == 1
        assert digest["invariants"]["ok"]

    def test_replica_hang_crashes_one_replica(
        self, chaos_app, bundle_path, strategy_path
    ):
        replica = str(chaos_app.deployment.replicas[0])
        digest = self._run(
            bundle_path,
            strategy_path,
            (
                Injection.build(
                    "replica_hang", at=6.0, replica=replica, duration=4.0
                ),
            ),
        )
        assert digest["event_counts"]["replica.crash"] == 1
        assert digest["event_counts"]["replica.recover"] == 1

    def test_pessimistic_kills_one_replica_per_pe(
        self, chaos_app, bundle_path, strategy_path
    ):
        digest = self._run(
            bundle_path,
            strategy_path,
            (Injection.build("pessimistic", at=5.0),),
        )
        n_pes = len(chaos_app.deployment.descriptor.graph.pes)
        assert digest["event_counts"]["replica.crash"] == n_pes
        assert "replica.recover" not in digest["event_counts"]
        assert digest["invariants"]["ok"]

    def test_unknown_host_rejected(self, bundle_path, strategy_path):
        with pytest.raises(ChaosError, match="unknown host"):
            self._run(
                bundle_path,
                strategy_path,
                (
                    Injection.build(
                        "slow_host",
                        at=1.0,
                        host="ghost",
                        factor=0.5,
                        duration=1.0,
                    ),
                ),
            )

    def test_unknown_replica_rejected(self, bundle_path, strategy_path):
        with pytest.raises(ChaosError, match="unknown replica"):
            self._run(
                bundle_path,
                strategy_path,
                (
                    Injection.build(
                        "replica_hang",
                        at=1.0,
                        replica="ghost#0",
                        duration=1.0,
                    ),
                ),
            )

    def test_flap_downtime_must_undershoot_period(
        self, bundle_path, strategy_path
    ):
        with pytest.raises(ChaosError, match="shorter than"):
            self._run(
                bundle_path,
                strategy_path,
                (
                    Injection.build(
                        "flap",
                        at=1.0,
                        host="host0",
                        cycles=2,
                        period=1.0,
                        downtime=1.5,
                    ),
                ),
            )

    def test_storm_downtime_must_outlast_stagger(
        self, bundle_path, strategy_path
    ):
        with pytest.raises(ChaosError, match="outlast"):
            self._run(
                bundle_path,
                strategy_path,
                (
                    Injection.build(
                        "recovery_storm",
                        at=1.0,
                        hosts=("host0", "host1"),
                        stagger=2.0,
                        downtime=1.0,
                    ),
                ),
            )


class TestMigrationStrike:
    def _build(self, pipeline_descriptor):
        from repro.core import Host
        from repro.dsps import StreamPlatform, two_level_trace
        from repro.elastic import MigrationEngine
        from repro.placement import balanced_placement

        hosts = [
            Host(f"h{i}", cores=4, cycles_per_core=1.0e9)
            for i in range(3)
        ]
        deployment = balanced_placement(
            pipeline_descriptor, hosts, replication_factor=2
        )
        platform = StreamPlatform(
            deployment,
            {"src": two_level_trace(4.0, 8.0, duration=10.0)},
        )
        return platform, MigrationEngine(platform)

    def _free_host(self, platform, pe):
        taken = {
            m.host.name for m in platform.group(pe).members
        }
        return sorted(
            h.name
            for h in platform.deployment.hosts
            if h.name not in taken
        )[0]

    def test_requires_the_migration_engine(self, pipeline_descriptor):
        from repro.chaos.injectors import apply_injection

        platform, _engine = self._build(pipeline_descriptor)
        injection = Injection.build(
            "migration_strike", at=2.5, downtime=1.0
        )
        with pytest.raises(ChaosError, match="migration engine"):
            apply_injection(platform, injection)

    def test_strike_aborts_the_open_window(self, pipeline_descriptor):
        from repro.chaos.injectors import apply_injection

        platform, engine = self._build(pipeline_descriptor)
        src = sorted(
            m.host.name for m in platform.group("pe1").members
        )[0]
        dst = self._free_host(platform, "pe1")
        platform.env.schedule_at(
            2.0, lambda: engine.migrate("pe1", src, dst)
        )
        # Transfer 0.05s then a 1s dual window: 2.5 lands inside it.
        apply_injection(
            platform,
            Injection.build("migration_strike", at=2.5, downtime=1.0),
            engine=engine,
        )
        platform.run()
        assert engine.aborted == 1
        assert engine.completed == 0
        types = [
            json.loads(line)["type"]
            for line in platform.telemetry.events.to_jsonl().splitlines()
        ]
        assert "chaos.inject" in types
        assert "migration.abort" in types

    def test_no_open_window_is_a_deterministic_noop(
        self, pipeline_descriptor
    ):
        from repro.chaos.injectors import apply_injection

        platform, engine = self._build(pipeline_descriptor)
        apply_injection(
            platform,
            Injection.build("migration_strike", at=2.5, downtime=1.0),
            engine=engine,
        )
        platform.run()
        assert engine.attempted == 0
        types = [
            json.loads(line)["type"]
            for line in platform.telemetry.events.to_jsonl().splitlines()
        ]
        assert "host.crash" not in types
