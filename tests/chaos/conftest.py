"""Shared chaos fixtures: a small proven application on disk.

Campaign specs carry file paths (they must be picklable for the process
fabric), so the fixtures materialize one generated bundle plus its
FT-Search-proven strategy into a session-scoped temporary directory.
The application is deliberately small — 4 PEs over 3 hosts — so a full
campaign simulates in a few milliseconds and the 50-seed sweep stays
cheap.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.optimizer import OptimizationProblem, ft_search
from repro.workloads import (
    ClusterParams,
    GeneratorParams,
    generate_application,
    save_bundle,
)


@pytest.fixture(scope="session")
def chaos_dir(tmp_path_factory) -> Path:
    return tmp_path_factory.mktemp("chaos")


@pytest.fixture(scope="session")
def chaos_app(chaos_dir):
    app = generate_application(
        7,
        GeneratorParams(n_pes=4, low_rate_range=(2.0, 6.0)),
        ClusterParams(n_hosts=3, cores_per_host=4),
    )
    save_bundle(app, chaos_dir / "bundle.json")
    return app


@pytest.fixture(scope="session")
def bundle_path(chaos_app, chaos_dir) -> str:
    return str(chaos_dir / "bundle.json")


@pytest.fixture(scope="session")
def proven(chaos_app):
    """The FT-Search-proven strategy object (IC >= 0.5 pessimistic)."""
    result = ft_search(
        OptimizationProblem(chaos_app.deployment, ic_target=0.5)
    )
    assert result.found_solution
    return result.strategy


@pytest.fixture(scope="session")
def strategy_path(proven, chaos_dir) -> str:
    path = chaos_dir / "strategy.json"
    proven.to_json(path)
    return str(path)
