"""End-to-end integration: the paper's guarantee, validated on random apps.

The central claim of the paper is that the IC value computed under the
pessimistic failure model is a *lower bound* on the completeness observed
on the actual deployment in the worst case. These tests close the loop:
generate an application, run FT-Search, deploy on the simulator, inject
the worst case, and compare measured against promised — plus the
heterogeneous-host case the experiments never exercise.
"""

from __future__ import annotations

import pytest

from repro.core import (
    ApplicationDescriptor,
    ApplicationGraph,
    ConfigurationSpace,
    EdgeProfile,
    Host,
    OptimizationProblem,
    ft_search,
    non_replicated,
)
from repro.dsps import PlatformConfig, inject_pessimistic_failures, two_level_trace
from repro.laar import ExtendedApplication, MiddlewareConfig
from repro.placement import balanced_placement
from repro.workloads import ClusterParams, GeneratorParams, generate_application

GIGA = 1.0e9
# Configuration-switch lag (monitor window + down-confirmation, ~6 s per
# burst) keeps the High activation alive briefly during Low, costing a
# bounded, trace-length-amortised slice of worst-case completeness; the
# paper observes the same effect as rare violations of up to ~4.7 % on
# 300 s traces. See EXPERIMENTS.md "known residual deviations".
TRANSITION_SLACK = 0.90


def run_worst_case(app, strategy, duration=150.0):
    trace = two_level_trace(
        app.low_rate, app.high_rate, duration=duration, high_fraction=1 / 3
    )
    middleware = MiddlewareConfig(
        monitor_interval=2.0, rate_tolerance=0.25, down_confirmation=2
    )
    platform_config = PlatformConfig(arrival_jitter=0.3, seed=app.seed)

    reference = ExtendedApplication(
        app.deployment,
        non_replicated(strategy, 1),
        {"src": trace},
        platform_config=platform_config,
        middleware_config=MiddlewareConfig(dynamic=False),
    ).run()

    failed_app = ExtendedApplication(
        app.deployment,
        strategy,
        {"src": trace},
        platform_config=platform_config,
        middleware_config=middleware,
    )
    inject_pessimistic_failures(failed_app.platform, strategy)
    failed = failed_app.run()
    return failed.tuples_processed / max(1, reference.tuples_processed)


class TestGuaranteeEndToEnd:
    @pytest.mark.parametrize("seed", [41, 42, 43])
    @pytest.mark.parametrize("target", [0.4, 0.55])
    def test_measured_ic_honours_the_bound(self, seed, target):
        app = generate_application(
            seed,
            params=GeneratorParams(n_pes=10),
            cluster=ClusterParams(n_hosts=3, cores_per_host=8),
        )
        result = ft_search(
            OptimizationProblem(app.deployment, ic_target=target),
            time_limit=3.0,
        )
        assert result.strategy is not None, "corpus app must be feasible"
        measured = run_worst_case(app, result.strategy)
        assert measured >= result.best_ic * TRANSITION_SLACK, (
            f"seed {seed}: measured {measured:.3f} <"
            f" promised {result.best_ic:.3f}"
        )


class TestCostModelAgreement:
    def test_simulated_cpu_matches_cost_model_for_laar(self):
        """The Eq. 13 cost of a LAAR strategy predicts the simulator's
        measured CPU time (best case), validating that Fig. 9's model
        cost / measured CPU equivalence holds beyond all-active."""
        from repro.core import host_load_table

        app = generate_application(
            45,
            params=GeneratorParams(n_pes=10),
            cluster=ClusterParams(n_hosts=3, cores_per_host=8),
        )
        result = ft_search(
            OptimizationProblem(app.deployment, ic_target=0.5),
            time_limit=3.0,
        )
        assert result.strategy is not None
        duration = 90.0
        trace = two_level_trace(
            app.low_rate, app.high_rate, duration=duration,
            high_fraction=1 / 3,
        )
        metrics = ExtendedApplication(
            app.deployment,
            result.strategy,
            {"src": trace},
            middleware_config=MiddlewareConfig(
                monitor_interval=2.0, rate_tolerance=0.25,
                down_confirmation=2,
            ),
        ).run()

        # Expected CPU time: per configuration, the host loads of the
        # strategy, weighted by the configuration's share of the trace.
        loads = host_load_table(result.strategy)
        durations = {0: duration * 2 / 3, 1: duration / 3}
        expected = 0.0
        for (host, c), load in loads.items():
            cycles_per_core = app.deployment.host(host).cycles_per_core
            expected += load * durations[c] / cycles_per_core
        assert metrics.total_cpu_time == pytest.approx(expected, rel=0.1)


class TestHeterogeneousHosts:
    @pytest.fixture
    def heterogeneous_setup(self):
        """A big host and two small ones — capacities differ by 2x."""
        graph = ApplicationGraph.build(
            ["src"], ["a", "b", "c"], ["sink"],
            [("src", "a"), ("a", "b"), ("b", "c"), ("c", "sink")],
        )
        space = ConfigurationSpace.two_level("src", 4.0, 8.0, 0.7)
        profiles = {
            ("src", "a"): EdgeProfile(1.0, 0.05 * GIGA),
            ("a", "b"): EdgeProfile(1.0, 0.06 * GIGA),
            ("b", "c"): EdgeProfile(1.0, 0.04 * GIGA),
        }
        descriptor = ApplicationDescriptor(graph, profiles, space, "hetero")
        hosts = [
            Host("big", cores=3, cycles_per_core=0.4 * GIGA),
            Host("small0", cores=2, cycles_per_core=0.2 * GIGA),
            Host("small1", cores=2, cycles_per_core=0.2 * GIGA),
        ]
        return descriptor, balanced_placement(descriptor, hosts, 2)

    def test_search_respects_individual_capacities(
        self, heterogeneous_setup
    ):
        descriptor, deployment = heterogeneous_setup
        result = ft_search(
            OptimizationProblem(deployment, ic_target=0.3), time_limit=10.0
        )
        assert result.strategy is not None
        from repro.core import cpu_constraint_violations

        assert cpu_constraint_violations(result.strategy) == []

    def test_simulation_respects_individual_capacities(
        self, heterogeneous_setup
    ):
        descriptor, deployment = heterogeneous_setup
        result = ft_search(
            OptimizationProblem(deployment, ic_target=0.3), time_limit=10.0
        )
        trace = {"src": two_level_trace(4.0, 8.0, duration=45.0)}
        metrics = ExtendedApplication(
            deployment, result.strategy, trace
        ).run()
        # The strategy keeps even the small hosts un-overloaded: the
        # output keeps up with the input.
        assert metrics.total_output >= 0.9 * metrics.total_input
