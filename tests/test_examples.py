"""Smoke tests: every example script imports and its cheap pieces run.

The examples are part of the public deliverable; these tests keep them
from rotting. Full `main()` runs are exercised only for the fast ones.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

EXAMPLE_FILES = [
    "quickstart.py",
    "smart_city_traffic.py",
    "capacity_planning.py",
    "ftsearch_anatomy.py",
    "profile_and_deploy.py",
    "provider_contracting.py",
]


def load_example(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(
        f"example_{path.stem}", path
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLE_FILES)
def test_example_imports(name):
    module = load_example(name)
    assert hasattr(module, "main")


def test_quickstart_builds_the_paper_application():
    module = load_example("quickstart.py")
    descriptor = module.build_application()
    assert list(descriptor.graph.pes) == ["pe1", "pe2"]
    space = descriptor.configuration_space
    assert space.by_label("Low").rate_of("src") == 4.0


def test_smart_city_application_is_well_formed():
    module = load_example("smart_city_traffic.py")
    descriptor = module.build_traffic_application()
    assert "signal_ctl" in descriptor.graph.pes
    assert descriptor.configuration_space.by_label("High").rate_of(
        "vehicles"
    ) == 14.0


def test_profile_and_deploy_customer_application():
    module = load_example("profile_and_deploy.py")
    graph, profiles = module.customer_application()
    assert set(graph.pes) == {"parse", "enrich", "window", "detect"}
    assert all(p.cpu_cost > 0 for p in profiles.values())


def test_provider_contracting_tiers_are_ordered():
    module = load_example("provider_contracting.py")
    targets = [sla.ic_target for sla in module.TIERS.values()]
    assert targets == sorted(targets)


def test_quickstart_main_runs_end_to_end(capsys):
    module = load_example("quickstart.py")
    module.main()
    out = capsys.readouterr().out
    assert "FT-Search" in out
    assert "LAAR configuration switches" in out


def test_ftsearch_anatomy_main_runs(capsys):
    module = load_example("ftsearch_anatomy.py")
    module.main()
    out = capsys.readouterr().out
    assert "pruning effectiveness" in out
    assert "anytime behaviour" in out
