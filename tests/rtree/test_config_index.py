"""Tests for the HAController configuration lookup (dominance + nearest)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationSpace
from repro.errors import RTreeError
from repro.rtree import ConfigurationIndex


@pytest.fixture
def two_level_index():
    space = ConfigurationSpace.two_level("src", 4.0, 8.0, 0.8)
    return ConfigurationIndex(space)


class TestTwoLevelLookup:
    def test_below_low_selects_low(self, two_level_index):
        assert two_level_index.lookup({"src": 2.0}).label == "Low"

    def test_exactly_low_selects_low(self, two_level_index):
        assert two_level_index.lookup({"src": 4.0}).label == "Low"

    def test_between_selects_high(self, two_level_index):
        # 5 t/s exceeds Low: choosing Low would underestimate the load.
        assert two_level_index.lookup({"src": 5.0}).label == "High"

    def test_above_high_falls_back_to_high(self, two_level_index):
        assert two_level_index.lookup({"src": 11.0}).label == "High"

    def test_missing_source_rejected(self, two_level_index):
        with pytest.raises(RTreeError, match="no measured rate"):
            two_level_index.lookup({})

    def test_negative_rate_rejected(self, two_level_index):
        with pytest.raises(RTreeError, match=">= 0"):
            two_level_index.lookup({"src": -1.0})


class TestMultiSourceLookup:
    def build_index(self):
        space = ConfigurationSpace.from_source_rates(
            {
                "a": [(2.0, 0.5), (6.0, 0.5)],
                "b": [(3.0, 0.5), (9.0, 0.5)],
            }
        )
        return ConfigurationIndex(space), space

    def test_dominance_is_componentwise(self):
        index, _ = self.build_index()
        # a=1 fits the a=2 level, but b=5 needs the b=9 level.
        config = index.lookup({"a": 1.0, "b": 5.0})
        assert config.rates == {"a": 2.0, "b": 9.0}

    def test_nearest_among_dominating(self):
        index, _ = self.build_index()
        # (5.5, 2.0) is dominated by (6,3) at distance ~1.1 and by (6,9)
        # much farther: the index picks the closest dominating corner.
        config = index.lookup({"a": 5.5, "b": 2.0})
        assert config.rates == {"a": 6.0, "b": 3.0}

    def test_fallback_is_most_hungry(self):
        index, space = self.build_index()
        config = index.lookup({"a": 100.0, "b": 100.0})
        assert config.rates == {"a": 6.0, "b": 9.0}

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        a=st.floats(min_value=0.0, max_value=7.0),
        b=st.floats(min_value=0.0, max_value=10.0),
    )
    def test_property_never_underestimates(self, seed, a, b):
        """Whenever some configuration dominates the measurement, the
        lookup result dominates it too (the paper's guarantee)."""
        index, space = self.build_index()
        rates = {"a": a, "b": b}
        dominating = [c for c in space if c.dominates(rates)]
        config = index.lookup(rates)
        if dominating:
            assert config.dominates(rates)
            # And it is the *nearest* dominating configuration.
            best = min(dominating, key=lambda c: c.distance_to(rates))
            assert config.distance_to(rates) == pytest.approx(
                best.distance_to(rates)
            )
