"""Tests for the HAController configuration lookup (dominance + nearest)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationSpace
from repro.errors import RTreeError
from repro.rtree import ConfigurationIndex


@pytest.fixture
def two_level_index():
    space = ConfigurationSpace.two_level("src", 4.0, 8.0, 0.8)
    return ConfigurationIndex(space)


class TestTwoLevelLookup:
    def test_below_low_selects_low(self, two_level_index):
        assert two_level_index.lookup({"src": 2.0}).label == "Low"

    def test_exactly_low_selects_low(self, two_level_index):
        assert two_level_index.lookup({"src": 4.0}).label == "Low"

    def test_between_selects_high(self, two_level_index):
        # 5 t/s exceeds Low: choosing Low would underestimate the load.
        assert two_level_index.lookup({"src": 5.0}).label == "High"

    def test_above_high_falls_back_to_high(self, two_level_index):
        assert two_level_index.lookup({"src": 11.0}).label == "High"

    def test_missing_source_rejected(self, two_level_index):
        with pytest.raises(RTreeError, match="no measured rate"):
            two_level_index.lookup({})

    def test_negative_rate_rejected(self, two_level_index):
        with pytest.raises(RTreeError, match=">= 0"):
            two_level_index.lookup({"src": -1.0})


class TestMultiSourceLookup:
    def build_index(self):
        space = ConfigurationSpace.from_source_rates(
            {
                "a": [(2.0, 0.5), (6.0, 0.5)],
                "b": [(3.0, 0.5), (9.0, 0.5)],
            }
        )
        return ConfigurationIndex(space), space

    def test_dominance_is_componentwise(self):
        index, _ = self.build_index()
        # a=1 fits the a=2 level, but b=5 needs the b=9 level.
        config = index.lookup({"a": 1.0, "b": 5.0})
        assert config.rates == {"a": 2.0, "b": 9.0}

    def test_nearest_among_dominating(self):
        index, _ = self.build_index()
        # (5.5, 2.0) is dominated by (6,3) at distance ~1.1 and by (6,9)
        # much farther: the index picks the closest dominating corner.
        config = index.lookup({"a": 5.5, "b": 2.0})
        assert config.rates == {"a": 6.0, "b": 3.0}

    def test_fallback_is_most_hungry(self):
        index, space = self.build_index()
        config = index.lookup({"a": 100.0, "b": 100.0})
        assert config.rates == {"a": 6.0, "b": 9.0}

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        a=st.floats(min_value=0.0, max_value=7.0),
        b=st.floats(min_value=0.0, max_value=10.0),
    )
    def test_property_never_underestimates(self, seed, a, b):
        """Whenever some configuration dominates the measurement, the
        lookup result dominates it too (the paper's guarantee)."""
        index, space = self.build_index()
        rates = {"a": a, "b": b}
        dominating = [c for c in space if c.dominates(rates)]
        config = index.lookup(rates)
        if dominating:
            assert config.dominates(rates)
            # And it is the *nearest* dominating configuration.
            best = min(dominating, key=lambda c: c.distance_to(rates))
            assert config.distance_to(rates) == pytest.approx(
                best.distance_to(rates)
            )


class TestFallbackTelemetry:
    """The out-of-contract fallback is the re-planner's trigger signal:
    it must be observable, not silent."""

    def build(self):
        from repro.obs import Telemetry

        space = ConfigurationSpace.two_level("src", 4.0, 8.0, 0.8)
        telemetry = Telemetry(clock=lambda: 42.0)
        index = ConfigurationIndex(space, telemetry=telemetry)
        return index, telemetry

    def test_fallback_emits_event_and_counter(self):
        index, telemetry = self.build()
        config = index.lookup({"src": 11.0})
        assert config.label == "High"
        events = telemetry.events.of_type("config.fallback")
        assert len(events) == 1
        event = events[0]
        assert event.time == 42.0
        assert event.fields["config"] == config.index
        assert event.fields["rates"] == {"src": 11.0}
        assert telemetry.metrics.counter("rtree.fallbacks").total() == 1.0
        assert index.fallbacks == 1

    def test_in_contract_lookup_is_silent(self):
        index, telemetry = self.build()
        index.lookup({"src": 3.0})
        index.lookup({"src": 7.5})
        assert telemetry.events.count("config.fallback") == 0
        assert index.fallbacks == 0

    def test_fallback_counts_without_telemetry(self):
        space = ConfigurationSpace.two_level("src", 4.0, 8.0, 0.8)
        index = ConfigurationIndex(space)
        index.lookup({"src": 100.0})
        index.lookup({"src": 100.0})
        assert index.fallbacks == 2

    def test_fallback_event_validates_against_schema(self):
        from repro.obs.validate import validate_lines

        index, telemetry = self.build()
        index.lookup({"src": 11.0})
        lines = telemetry.events.to_jsonl().splitlines()
        assert validate_lines(lines, origin="<test>") == []
