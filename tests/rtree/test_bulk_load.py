"""Tests for STR bulk loading."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RTreeError
from repro.rtree import Rect, RTree


def random_points(rng, n):
    return [
        ((rng.uniform(0, 100), rng.uniform(0, 100)), i) for i in range(n)
    ]


class TestBulkLoad:
    def test_empty(self):
        tree: RTree[int] = RTree.bulk_load([])
        assert len(tree) == 0
        assert tree.nearest((0.0, 0.0)) is None

    def test_single_entry(self):
        tree = RTree.bulk_load([(Rect.from_point((1.0, 2.0)), "a")])
        assert len(tree) == 1
        assert tree.search_point((1.0, 2.0))[0].value == "a"

    def test_mixed_dimensions_rejected(self):
        with pytest.raises(RTreeError, match="mixed dimensions"):
            RTree.bulk_load(
                [
                    (Rect.from_point((1.0,)), 0),
                    (Rect.from_point((1.0, 2.0)), 1),
                ]
            )

    def test_all_entries_findable(self):
        rng = random.Random(4)
        points = random_points(rng, 200)
        tree = RTree.bulk_load(
            [(Rect.from_point(p), v) for p, v in points], max_entries=6
        )
        assert len(tree) == 200
        tree.check_invariants()
        for point, value in points:
            assert value in [e.value for e in tree.search_point(point)]

    def test_packed_tree_is_shallow(self):
        rng = random.Random(5)
        points = random_points(rng, 300)
        entries = [(Rect.from_point(p), v) for p, v in points]
        packed = RTree.bulk_load(entries, max_entries=8)
        incremental: RTree[int] = RTree(max_entries=8)
        for rect, value in entries:
            incremental.insert(rect, value)
        assert packed.height <= incremental.height
        # 300 entries at fanout 8: height 3 suffices for a packed tree.
        assert packed.height <= 3

    def test_supports_updates_after_loading(self):
        rng = random.Random(6)
        points = random_points(rng, 60)
        tree = RTree.bulk_load(
            [(Rect.from_point(p), v) for p, v in points], max_entries=4
        )
        tree.insert_point((200.0, 200.0), 999)
        assert tree.delete_point(points[0][0], points[0][1])
        tree.check_invariants()
        assert len(tree) == 60
        assert tree.search_point((200.0, 200.0))[0].value == 999

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=1, max_value=150),
        capacity=st.sampled_from([3, 4, 8]),
    )
    def test_property_invariants_and_nearest(self, seed, n, capacity):
        rng = random.Random(seed)
        points = random_points(rng, n)
        tree = RTree.bulk_load(
            [(Rect.from_point(p), v) for p, v in points],
            max_entries=capacity,
        )
        tree.check_invariants()
        query = (rng.uniform(0, 100), rng.uniform(0, 100))
        found = tree.nearest(query)
        best = min(math.dist(p, query) for p, _ in points)
        assert math.dist(found.rect.low, query) == pytest.approx(best)
