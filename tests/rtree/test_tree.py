"""Unit and property tests for the Guttman R-tree."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RTreeError
from repro.rtree import Rect, RTree


def brute_force_nearest(points, query):
    return min(
        points,
        key=lambda p: math.dist(p[0], query),
    )


class TestConstruction:
    def test_bad_max_entries(self):
        with pytest.raises(RTreeError):
            RTree(max_entries=1)

    def test_bad_min_entries(self):
        with pytest.raises(RTreeError):
            RTree(max_entries=4, min_entries=3)

    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.nearest((0.0, 0.0)) is None
        assert tree.search_point((0.0, 0.0)) == []


class TestInsertSearch:
    def test_insert_and_point_search(self):
        tree: RTree[str] = RTree(max_entries=4)
        tree.insert_point((1.0, 1.0), "a")
        tree.insert_point((2.0, 2.0), "b")
        hits = tree.search_point((1.0, 1.0))
        assert [e.value for e in hits] == ["a"]

    def test_dimension_mismatch_rejected(self):
        tree: RTree[str] = RTree()
        tree.insert_point((1.0, 1.0), "a")
        with pytest.raises(RTreeError):
            tree.insert_point((1.0,), "b")

    def test_split_keeps_everything_findable(self):
        tree: RTree[int] = RTree(max_entries=4)
        points = [(float(i), float(i % 7)) for i in range(50)]
        for index, point in enumerate(points):
            tree.insert_point(point, index)
        assert len(tree) == 50
        assert tree.height > 1
        for index, point in enumerate(points):
            values = [e.value for e in tree.search_point(point)]
            assert index in values
        tree.check_invariants()

    def test_range_search(self):
        tree: RTree[int] = RTree(max_entries=4)
        for i in range(10):
            tree.insert_point((float(i), 0.0), i)
        hits = tree.search(Rect((2.5, -1.0), (6.5, 1.0)))
        assert sorted(e.value for e in hits) == [3, 4, 5, 6]


class TestDelete:
    def test_delete_existing(self):
        tree: RTree[str] = RTree(max_entries=4)
        tree.insert_point((1.0, 1.0), "a")
        tree.insert_point((2.0, 2.0), "b")
        assert tree.delete_point((1.0, 1.0), "a")
        assert len(tree) == 1
        assert tree.search_point((1.0, 1.0)) == []

    def test_delete_missing_returns_false(self):
        tree: RTree[str] = RTree()
        tree.insert_point((1.0, 1.0), "a")
        assert not tree.delete_point((9.0, 9.0), "a")
        assert not tree.delete_point((1.0, 1.0), "other-value")
        assert len(tree) == 1

    def test_delete_condenses_tree(self):
        tree: RTree[int] = RTree(max_entries=4)
        for i in range(40):
            tree.insert_point((float(i), float(i)), i)
        for i in range(35):
            assert tree.delete_point((float(i), float(i)), i)
        assert len(tree) == 5
        tree.check_invariants()
        for i in range(35, 40):
            assert tree.search_point((float(i), float(i)))


class TestNearest:
    def test_nearest_simple(self):
        tree: RTree[str] = RTree(max_entries=4)
        tree.insert_point((0.0, 0.0), "origin")
        tree.insert_point((10.0, 10.0), "far")
        assert tree.nearest((1.0, 1.0)).value == "origin"

    def test_nearest_with_predicate(self):
        tree: RTree[str] = RTree(max_entries=4)
        tree.insert_point((1.0, 1.0), "near-but-filtered")
        tree.insert_point((5.0, 5.0), "admissible")
        found = tree.nearest(
            (0.0, 0.0), predicate=lambda e: e.value.startswith("adm")
        )
        assert found.value == "admissible"

    def test_nearest_none_matches(self):
        tree: RTree[str] = RTree()
        tree.insert_point((1.0, 1.0), "a")
        assert tree.nearest((0.0, 0.0), predicate=lambda e: False) is None


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_points=st.integers(min_value=1, max_value=120),
        max_entries=st.sampled_from([3, 4, 8]),
    )
    def test_nearest_matches_brute_force(self, seed, n_points, max_entries):
        rng = random.Random(seed)
        tree: RTree[int] = RTree(max_entries=max_entries)
        points = []
        for index in range(n_points):
            point = (rng.uniform(0, 100), rng.uniform(0, 100))
            points.append((point, index))
            tree.insert_point(point, index)
        query = (rng.uniform(0, 100), rng.uniform(0, 100))
        expected_point, _ = brute_force_nearest(points, query)
        found = tree.nearest(query)
        assert math.dist(found.rect.low, query) == pytest.approx(
            math.dist(expected_point, query)
        )

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_ops=st.integers(min_value=5, max_value=80),
    )
    def test_invariants_under_mixed_workload(self, seed, n_ops):
        rng = random.Random(seed)
        tree: RTree[int] = RTree(max_entries=4)
        live: list[tuple[tuple[float, float], int]] = []
        for op in range(n_ops):
            if live and rng.random() < 0.4:
                point, value = live.pop(rng.randrange(len(live)))
                assert tree.delete_point(point, value)
            else:
                point = (rng.uniform(0, 50), rng.uniform(0, 50))
                tree.insert_point(point, op)
                live.append((point, op))
            tree.check_invariants()
        assert len(tree) == len(live)
        for point, value in live:
            assert value in [e.value for e in tree.search_point(point)]
