"""Unit tests for the rectangle algebra."""

from __future__ import annotations

import pytest

from repro.errors import RTreeError
from repro.rtree import Rect


class TestConstruction:
    def test_point_rect(self):
        rect = Rect.from_point((1.0, 2.0))
        assert rect.is_point
        assert rect.area() == 0.0

    def test_inverted_bounds_rejected(self):
        with pytest.raises(RTreeError):
            Rect((1.0,), (0.0,))

    def test_nan_rejected(self):
        with pytest.raises(RTreeError):
            Rect((float("nan"),), (1.0,))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(RTreeError):
            Rect((0.0,), (1.0, 2.0))

    def test_zero_dimensions_rejected(self):
        with pytest.raises(RTreeError):
            Rect((), ())


class TestAlgebra:
    def test_area(self):
        assert Rect((0, 0), (2, 3)).area() == 6.0

    def test_margin(self):
        assert Rect((0, 0), (2, 3)).margin() == 5.0

    def test_union(self):
        a = Rect((0, 0), (1, 1))
        b = Rect((2, 2), (3, 3))
        assert a.union(b) == Rect((0, 0), (3, 3))

    def test_enlargement(self):
        a = Rect((0, 0), (1, 1))
        b = Rect((2, 0), (3, 1))
        assert a.enlargement(b) == pytest.approx(3.0 - 1.0)

    def test_intersects(self):
        a = Rect((0, 0), (2, 2))
        assert a.intersects(Rect((1, 1), (3, 3)))
        assert a.intersects(Rect((2, 2), (3, 3)))  # touching counts
        assert not a.intersects(Rect((3, 3), (4, 4)))

    def test_contains(self):
        outer = Rect((0, 0), (4, 4))
        assert outer.contains(Rect((1, 1), (2, 2)))
        assert not outer.contains(Rect((1, 1), (5, 2)))

    def test_contains_point(self):
        rect = Rect((0, 0), (2, 2))
        assert rect.contains_point((1, 1))
        assert rect.contains_point((2, 0))
        assert not rect.contains_point((3, 0))

    def test_bounding(self):
        rects = [Rect((0, 0), (1, 1)), Rect((2, -1), (3, 0.5))]
        assert Rect.bounding(rects) == Rect((0, -1), (3, 1))

    def test_bounding_empty_rejected(self):
        with pytest.raises(RTreeError):
            Rect.bounding([])


class TestDistances:
    def test_min_distance_inside_is_zero(self):
        rect = Rect((0, 0), (2, 2))
        assert rect.min_distance_to_point((1, 1)) == 0.0

    def test_min_distance_axis(self):
        rect = Rect((0, 0), (2, 2))
        assert rect.min_distance_to_point((4, 1)) == pytest.approx(2.0)

    def test_min_distance_corner(self):
        rect = Rect((0, 0), (2, 2))
        assert rect.min_distance_to_point((5, 6)) == pytest.approx(5.0)

    def test_dominates_point(self):
        rect = Rect.from_point((4.0, 8.0))
        assert rect.dominates_point((4.0, 7.0))
        assert not rect.dominates_point((4.5, 7.0))
