"""Integration tests for the stream platform simulator."""

from __future__ import annotations

import pytest

from repro.core import (
    ActivationStrategy,
    Host,
    ReplicaId,
    ReplicatedDeployment,
)
from repro.dsps import (
    InputTrace,
    PlatformConfig,
    StreamPlatform,
    TraceSegment,
    two_level_trace,
)
from repro.errors import SimulationError
from repro.placement import balanced_placement

GIGA = 1.0e9


def tight_deployment(pipeline_descriptor):
    """Fig. 2a: per-host capacity 1e9 cycles/s; High overloads at 1.6e9."""
    hosts = [
        Host("h0", cores=2, cycles_per_core=0.5 * GIGA),
        Host("h1", cores=2, cycles_per_core=0.5 * GIGA),
    ]
    return balanced_placement(pipeline_descriptor, hosts, 2)


def build_platform(descriptor, deployment=None, trace=None, **kwargs):
    deployment = deployment or tight_deployment(descriptor)
    trace = trace or two_level_trace(4.0, 8.0, duration=30.0)
    return StreamPlatform(deployment, {"src": trace}, **kwargs)


class TestConstruction:
    def test_missing_trace_rejected(self, pipeline_descriptor):
        deployment = tight_deployment(pipeline_descriptor)
        with pytest.raises(SimulationError, match="no input trace"):
            StreamPlatform(deployment, {})

    def test_too_many_replicas_per_host_rejected(self, pipeline_descriptor):
        hosts = [Host("h0", cores=1, cycles_per_core=GIGA),
                 Host("h1", cores=1, cycles_per_core=GIGA)]
        assignment = {
            ReplicaId("pe1", 0): "h0",
            ReplicaId("pe1", 1): "h1",
            ReplicaId("pe2", 0): "h0",
            ReplicaId("pe2", 1): "h1",
        }
        deployment = ReplicatedDeployment(
            pipeline_descriptor, hosts, assignment, 2
        )
        with pytest.raises(SimulationError, match="pins one"):
            StreamPlatform(
                deployment,
                {"src": two_level_trace(4.0, 8.0, duration=10.0)},
            )

    def test_unknown_replica_query_rejected(self, pipeline_descriptor):
        platform = build_platform(pipeline_descriptor)
        with pytest.raises(SimulationError):
            platform.replica(ReplicaId("ghost", 0))
        with pytest.raises(SimulationError):
            platform.group("ghost")
        with pytest.raises(SimulationError):
            platform.host_scheduler("ghost")

    def test_invalid_config_rejected(self):
        with pytest.raises(SimulationError):
            PlatformConfig(queue_seconds=0.0)
        with pytest.raises(SimulationError):
            PlatformConfig(failover_delay=-1.0)


class TestSteadyState:
    def test_low_rate_flows_end_to_end(self, pipeline_descriptor):
        platform = build_platform(
            pipeline_descriptor,
            trace=InputTrace([TraceSegment(4.0, 20.0, "Low")]),
        )
        metrics = platform.run()
        assert metrics.total_input == 80
        # Selectivity 1 throughout: everything reaches the sink.
        assert metrics.total_output == 80
        assert metrics.total_dropped == 0
        # Both PEs processed every tuple (logical count).
        assert metrics.tuples_processed == 160

    def test_cpu_time_matches_model(self, pipeline_descriptor):
        platform = build_platform(
            pipeline_descriptor,
            trace=InputTrace([TraceSegment(4.0, 20.0, "Low")]),
        )
        metrics = platform.run()
        # 80 tuples x 0.1e9 cycles / 0.5e9 c/s-core = 0.2 s per tuple per
        # replica; 2 PEs x 2 replicas: 80 * 0.2 * 4 = 64 CPU seconds.
        assert metrics.total_cpu_time == pytest.approx(64.0, rel=1e-3)

    def test_overload_drops_and_limits_output(self, pipeline_descriptor):
        platform = build_platform(
            pipeline_descriptor,
            trace=InputTrace([TraceSegment(8.0, 30.0, "High")]),
        )
        metrics = platform.run()
        # Fully replicated High demands 1.6e9 per 1e9-capacity host:
        # the sink sees at most 5/8 of the input.
        assert metrics.total_output < metrics.total_input * 0.7
        assert metrics.logical_dropped > 0

    def test_deactivated_replicas_restore_throughput(
        self, pipeline_descriptor
    ):
        deployment = tight_deployment(pipeline_descriptor)
        # Keep one replica of each PE, spread over the two hosts so no
        # single host carries both survivors (an NR-like state).
        chosen = {
            "pe1": next(
                r.replica
                for r in deployment.replicas_of("pe1")
                if deployment.host_of(r) == "h0"
            ),
            "pe2": next(
                r.replica
                for r in deployment.replicas_of("pe2")
                if deployment.host_of(r) == "h1"
            ),
        }
        strategy = ActivationStrategy.single_replica(
            deployment, chosen, name="manual"
        )
        platform = StreamPlatform(
            deployment,
            {"src": InputTrace([TraceSegment(8.0, 30.0, "High")])},
            initial_active=strategy.active_map(1),
        )
        metrics = platform.run()
        assert metrics.total_output == metrics.total_input
        assert metrics.total_dropped == 0


class TestFailureEntryPoints:
    def test_crash_host_kills_its_replicas(self, pipeline_descriptor):
        platform = build_platform(pipeline_descriptor)
        deployment = platform.deployment
        host = deployment.host_names[0]
        platform.crash_host(host)
        for replica_id in deployment.replicas_on(host):
            assert not platform.replica(replica_id).alive
        assert any(
            kind == "crash-host" for _, kind, _ in
            platform.metrics.failure_events
        )

    def test_recover_host_restores_replicas(self, pipeline_descriptor):
        platform = build_platform(pipeline_descriptor)
        host = platform.deployment.host_names[0]
        platform.crash_host(host)
        platform.recover_host(host)
        for replica_id in platform.deployment.replicas_on(host):
            assert platform.replica(replica_id).alive

    def test_all_primaries_dead_means_no_output(self, pipeline_descriptor):
        platform = build_platform(
            pipeline_descriptor,
            trace=InputTrace([TraceSegment(4.0, 10.0, "Low")]),
        )
        for pe in ("pe1", "pe2"):
            for replica in platform.group(pe).members:
                replica.crash()
        metrics = platform.run()
        assert metrics.total_output == 0
        assert metrics.tuples_processed == 0

    def test_crash_and_recovery_mid_run(self, pipeline_descriptor):
        platform = build_platform(
            pipeline_descriptor,
            trace=InputTrace([TraceSegment(4.0, 40.0, "Low")]),
        )
        # Crash replica 0 of pe1 at t=10, recover at t=20; the secondary
        # takes over after the 1 s failover delay, so most tuples flow.
        target = ReplicaId("pe1", 0)
        platform.env.schedule_at(
            10.0, lambda: platform.crash_replica(target)
        )
        platform.env.schedule_at(
            20.0, lambda: platform.recover_replica(target)
        )
        metrics = platform.run()
        lost = metrics.total_input - metrics.total_output
        # Roughly the 1 s failover window at 4 t/s, plus queue losses.
        assert 0 < lost <= 12
