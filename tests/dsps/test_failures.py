"""Tests for the failure injectors (pessimistic and host-crash modes)."""

from __future__ import annotations

import random

import pytest

from repro.core import ActivationStrategy, Host, ReplicaId
from repro.dsps import (
    HostCrashPlan,
    InputTrace,
    StreamPlatform,
    TraceSegment,
    inject_host_crash,
    inject_pessimistic_failures,
    pessimistic_victims,
    plan_host_crash,
    two_level_trace,
)
from repro.errors import SimulationError
from repro.placement import balanced_placement

GIGA = 1.0e9


def deployment_for(pipeline_descriptor):
    hosts = [
        Host("h0", cores=2, cycles_per_core=0.5 * GIGA),
        Host("h1", cores=2, cycles_per_core=0.5 * GIGA),
    ]
    return balanced_placement(pipeline_descriptor, hosts, 2)


class TestPessimisticVictims:
    def test_kills_the_active_replica_of_single_active_pes(
        self, pipeline_descriptor
    ):
        deployment = deployment_for(pipeline_descriptor)
        # pe1 keeps only replica 1 active in High: the survivor must be
        # the inactive one (replica 0), so replica 1 is the victim.
        strategy = ActivationStrategy.all_active(deployment).replace(
            {(ReplicaId("pe1", 0), 1): False}
        )
        victims = pessimistic_victims(strategy)
        assert victims["pe1"] == 1
        # pe2 is fully replicated everywhere: victim defaults to 0.
        assert victims["pe2"] == 0

    def test_nr_strategy_loses_everything(self, pipeline_descriptor):
        deployment = deployment_for(pipeline_descriptor)
        strategy = ActivationStrategy.single_replica(
            deployment, {"pe1": 0, "pe2": 0}
        )
        victims = pessimistic_victims(strategy)
        # The only active replica is the victim for every PE.
        assert victims == {"pe1": 0, "pe2": 0}

    def test_injection_schedules_crashes(self, pipeline_descriptor):
        deployment = deployment_for(pipeline_descriptor)
        strategy = ActivationStrategy.single_replica(
            deployment, {"pe1": 0, "pe2": 0}
        )
        platform = StreamPlatform(
            deployment,
            {"src": InputTrace([TraceSegment(4.0, 10.0, "Low")])},
            initial_active=strategy.active_map(0),
        )
        victims = inject_pessimistic_failures(platform, strategy)
        metrics = platform.run()
        # Every PE's only active replica is dead: no output at all.
        assert metrics.total_output == 0
        assert metrics.tuples_processed == 0
        for pe, victim in victims.items():
            assert not platform.replica(ReplicaId(pe, victim)).alive

    def test_sr_strategy_survives_worst_case(self, pipeline_descriptor):
        deployment = deployment_for(pipeline_descriptor)
        strategy = ActivationStrategy.all_active(deployment)
        platform = StreamPlatform(
            deployment,
            {"src": InputTrace([TraceSegment(4.0, 20.0, "Low")])},
            initial_active=strategy.active_map(0),
        )
        inject_pessimistic_failures(platform, strategy)
        metrics = platform.run()
        # One replica of each PE remains: Low fits on the survivors,
        # so (after the 1 s failover of pe1's primary) tuples flow.
        assert metrics.total_output > 0.8 * metrics.total_input


class TestHostCrash:
    def test_plan_validates(self):
        with pytest.raises(SimulationError):
            HostCrashPlan("h0", crash_time=-1.0)
        with pytest.raises(SimulationError):
            HostCrashPlan("h0", crash_time=1.0, downtime=0.0)

    def test_plan_lands_in_high_window(self, pipeline_descriptor):
        deployment = deployment_for(pipeline_descriptor)
        trace = two_level_trace(4.0, 8.0, duration=120.0)
        platform = StreamPlatform(deployment, {"src": trace})
        rng = random.Random(3)
        windows = trace.segment_windows("High")
        for _ in range(10):
            plan = plan_host_crash(platform, windows, rng)
            start, end = windows[0]
            assert start <= plan.crash_time < end
            assert plan.host in deployment.host_names

    def test_plan_requires_windows(self, pipeline_descriptor):
        deployment = deployment_for(pipeline_descriptor)
        platform = StreamPlatform(
            deployment,
            {"src": InputTrace([TraceSegment(4.0, 10.0, "Low")])},
        )
        with pytest.raises(SimulationError, match="no High windows"):
            plan_host_crash(platform, [], random.Random(0))

    def test_crash_and_recovery_execute(self, pipeline_descriptor):
        deployment = deployment_for(pipeline_descriptor)
        trace = InputTrace([TraceSegment(4.0, 60.0, "Low")])
        platform = StreamPlatform(deployment, {"src": trace})
        plan = HostCrashPlan("h0", crash_time=20.0, downtime=16.0)
        inject_host_crash(platform, plan)
        metrics = platform.run()
        kinds = [kind for _, kind, _ in metrics.failure_events]
        assert kinds.count("crash-host") == 1
        assert kinds.count("recover-host") == 1
        # Replication hides the crash almost completely.
        assert metrics.total_output > 0.85 * metrics.total_input
