"""Cross-cutting properties of the platform simulator.

Conservation laws, determinism, and consistency between the analytic
model (repro.core) and the simulated runtime (repro.dsps) on random
generated applications.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RateTable
from repro.dsps import (
    InputTrace,
    PlatformConfig,
    StreamPlatform,
    TraceSegment,
)
from repro.workloads import ClusterParams, GeneratorParams, generate_application


def small_app(seed):
    return generate_application(
        seed,
        params=GeneratorParams(n_pes=6, tuple_budget=250.0),
        cluster=ClusterParams(n_hosts=2, cores_per_host=6),
    )


def run_app(app, seed=0, duration=20.0, rate=None, jitter=0.0):
    rate = rate if rate is not None else app.low_rate
    platform = StreamPlatform(
        app.deployment,
        {"src": InputTrace([TraceSegment(rate, duration, "Low")])},
        config=PlatformConfig(arrival_jitter=jitter, seed=seed),
    )
    return platform.run(drain=5.0)


class TestConservation:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=300))
    def test_per_port_counters_balance(self, seed):
        """received == processed + dropped + still-queued; after the
        drain at an un-overloaded rate nothing stays queued."""
        app = small_app(seed)
        metrics = run_app(app, seed=seed)
        for replica_metrics in metrics.replicas.values():
            assert replica_metrics.received == (
                replica_metrics.processed + replica_metrics.dropped
            )

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=300))
    def test_port_counters_sum_to_replica_counters(self, seed):
        app = small_app(seed)
        metrics = run_app(app, seed=seed)
        for replica_metrics in metrics.replicas.values():
            assert replica_metrics.received == sum(
                c.received for c in replica_metrics.ports.values()
            )
            assert replica_metrics.processed == sum(
                c.processed for c in replica_metrics.ports.values()
            )
            assert replica_metrics.busy_time == pytest.approx(
                sum(c.busy_time for c in replica_metrics.ports.values())
            )

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=300))
    def test_primary_counters_bounded_by_totals(self, seed):
        app = small_app(seed)
        metrics = run_app(app, seed=seed)
        for replica_metrics in metrics.replicas.values():
            assert (
                replica_metrics.processed_as_primary
                <= replica_metrics.processed
            )
            assert (
                replica_metrics.dropped_as_primary
                <= replica_metrics.dropped
            )


class TestDeterminism:
    def test_same_seed_same_metrics(self):
        app = small_app(1)
        first = run_app(app, seed=7, jitter=0.3)
        second = run_app(app, seed=7, jitter=0.3)
        assert first.total_input == second.total_input
        assert first.total_output == second.total_output
        assert first.tuples_processed == second.tuples_processed
        assert first.total_cpu_time == pytest.approx(second.total_cpu_time)

    def test_different_seed_different_arrivals(self):
        app = small_app(1)
        first = run_app(app, seed=7, jitter=0.3)
        second = run_app(app, seed=8, jitter=0.3)
        # Jittered arrivals differ; totals may coincide, series do not.
        a = first.source_series["src"]
        b = second.source_series["src"]
        assert a.as_list(20) != b.as_list(20)


class TestModelAgreement:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=300))
    def test_cpu_time_matches_cost_model(self, seed):
        """In an un-overloaded steady state, measured CPU time converges
        to the Eq. 13 integrand for the all-active strategy at the Low
        configuration."""
        app = small_app(seed)
        duration = 30.0
        metrics = run_app(app, duration=duration)
        table = RateTable(app.descriptor)
        # Eq. 13 restricted to the Low configuration (probability 1 over
        # the simulated window), in cycles; convert to CPU seconds.
        expected_cycles_per_s = sum(
            table.replica_load(replica.pe, 0)
            for replica in app.deployment.replicas
        )
        cycles_per_core = app.deployment.hosts[0].cycles_per_core
        expected_cpu_seconds = (
            expected_cycles_per_s * duration / cycles_per_core
        )
        assert metrics.total_cpu_time == pytest.approx(
            expected_cpu_seconds, rel=0.1
        )

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=300))
    def test_throughput_matches_rate_model(self, seed):
        """Logical tuples processed per second converge to the BIC
        integrand at the Low configuration."""
        app = small_app(seed)
        duration = 30.0
        metrics = run_app(app, duration=duration)
        table = RateTable(app.descriptor)
        expected = table.total_pe_input_rate(0) * duration
        assert metrics.tuples_processed == pytest.approx(expected, rel=0.1)
