"""Tests for the PE replica runtime and replica groups."""

from __future__ import annotations

import pytest

from repro.core import ReplicaId
from repro.dsps.hosts import HostScheduler
from repro.dsps.metrics import ReplicaMetrics
from repro.dsps.operators import OperatorReplica, PortSpec, ReplicaGroup
from repro.errors import SimulationError
from repro.sim import Environment


def build_replica(
    env,
    emitted,
    index=0,
    capacity=4,
    selectivity=1.0,
    cycles=10.0,
    host=None,
    active=True,
    resync_delay=0.0,
):
    host = host or HostScheduler(env, "h", capacity=10.0, cycles_per_core=10.0)
    metrics = ReplicaMetrics()
    replica = OperatorReplica(
        env=env,
        replica_id=ReplicaId("pe", index),
        host=host,
        ports=[
            PortSpec(
                name="up", cycles=cycles, selectivity=selectivity,
                capacity=capacity,
            )
        ],
        metrics=metrics,
        emit=lambda r, birth: emitted.append(env.now),
        initially_active=active,
        resync_delay=resync_delay,
    )
    return replica, metrics


def with_group(env, *replicas, failover_delay=1.0):
    group = ReplicaGroup(env, "pe", failover_delay=failover_delay)
    for replica in replicas:
        group.add(replica)
    group.initialise_primary()
    return group


class TestPortSpec:
    def test_rejects_negative_cycles(self):
        with pytest.raises(SimulationError):
            PortSpec("up", cycles=-1.0, selectivity=1.0, capacity=1)

    def test_rejects_zero_capacity(self):
        with pytest.raises(SimulationError):
            PortSpec("up", cycles=1.0, selectivity=1.0, capacity=0)


class TestProcessing:
    def test_tuple_processed_and_emitted(self):
        env = Environment()
        emitted = []
        replica, metrics = build_replica(env, emitted)
        with_group(env, replica)
        replica.on_tuple("up")
        env.run()
        assert metrics.processed == 1
        assert metrics.processed_as_primary == 1
        assert emitted == [1.0]  # 10 cycles at 10 c/s
        assert metrics.busy_time == pytest.approx(1.0)

    def test_queue_overflow_drops(self):
        env = Environment()
        emitted = []
        replica, metrics = build_replica(env, emitted, capacity=2)
        with_group(env, replica)
        # Port capacity counts the in-service tuple: 2 fit, 2 drop.
        for _ in range(4):
            replica.on_tuple("up")
        env.run()
        assert metrics.dropped == 2
        assert metrics.dropped_as_primary == 2
        assert metrics.processed == 2

    def test_selectivity_half_emits_every_other_tuple(self):
        env = Environment()
        emitted = []
        replica, _ = build_replica(env, emitted, selectivity=0.5, capacity=10)
        with_group(env, replica)
        for _ in range(4):
            replica.on_tuple("up")
        env.run()
        assert len(emitted) == 2

    def test_selectivity_above_one_emits_extra(self):
        env = Environment()
        emitted = []
        replica, _ = build_replica(env, emitted, selectivity=1.5, capacity=10)
        with_group(env, replica)
        for _ in range(4):
            replica.on_tuple("up")
        env.run()
        # Credits 1.5, 3.0, 4.5, 6.0 -> emissions 1, 2, 1, 2.
        assert len(emitted) == 6

    def test_secondary_processes_but_does_not_emit(self):
        env = Environment()
        emitted = []
        primary, _ = build_replica(env, emitted, index=0)
        secondary, secondary_metrics = build_replica(
            env, emitted, index=1,
            host=HostScheduler(env, "h2", 10.0, 10.0),
        )
        with_group(env, primary, secondary)
        primary.on_tuple("up")
        secondary.on_tuple("up")
        env.run()
        assert len(emitted) == 1  # only the primary forwarded
        assert secondary_metrics.processed == 1
        assert secondary_metrics.processed_as_primary == 0


class TestActivation:
    def test_inactive_replica_ignores_input(self):
        env = Environment()
        emitted = []
        replica, metrics = build_replica(env, emitted, active=False)
        with_group(env, replica)
        replica.on_tuple("up")
        env.run()
        assert metrics.received == 0
        assert metrics.processed == 0
        assert emitted == []

    def test_deactivate_aborts_and_clears_queue(self):
        env = Environment()
        emitted = []
        replica, metrics = build_replica(env, emitted, capacity=10)
        with_group(env, replica)
        for _ in range(3):
            replica.on_tuple("up")
        env.schedule(0.5, replica.deactivate)
        env.run()
        # Only the half-finished tuple's CPU was consumed; nothing done.
        assert metrics.processed == 0
        assert metrics.busy_time == pytest.approx(0.5)
        assert replica.queue_length == 0
        assert metrics.deactivations == 1

    def test_reactivation_resumes_processing(self):
        env = Environment()
        emitted = []
        replica, metrics = build_replica(env, emitted)
        with_group(env, replica)
        replica.deactivate()
        replica.activate()
        replica.on_tuple("up")
        env.run()
        assert metrics.processed == 1

    def test_resync_delay_blocks_input(self):
        env = Environment()
        emitted = []
        replica, metrics = build_replica(env, emitted, resync_delay=2.0)
        with_group(env, replica)
        replica.deactivate()
        replica.activate()
        replica.on_tuple("up")  # still resyncing: ignored
        env.schedule(3.0, lambda: replica.on_tuple("up"))
        env.run()
        assert metrics.processed == 1


class TestFailover:
    def test_primary_crash_elects_secondary_after_delay(self):
        env = Environment()
        emitted = []
        primary, _ = build_replica(env, emitted, index=0)
        secondary, _ = build_replica(
            env, emitted, index=1, host=HostScheduler(env, "h2", 10.0, 10.0)
        )
        group = with_group(env, primary, secondary, failover_delay=1.0)
        assert group.primary is primary
        primary.crash()
        assert group.primary is None  # failure not yet detected
        env.run()
        assert group.primary is secondary

    def test_deactivation_hands_over_immediately(self):
        env = Environment()
        emitted = []
        primary, _ = build_replica(env, emitted, index=0)
        secondary, _ = build_replica(
            env, emitted, index=1, host=HostScheduler(env, "h2", 10.0, 10.0)
        )
        group = with_group(env, primary, secondary)
        primary.deactivate()
        assert group.primary is secondary

    def test_no_processable_member_leaves_group_dead(self):
        env = Environment()
        emitted = []
        primary, _ = build_replica(env, emitted, index=0)
        secondary, _ = build_replica(
            env, emitted, index=1,
            host=HostScheduler(env, "h2", 10.0, 10.0), active=False,
        )
        group = with_group(env, primary, secondary)
        primary.crash()
        env.run()
        assert group.primary is None

    def test_recovered_replica_becomes_primary_if_group_dead(self):
        env = Environment()
        emitted = []
        primary, metrics = build_replica(env, emitted, index=0)
        group = with_group(env, primary)
        primary.crash()
        env.run()
        assert group.primary is None
        primary.recover()
        assert group.primary is primary
        assert metrics.recoveries == 1

    def test_crash_is_idempotent(self):
        env = Environment()
        emitted = []
        replica, metrics = build_replica(env, emitted)
        with_group(env, replica)
        replica.crash()
        replica.crash()
        assert metrics.crashes == 1

    def test_secondary_crash_keeps_primary(self):
        env = Environment()
        emitted = []
        primary, _ = build_replica(env, emitted, index=0)
        secondary, _ = build_replica(
            env, emitted, index=1, host=HostScheduler(env, "h2", 10.0, 10.0)
        )
        group = with_group(env, primary, secondary)
        secondary.crash()
        env.run()
        assert group.primary is primary
