"""Tests for the runtime samplers."""

from __future__ import annotations

import pytest

from repro.core import Host, ReplicaId
from repro.dsps import (
    ActivationSampler,
    CpuSampler,
    InputTrace,
    QueueSampler,
    StreamPlatform,
    TraceSegment,
)
from repro.errors import SimulationError
from repro.placement import balanced_placement

GIGA = 1.0e9


def build_platform(pipeline_descriptor, trace):
    hosts = [
        Host("h0", cores=2, cycles_per_core=0.5 * GIGA),
        Host("h1", cores=2, cycles_per_core=0.5 * GIGA),
    ]
    deployment = balanced_placement(pipeline_descriptor, hosts, 2)
    return StreamPlatform(deployment, {"src": trace})


class TestValidation:
    def test_bad_interval_rejected(self, pipeline_descriptor):
        platform = build_platform(
            pipeline_descriptor, InputTrace([TraceSegment(1.0, 5.0)])
        )
        with pytest.raises(SimulationError):
            CpuSampler(platform, interval=0.0)


class TestCpuSampler:
    def test_utilization_tracks_load(self, pipeline_descriptor):
        platform = build_platform(
            pipeline_descriptor, InputTrace([TraceSegment(4.0, 20.0, "Low")])
        )
        sampler = CpuSampler(platform, interval=1.0)
        platform.run(until=20.0)
        # Low with everything active: 1.6e9 of 2e9 cycles/s = 0.8.
        steady = sampler.utilization[2:18]
        assert all(u == pytest.approx(0.8, abs=0.1) for u in steady)

    def test_idle_platform_reads_zero(self, pipeline_descriptor):
        platform = build_platform(
            pipeline_descriptor, InputTrace([TraceSegment(0.0, 5.0)])
        )
        sampler = CpuSampler(platform, interval=1.0)
        platform.run(until=5.0)
        assert all(u == 0.0 for u in sampler.utilization)


class TestQueueSampler:
    def test_queues_grow_under_overload(self, pipeline_descriptor):
        platform = build_platform(
            pipeline_descriptor, InputTrace([TraceSegment(8.0, 20.0, "High")])
        )
        sampler = QueueSampler(platform, interval=1.0)
        platform.run(until=20.0)
        assert sampler.max_backlog() > 4
        backlog = sampler.total_backlog_series()
        # Backlog rises from (near) empty to a saturated plateau.
        assert backlog[0] < backlog[-1] or max(backlog) > backlog[0]

    def test_queues_stay_short_when_unloaded(self, pipeline_descriptor):
        platform = build_platform(
            pipeline_descriptor, InputTrace([TraceSegment(1.0, 10.0)])
        )
        sampler = QueueSampler(platform, interval=1.0)
        platform.run(until=10.0)
        assert sampler.max_backlog() <= 2


class TestActivationSampler:
    def test_counts_follow_commands_and_crashes(self, pipeline_descriptor):
        platform = build_platform(
            pipeline_descriptor, InputTrace([TraceSegment(2.0, 20.0)])
        )
        sampler = ActivationSampler(platform, interval=1.0)
        platform.env.schedule_at(
            5.5, lambda: platform.set_activation(ReplicaId("pe1", 1), False)
        )
        platform.env.schedule_at(
            10.5, lambda: platform.crash_replica(ReplicaId("pe2", 0))
        )
        platform.run(until=20.0)
        assert sampler.active_counts[2] == 4
        assert sampler.active_counts[7] == 3  # one deactivated
        assert sampler.active_counts[12] == 2  # plus one crashed
        assert sampler.alive_counts[12] == 3
