"""Tests for input traces."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsps import InputTrace, TraceSegment, two_level_trace
from repro.errors import SimulationError


class TestTraceSegment:
    def test_rejects_negative_rate(self):
        with pytest.raises(SimulationError):
            TraceSegment(rate=-1.0, duration=10.0)

    def test_rejects_zero_duration(self):
        with pytest.raises(SimulationError):
            TraceSegment(rate=1.0, duration=0.0)


class TestInputTrace:
    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            InputTrace([])

    def test_duration(self):
        trace = InputTrace(
            [TraceSegment(4.0, 10.0), TraceSegment(8.0, 5.0)]
        )
        assert trace.duration == 15.0

    def test_rate_at(self):
        trace = InputTrace(
            [TraceSegment(4.0, 10.0), TraceSegment(8.0, 5.0)]
        )
        assert trace.rate_at(0.0) == 4.0
        assert trace.rate_at(9.99) == 4.0
        assert trace.rate_at(10.0) == 8.0
        assert trace.rate_at(99.0) == 0.0  # silent past the end
        with pytest.raises(SimulationError):
            trace.rate_at(-1.0)

    def test_deterministic_arrivals_match_rate(self):
        trace = InputTrace([TraceSegment(4.0, 10.0)])
        arrivals = list(trace.arrival_times())
        assert len(arrivals) == 40
        assert arrivals[0] == pytest.approx(0.25)
        assert arrivals[-1] == pytest.approx(10.0)

    def test_arrivals_strictly_increasing(self):
        trace = two_level_trace(4.0, 8.0, duration=30.0)
        arrivals = list(trace.arrival_times())
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))

    def test_zero_rate_segment_emits_nothing(self):
        trace = InputTrace(
            [TraceSegment(0.0, 5.0), TraceSegment(2.0, 5.0)]
        )
        arrivals = list(trace.arrival_times())
        assert all(t > 5.0 for t in arrivals)
        assert len(arrivals) == 10

    def test_poisson_arrivals_stay_in_segments(self):
        trace = InputTrace([TraceSegment(10.0, 20.0)])
        rng = random.Random(7)
        arrivals = list(trace.arrival_times(rng))
        assert all(0.0 < t <= 20.0 for t in arrivals)
        # Poisson with rate 10 over 20 s: ~200 arrivals, loosely checked.
        assert 120 <= len(arrivals) <= 300

    def test_expected_tuples(self):
        trace = two_level_trace(4.0, 8.0, duration=90.0, high_fraction=1 / 3)
        # 60 s at 4 t/s + 30 s at 8 t/s.
        assert trace.expected_tuples() == pytest.approx(480.0)


class TestTwoLevelTrace:
    def test_structure(self):
        trace = two_level_trace(4.0, 8.0, duration=90.0, high_fraction=1 / 3)
        labels = [s.label for s in trace.segments]
        assert labels == ["Low", "High", "Low"]
        assert trace.duration == pytest.approx(90.0)

    def test_high_windows(self):
        trace = two_level_trace(4.0, 8.0, duration=90.0, high_fraction=1 / 3)
        windows = trace.segment_windows("High")
        assert windows == [(30.0, 60.0)]

    def test_high_at_start(self):
        trace = two_level_trace(
            4.0, 8.0, duration=90.0, high_fraction=1 / 3, high_position=0.0
        )
        assert trace.segments[0].label == "High"
        assert trace.segment_windows("High") == [(0.0, 30.0)]

    def test_invalid_fraction_rejected(self):
        with pytest.raises(SimulationError):
            two_level_trace(4.0, 8.0, duration=90.0, high_fraction=1.5)

    @settings(max_examples=30, deadline=None)
    @given(
        low=st.floats(min_value=0.5, max_value=10.0),
        ratio=st.floats(min_value=1.1, max_value=3.0),
        fraction=st.floats(min_value=0.05, max_value=0.95),
        position=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_property_durations_partition_trace(
        self, low, ratio, fraction, position
    ):
        trace = two_level_trace(
            low, low * ratio, duration=60.0,
            high_fraction=fraction, high_position=position,
        )
        assert trace.duration == pytest.approx(60.0)
        high_total = sum(
            s.duration for s in trace.segments if s.label == "High"
        )
        assert high_total == pytest.approx(60.0 * fraction)
