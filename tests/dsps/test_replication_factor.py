"""Generality: the platform and baselines support k != 2.

FT-Search is k=2 only (like the paper), but the model, deployment,
baselines and simulator are written for arbitrary replication factors;
these tests keep that true.
"""

from __future__ import annotations

import pytest

from repro.core import (
    ActivationStrategy,
    Host,
    internal_completeness,
    static_replication,
    greedy_deactivation,
)
from repro.dsps import InputTrace, StreamPlatform, TraceSegment
from repro.dsps.failures import pessimistic_victims
from repro.placement import balanced_placement

GIGA = 1.0e9


@pytest.fixture
def triple_deployment(pipeline_descriptor):
    hosts = [
        Host("h0", cores=2, cycles_per_core=0.6 * GIGA),
        Host("h1", cores=2, cycles_per_core=0.6 * GIGA),
        Host("h2", cores=2, cycles_per_core=0.6 * GIGA),
    ]
    return balanced_placement(
        pipeline_descriptor, hosts, replication_factor=3
    )


class TestTripleReplication:
    def test_placement_spreads_three_replicas(self, triple_deployment):
        for pe in ("pe1", "pe2"):
            homes = {
                triple_deployment.host_of(r)
                for r in triple_deployment.replicas_of(pe)
            }
            assert len(homes) == 3

    def test_static_replication_ic_one(self, triple_deployment):
        strategy = static_replication(triple_deployment)
        assert internal_completeness(strategy) == pytest.approx(1.0)

    def test_partial_activation_breaks_pessimistic_phi(
        self, triple_deployment
    ):
        """With k=3 the pessimistic model still demands *all* replicas
        active for phi = 1 (Eq. 14 generalises to k)."""
        from repro.core import ReplicaId

        strategy = static_replication(triple_deployment).replace(
            {(ReplicaId("pe2", 2), 1): False}
        )
        assert not strategy.fully_replicated("pe2", 1)
        assert internal_completeness(strategy) < 1.0

    def test_greedy_deactivation_works_for_k3(self, triple_deployment):
        strategy = greedy_deactivation(triple_deployment)
        for pe in ("pe1", "pe2"):
            for c in range(2):
                assert strategy.active_count(pe, c) >= 1

    def test_simulation_runs_with_three_replicas(self, triple_deployment):
        strategy = ActivationStrategy.all_active(triple_deployment)
        platform = StreamPlatform(
            triple_deployment,
            {"src": InputTrace([TraceSegment(4.0, 20.0, "Low")])},
            initial_active=strategy.active_map(0),
        )
        metrics = platform.run()
        assert metrics.total_output == metrics.total_input
        # Three replicas per PE process everything; one is primary.
        for pe in ("pe1", "pe2"):
            processed = [
                metrics.replica(r).processed
                for r in triple_deployment.replicas_of(pe)
            ]
            assert all(p == metrics.total_input for p in processed)

    def test_pessimistic_victims_defined_for_k3(self, triple_deployment):
        strategy = static_replication(triple_deployment)
        victims = pessimistic_victims(strategy)
        assert set(victims) == {"pe1", "pe2"}

    def test_two_replica_failures_survived(self, triple_deployment):
        """k=3 static replication survives two replica crashes of the
        same PE — the depth-of-redundancy the paper's k=2 cannot give."""
        from repro.core import ReplicaId

        platform = StreamPlatform(
            triple_deployment,
            {"src": InputTrace([TraceSegment(4.0, 30.0, "Low")])},
        )
        platform.env.schedule_at(
            5.0, lambda: platform.crash_replica(ReplicaId("pe1", 0))
        )
        platform.env.schedule_at(
            10.0, lambda: platform.crash_replica(ReplicaId("pe1", 1))
        )
        metrics = platform.run()
        # Two failovers of ~1 s each at 4 t/s: small bounded loss.
        assert metrics.total_output >= metrics.total_input - 12
