"""Tests for the processor-sharing host scheduler."""

from __future__ import annotations

import pytest

from repro.dsps.hosts import HostScheduler
from repro.errors import SimulationError
from repro.sim import Environment


def make(capacity=10.0, cycles_per_core=10.0):
    env = Environment()
    return env, HostScheduler(env, "h", capacity, cycles_per_core)


class TestSingleJob:
    def test_completion_time_is_cycles_over_capacity(self):
        env, host = make(capacity=10.0)
        done = []
        host.submit("a", 20.0, lambda: done.append(env.now))
        env.run()
        assert done == [2.0]

    def test_zero_cycle_job_completes_immediately(self):
        env, host = make()
        done = []
        host.submit("a", 0.0, lambda: done.append(env.now))
        env.run()
        assert done == [0.0]

    def test_negative_cycles_rejected(self):
        env, host = make()
        with pytest.raises(SimulationError):
            host.submit("a", -1.0, lambda: None)

    def test_double_submit_rejected(self):
        env, host = make()
        host.submit("a", 5.0, lambda: None)
        with pytest.raises(SimulationError):
            host.submit("a", 5.0, lambda: None)

    def test_invalid_capacity_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            HostScheduler(env, "h", 0.0, 1.0)


class TestSharing:
    def test_two_equal_jobs_halve_the_rate(self):
        env, host = make(capacity=10.0)
        done = {}
        host.submit("a", 10.0, lambda: done.setdefault("a", env.now))
        host.submit("b", 10.0, lambda: done.setdefault("b", env.now))
        env.run()
        # Both share 10 cycles/s: each runs at 5, finishing at t=2.
        assert done == {"a": 2.0, "b": 2.0}

    def test_short_job_releases_capacity(self):
        env, host = make(capacity=10.0)
        done = {}
        host.submit("short", 5.0, lambda: done.setdefault("s", env.now))
        host.submit("long", 15.0, lambda: done.setdefault("l", env.now))
        env.run()
        # Shared until t=1 (5 cycles each); then "long" gets the full
        # 10 c/s for its remaining 10 cycles: done at t=2.
        assert done["s"] == pytest.approx(1.0)
        assert done["l"] == pytest.approx(2.0)

    def test_late_arrival_shares_from_arrival(self):
        env, host = make(capacity=10.0)
        done = {}
        host.submit("a", 10.0, lambda: done.setdefault("a", env.now))
        env.schedule(
            0.5,
            lambda: host.submit(
                "b", 10.0, lambda: done.setdefault("b", env.now)
            ),
        )
        env.run()
        # a: 5 cycles alone by t=0.5, then 5 c/s -> +1.0 s -> t=1.5.
        assert done["a"] == pytest.approx(1.5)
        # b: 5 cycles by t=1.5, full speed after -> t=2.0.
        assert done["b"] == pytest.approx(2.0)

    def test_overload_throughput_equals_capacity(self):
        env, host = make(capacity=10.0)
        completed = []
        for name in range(5):
            host.submit(name, 10.0, lambda n=name: completed.append(n))
        env.run()
        # 50 cycles at 10 c/s: everything done by t=5.
        assert env.now == pytest.approx(5.0)
        assert sorted(completed) == list(range(5))
        assert host.cycles_delivered == pytest.approx(50.0)


class TestCancel:
    def test_cancel_returns_consumed_cycles(self):
        env, host = make(capacity=10.0)
        host.submit("a", 10.0, lambda: None)
        env.schedule(0.4, lambda: None)
        env.run(until=0.4)
        consumed = host.cancel("a")
        assert consumed == pytest.approx(4.0)
        assert host.busy_jobs == 0

    def test_cancel_unknown_owner_is_noop(self):
        env, host = make()
        assert host.cancel("ghost") == 0.0

    def test_cancel_speeds_up_survivors(self):
        env, host = make(capacity=10.0)
        done = {}
        host.submit("a", 10.0, lambda: done.setdefault("a", env.now))
        host.submit("b", 10.0, lambda: done.setdefault("b", env.now))
        env.schedule(1.0, lambda: host.cancel("a"))
        env.run()
        # b gets 5 cycles by t=1 (sharing), then full speed: t=1.5.
        assert done == {"b": 1.5}

    def test_cpu_seconds_conversion(self):
        env, host = make(capacity=20.0, cycles_per_core=10.0)
        assert host.cpu_seconds(25.0) == pytest.approx(2.5)


class TestConservation:
    @staticmethod
    def _run_random_workload(seed, n_jobs):
        import random

        from hypothesis import assume

        rng = random.Random(seed)
        env, host = make(capacity=10.0)
        completed_cycles = []
        cancelled_cycles = []
        submitted = []

        def submit(owner, cycles):
            submitted.append(cycles)
            host.submit(
                owner, cycles, lambda c=cycles: completed_cycles.append(c)
            )

        for i in range(n_jobs):
            delay = rng.uniform(0.0, 2.0)
            cycles = rng.uniform(0.5, 20.0)
            env.schedule(delay, lambda o=f"job{i}", c=cycles: submit(o, c))
            if rng.random() < 0.3:
                env.schedule(
                    delay + rng.uniform(0.1, 1.0),
                    lambda o=f"job{i}": cancelled_cycles.append(
                        host.cancel(o)
                    ),
                )
        env.run()
        del assume
        return host, submitted, completed_cycles, cancelled_cycles

    def test_cycles_are_conserved(self):
        """Delivered cycles == completed work + consumed-then-cancelled
        work, within the half-cycle completion slack per job (no CPU time
        is invented or lost by the PS bookkeeping)."""
        import pytest as _pytest

        for seed in range(8):
            host, submitted, done, cancelled = self._run_random_workload(
                seed, n_jobs=25
            )
            accounted = sum(done) + sum(cancelled)
            slack = 0.5 * (len(done) + len(cancelled)) + 0.01
            assert host.cycles_delivered == _pytest.approx(
                accounted, abs=slack
            )

    def test_all_uncancelled_jobs_complete(self):
        for seed in range(8):
            host, submitted, done, cancelled = self._run_random_workload(
                seed, n_jobs=25
            )
            # Every submitted job either completed or was cancelled.
            cancel_events = len(cancelled)
            assert len(done) + cancel_events >= len(submitted) - cancel_events


class TestNumericalRobustness:
    def test_many_tiny_jobs_terminate(self):
        """Regression test: floating-point residue below one cycle must
        not wedge the completion loop."""
        env, host = make(capacity=1e9, cycles_per_core=1e9)
        completed = []

        def chain(n):
            if n > 0:
                host.submit(
                    "w", 1e8 * 1.0000001, lambda: (completed.append(n),
                                                   chain(n - 1)),
                )

        chain(200)
        env.run()
        assert len(completed) == 200
