"""Unit tests for source and sink operators."""

from __future__ import annotations

import random

import pytest

from repro.dsps import InputTrace, TraceSegment
from repro.dsps.endpoints import SinkOperator, SourceOperator
from repro.dsps.metrics import TimeSeries
from repro.sim import Environment


class TestSourceOperator:
    def build(self, trace, rng=None, jitter=0.0):
        env = Environment()
        delivered = []
        series = TimeSeries()
        source = SourceOperator(
            env, "src", trace,
            deliver=lambda name: delivered.append((env.now, name)),
            series=series, rng=rng, jitter=jitter,
        )
        return env, source, delivered, series

    def test_deterministic_emission(self):
        trace = InputTrace([TraceSegment(2.0, 5.0)])
        env, source, delivered, series = self.build(trace)
        env.run()
        assert source.emitted == 10
        assert len(delivered) == 10
        assert delivered[0] == (0.5, "src")
        assert series.total() == 10

    def test_current_rate_follows_trace(self):
        trace = InputTrace(
            [TraceSegment(2.0, 5.0, "Low"), TraceSegment(6.0, 5.0, "High")]
        )
        env, source, _, _ = self.build(trace)
        env.run(until=1.0)
        assert source.current_rate() == 2.0
        env.run(until=7.0)
        assert source.current_rate() == 6.0

    def test_jittered_emission_count_close_to_nominal(self):
        trace = InputTrace([TraceSegment(5.0, 40.0)])
        env, source, _, _ = self.build(
            trace, rng=random.Random(1), jitter=0.3
        )
        env.run()
        assert source.emitted == pytest.approx(200, abs=15)


class TestSinkOperator:
    def test_counts_and_latency(self):
        env = Environment()
        series = TimeSeries()
        sink = SinkOperator(env, "out", series)
        env.schedule(2.0, lambda: sink.on_tuple("pe", birth=1.5))
        env.schedule(3.0, lambda: sink.on_tuple("pe", birth=1.0))
        env.run()
        assert sink.received == 2
        assert sink.latency.mean() == pytest.approx((0.5 + 2.0) / 2)

    def test_birthless_tuples_skip_latency(self):
        env = Environment()
        sink = SinkOperator(env, "out", TimeSeries())
        sink.on_tuple("pe")
        assert sink.received == 1
        assert len(sink.latency) == 0
