"""Tests for heartbeat-based failure detection (Sec. 5.1's HAProxy beats)."""

from __future__ import annotations

import pytest

from repro.core import Host, ReplicaId
from repro.dsps import (
    InputTrace,
    PlatformConfig,
    StreamPlatform,
    TraceSegment,
)
from repro.errors import SimulationError
from repro.placement import balanced_placement

GIGA = 1.0e9


def build_platform(
    pipeline_descriptor,
    trace=None,
    heartbeat_interval=0.5,
    failover_delay=1.0,
):
    hosts = [
        Host("h0", cores=2, cycles_per_core=0.5 * GIGA),
        Host("h1", cores=2, cycles_per_core=0.5 * GIGA),
    ]
    deployment = balanced_placement(pipeline_descriptor, hosts, 2)
    trace = trace or InputTrace([TraceSegment(4.0, 40.0, "Low")])
    return StreamPlatform(
        deployment,
        {"src": trace},
        config=PlatformConfig(
            heartbeat_interval=heartbeat_interval,
            failover_delay=failover_delay,
        ),
    )


class TestValidation:
    def test_interval_must_be_positive(self):
        with pytest.raises(SimulationError):
            PlatformConfig(heartbeat_interval=0.0)

    def test_interval_cannot_exceed_timeout(self):
        with pytest.raises(SimulationError, match="not exceed"):
            PlatformConfig(heartbeat_interval=2.0, failover_delay=1.0)


class TestDetection:
    def test_crash_detected_within_timeout_plus_interval(
        self, pipeline_descriptor
    ):
        platform = build_platform(
            pipeline_descriptor, heartbeat_interval=0.25, failover_delay=1.0
        )
        group = platform.group("pe1")
        victim = group.primary
        takeover_times = []

        def watch():
            while True:
                yield 0.05
                if group.primary is not None and group.primary is not victim:
                    takeover_times.append(platform.env.now)
                    return

        platform.env.schedule_at(
            10.0, lambda: platform.crash_replica(victim.replica_id)
        )
        platform.env.process(watch())
        platform.run()
        assert takeover_times, "no failover happened"
        detection_latency = takeover_times[0] - 10.0
        # Emergent: at least the timeout, at most timeout + ~2 intervals.
        assert 1.0 - 0.3 <= detection_latency <= 1.0 + 0.6

    def test_primary_role_persists_until_detection(
        self, pipeline_descriptor
    ):
        platform = build_platform(
            pipeline_descriptor, heartbeat_interval=0.5, failover_delay=1.5
        )
        group = platform.group("pe1")
        victim = group.primary
        platform.env.schedule_at(
            5.0, lambda: platform.crash_replica(victim.replica_id)
        )
        # Just after the crash, before the timeout, the dead replica is
        # still formally the primary (downstream sees silence).
        platform.env.run(until=5.6)
        assert group.primary is victim
        platform.env.run(until=8.0)
        assert group.primary is not victim

    def test_deactivation_handover_is_still_immediate(
        self, pipeline_descriptor
    ):
        platform = build_platform(pipeline_descriptor)
        group = platform.group("pe2")
        first = group.primary
        platform.env.run(until=3.0)
        first.deactivate()
        assert group.primary is not None
        assert group.primary is not first

    def test_end_to_end_loss_bounded_by_detection_window(
        self, pipeline_descriptor
    ):
        platform = build_platform(
            pipeline_descriptor, heartbeat_interval=0.25, failover_delay=1.0
        )
        group = platform.group("pe1")
        victim = group.primary
        platform.env.schedule_at(
            10.0, lambda: platform.crash_replica(victim.replica_id)
        )
        metrics = platform.run()
        lost = metrics.total_input - metrics.total_output
        # ~1.5 s of 4 t/s plus boundary effects.
        assert 0 < lost <= 10


class TestHeartbeatTraffic:
    def test_messages_accumulate_with_fanout(self, pipeline_descriptor):
        platform = build_platform(
            pipeline_descriptor,
            trace=InputTrace([TraceSegment(1.0, 20.0, "Low")]),
            heartbeat_interval=0.5,
        )
        metrics = platform.run(until=20.0)
        # pe1 beats go to pe2's 2 replicas, pe2's to the sink (fanout 1):
        # per interval, 2 replicas x 2 + 2 x 1 = 6 messages; 40 intervals.
        assert metrics.network.heartbeat_messages == pytest.approx(
            240, abs=20
        )

    def test_crashed_replicas_stop_beating(self, pipeline_descriptor):
        quiet = build_platform(
            pipeline_descriptor,
            trace=InputTrace([TraceSegment(1.0, 20.0, "Low")]),
        )
        for pe in ("pe1", "pe2"):
            for replica in quiet.group(pe).members:
                quiet.env.schedule_at(
                    0.1, lambda r=replica: r.crash()
                )
        metrics = quiet.run(until=20.0)
        # Only the beats before t=0.1 (none, interval 0.5) were sent.
        assert metrics.network.heartbeat_messages == 0

    def test_recovered_replicas_resume_beating(self, pipeline_descriptor):
        platform = build_platform(
            pipeline_descriptor,
            trace=InputTrace([TraceSegment(1.0, 20.0, "Low")]),
        )
        for pe in ("pe1", "pe2"):
            for replica in platform.group(pe).members:
                platform.env.schedule_at(0.1, lambda r=replica: r.crash())
                platform.env.schedule_at(
                    10.0, lambda r=replica: r.recover()
                )
        metrics = platform.run(until=20.0)
        # Silent for the first half, back to 6 messages/interval for the
        # second: 20 intervals' worth.
        assert metrics.network.heartbeat_messages == pytest.approx(
            120, abs=20
        )

    def test_legacy_mode_sends_no_heartbeats(self, pipeline_descriptor):
        hosts = [
            Host("h0", cores=2, cycles_per_core=0.5 * GIGA),
            Host("h1", cores=2, cycles_per_core=0.5 * GIGA),
        ]
        deployment = balanced_placement(pipeline_descriptor, hosts, 2)
        platform = StreamPlatform(
            deployment,
            {"src": InputTrace([TraceSegment(1.0, 10.0, "Low")])},
        )
        metrics = platform.run()
        assert metrics.network.heartbeat_messages == 0


class TestRecoveryRegistration:
    """Recovered replicas must be re-registered with the detector.

    Regression: ``inject_host_crash`` recovery used to leave the
    revived replicas with their stale pre-crash ``_last_beat`` stamps,
    so the watchdog deposed them the instant they were re-elected.
    """

    def test_crash_recover_crash_elects_the_recovered_replica(
        self, pipeline_descriptor
    ):
        from repro.dsps import HostCrashPlan, inject_host_crash

        platform = build_platform(
            pipeline_descriptor,
            trace=InputTrace([TraceSegment(4.0, 40.0, "Low")]),
            heartbeat_interval=0.25,
            failover_delay=1.0,
        )
        group = platform.group("pe1")
        first = group.primary
        host = first.host.name
        inject_host_crash(
            platform, HostCrashPlan(host=host, crash_time=5.0, downtime=3.0)
        )

        # Once the survivor has taken over, kill it too: the only
        # processable member left is the recovered first primary.
        def crash_survivor():
            assert group.primary is not first
            platform.crash_replica(group.primary.replica_id)

        platform.env.schedule_at(20.0, crash_survivor)
        platform.run()
        assert group.primary is first
        assert first.alive

    def test_recovered_primary_is_not_instantly_deposed(
        self, pipeline_descriptor
    ):
        platform = build_platform(
            pipeline_descriptor,
            trace=InputTrace([TraceSegment(4.0, 40.0, "Low")]),
            heartbeat_interval=0.25,
            failover_delay=1.0,
        )
        group = platform.group("pe1")
        first = group.primary
        other = next(m for m in group.members if m is not first)
        platform.env.schedule_at(
            5.0, lambda: platform.crash_replica(first.replica_id)
        )
        platform.env.schedule_at(
            10.0, lambda: platform.recover_replica(first.replica_id)
        )
        platform.env.schedule_at(
            20.0, lambda: platform.crash_replica(other.replica_id)
        )
        depositions = []

        def watch():
            # Only the election triggered by the second crash matters:
            # the recovered replica must take over and keep the role.
            while platform.env.now < 20.0:
                yield 0.05
            elected_at = None
            while True:
                yield 0.05
                if group.primary is first and elected_at is None:
                    elected_at = platform.env.now
                if elected_at is not None and group.primary is not first:
                    depositions.append(platform.env.now)
                    return

        platform.env.process(watch())
        platform.run()
        assert group.primary is first
        assert not depositions

    def test_short_flap_of_primary_resolves_its_own_span(
        self, pipeline_descriptor
    ):
        platform = build_platform(
            pipeline_descriptor,
            trace=InputTrace([TraceSegment(4.0, 30.0, "Low")]),
            heartbeat_interval=0.25,
            failover_delay=1.0,
        )
        group = platform.group("pe1")
        victim = group.primary
        # A 0.3 s flap, well under the 1 s timeout: the primary returns
        # before the watchdog ever deposes it.
        platform.env.schedule_at(
            5.0, lambda: platform.crash_replica(victim.replica_id)
        )
        platform.env.schedule_at(
            5.3, lambda: platform.recover_replica(victim.replica_id)
        )
        platform.run()
        assert group.primary is victim
        ends = [
            e
            for e in platform.telemetry.events.of_type("span.end")
            if e.fields.get("name") == "failover"
            and e.fields.get("pe") == "pe1"
        ]
        assert len(ends) == 1
        assert ends[0].fields.get("resumed") is True
        # The span closed at the recovery, not at some later failover.
        assert ends[0].fields["duration"] == pytest.approx(0.3, abs=0.01)
