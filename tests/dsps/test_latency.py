"""End-to-end latency measurement tests.

The paper motivates LAAR with the observation that "load peaks can lead
to increased processing latency due to data queuing" (Sec. 1). These
tests check the latency instrumentation itself and then the motivating
phenomenon: under static replication a High burst inflates latency, while
LAAR's deactivation keeps it near the service-time floor.
"""

from __future__ import annotations

import pytest

from repro.core import Host, OptimizationProblem, ft_search, static_replication
from repro.dsps import (
    InputTrace,
    LatencyRecorder,
    StreamPlatform,
    TraceSegment,
    two_level_trace,
)
from repro.laar import ExtendedApplication, MiddlewareConfig
from repro.placement import balanced_placement

GIGA = 1.0e9


class TestLatencyRecorder:
    def test_empty_recorder(self):
        recorder = LatencyRecorder()
        assert recorder.mean() == 0.0
        assert recorder.percentile(0.99) == 0.0
        assert recorder.max() == 0.0
        assert len(recorder) == 0

    def test_mean_and_percentiles(self):
        recorder = LatencyRecorder()
        for i, latency in enumerate([0.1, 0.2, 0.3, 0.4, 1.0]):
            recorder.record(float(i), latency)
        assert recorder.mean() == pytest.approx(0.4)
        assert recorder.percentile(0.0) == 0.1
        assert recorder.percentile(0.99) == 1.0
        assert recorder.max() == 1.0

    def test_invalid_percentile(self):
        with pytest.raises(ValueError):
            LatencyRecorder().percentile(1.5)

    def test_nearest_rank_pins(self):
        # Unified semantics (repro.obs.sketch.nearest_rank_index): for
        # n=4 the median is the ceil(0.5*4)=2nd order statistic — a
        # real sample, never an interpolated midpoint.
        recorder = LatencyRecorder()
        for i, latency in enumerate([0.4, 0.1, 0.3, 0.2]):
            recorder.record(float(i), latency)
        assert recorder.percentile(0.5) == 0.2
        assert recorder.percentile(0.75) == 0.3
        assert recorder.percentile(1.0) == 0.4

    def test_agrees_with_registry_histogram(self):
        from repro.obs import MetricsRegistry

        recorder = LatencyRecorder()
        histogram = MetricsRegistry().histogram("lat")
        values = [0.9, 0.2, 0.7, 0.4, 0.5]
        for i, value in enumerate(values):
            recorder.record(float(i), value)
            histogram.record(value)
        summary = histogram.summary()
        assert summary["p50"] == recorder.percentile(0.50)
        assert summary["p95"] == recorder.percentile(0.95)

    def test_sample_buffer_is_live(self):
        recorder = LatencyRecorder()
        buffer = recorder.sample_buffer()
        recorder.record(1.0, 0.25)
        assert buffer == [(1.0, 0.25)]

    def test_window_mean(self):
        recorder = LatencyRecorder()
        recorder.record(1.0, 0.1)
        recorder.record(5.0, 0.5)
        assert recorder.mean_in_window(0.0, 2.0) == pytest.approx(0.1)
        assert recorder.mean_in_window(4.0, 6.0) == pytest.approx(0.5)
        assert recorder.mean_in_window(10.0, 20.0) == 0.0


def tight_deployment(pipeline_descriptor):
    hosts = [
        Host("h0", cores=2, cycles_per_core=0.5 * GIGA),
        Host("h1", cores=2, cycles_per_core=0.5 * GIGA),
    ]
    return balanced_placement(pipeline_descriptor, hosts, 2)


class TestPipelineLatency:
    def test_unloaded_latency_is_service_time_floor(
        self, pipeline_descriptor
    ):
        """At 1 t/s the pipeline is idle between tuples, so each stage
        runs alone on its host and gets the full 1e9 cycles/s under
        processor sharing: 2 stages x 0.1e9/1e9 = 0.2 s floor."""
        deployment = tight_deployment(pipeline_descriptor)
        platform = StreamPlatform(
            deployment,
            {"src": InputTrace([TraceSegment(1.0, 30.0, "Low")])},
        )
        metrics = platform.run()
        assert metrics.mean_latency() == pytest.approx(0.2, rel=0.05)

    def test_saturation_inflates_latency(self, pipeline_descriptor):
        """The Sec. 1 motivation: an overloaded deployment queues tuples,
        latency climbs towards the queue bound."""
        deployment = tight_deployment(pipeline_descriptor)
        platform = StreamPlatform(
            deployment,
            {"src": InputTrace([TraceSegment(8.0, 30.0, "High")])},
        )
        metrics = platform.run()
        # Queues hold 2 s of High input; sustained overload keeps them
        # full, so p99 latency far exceeds the 0.4 s floor.
        assert metrics.latency_percentile(0.99) > 2.0

    def test_laar_keeps_peak_latency_low(self, pipeline_descriptor):
        """Fig. 3's story in latency terms: during the burst, static
        replication queues (latency grows), LAAR does not."""
        deployment = tight_deployment(pipeline_descriptor)
        trace = {"src": two_level_trace(4.0, 8.0, duration=90.0)}

        static_run = ExtendedApplication(
            deployment,
            static_replication(deployment),
            trace,
            middleware_config=MiddlewareConfig(dynamic=False),
        ).run()

        result = ft_search(
            OptimizationProblem(deployment, ic_target=0.5), time_limit=10.0
        )
        laar_run = ExtendedApplication(
            deployment, result.strategy, trace
        ).run()

        peak = (40.0, 58.0)
        static_peak_latency = static_run.mean_latency_in_window(*peak)
        laar_peak_latency = laar_run.mean_latency_in_window(*peak)
        assert static_peak_latency > 3.0 * laar_peak_latency
        assert laar_peak_latency < 1.0

    def test_latency_survives_failover(self, pipeline_descriptor):
        """After a primary crash the secondary resumes; latencies of
        post-failover tuples stay near the floor."""
        from repro.core import ReplicaId

        deployment = tight_deployment(pipeline_descriptor)
        platform = StreamPlatform(
            deployment,
            {"src": InputTrace([TraceSegment(2.0, 40.0, "Low")])},
        )
        platform.env.schedule_at(
            10.0,
            lambda: platform.crash_replica(ReplicaId("pe1", 0)),
        )
        metrics = platform.run()
        tail = metrics.mean_latency_in_window(20.0, 40.0)
        assert tail == pytest.approx(0.2, rel=0.2)


class TestLatencySummary:
    def test_empty_recorder_summary_is_stable(self):
        assert LatencyRecorder().summary() == {
            "count": 0, "mean": None, "p50": None, "p95": None, "max": None,
        }

    def test_summary_matches_point_queries(self):
        recorder = LatencyRecorder()
        for i, latency in enumerate([0.1, 0.2, 0.3, 0.4, 1.0]):
            recorder.record(float(i), latency)
        summary = recorder.summary()
        assert summary["count"] == 5
        assert summary["mean"] == pytest.approx(recorder.mean())
        assert summary["p50"] == recorder.percentile(0.50)
        assert summary["p95"] == recorder.percentile(0.95)
        assert summary["max"] == recorder.max()
