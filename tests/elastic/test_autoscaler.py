"""Tests for the per-tenant autoscaler (repro.elastic.autoscaler)."""

from __future__ import annotations

import json

import pytest

from repro.core import Host
from repro.dsps import PlatformConfig, StreamPlatform, two_level_trace
from repro.elastic import Autoscaler, AutoscalerPolicy, MigrationEngine
from repro.errors import SimulationError
from repro.placement import balanced_placement

GIGA = 1.0e9

PEAK_START = 4.0
PEAK_END = 8.0
DURATION = 14.0


def build(pipeline_descriptor, *, batching=False, hosts=3):
    pool = [
        Host(f"h{i}", cores=4, cycles_per_core=GIGA) for i in range(hosts)
    ]
    deployment = balanced_placement(
        pipeline_descriptor, pool, replication_factor=2
    )
    trace = two_level_trace(
        4.0,
        8.0,
        duration=DURATION,
        high_fraction=(PEAK_END - PEAK_START) / DURATION,
        high_position=PEAK_START / (DURATION - (PEAK_END - PEAK_START)),
    )
    platform = StreamPlatform(
        deployment,
        {"src": trace},
        config=PlatformConfig(batching=batching),
    )
    return platform, MigrationEngine(platform)


def scaler(platform, engine, policy=None, chost=None):
    return Autoscaler(
        platform,
        engine,
        peak_start=PEAK_START,
        peak_end=PEAK_END,
        horizon=DURATION + 2.0,
        policy=policy,
        consolidation_host=chost,
    )


def event_types(platform):
    return [
        json.loads(line)["type"]
        for line in platform.telemetry.events.to_jsonl().splitlines()
    ]


class TestPolicy:
    def test_validation(self):
        with pytest.raises(SimulationError):
            AutoscalerPolicy(tick=0.0)
        with pytest.raises(SimulationError):
            AutoscalerPolicy(trough_parallelism=0)
        with pytest.raises(SimulationError):
            AutoscalerPolicy(peak_parallelism=1, trough_parallelism=2)

    def test_consolidation_needs_a_host(self, pipeline_descriptor):
        platform, engine = build(pipeline_descriptor)
        with pytest.raises(SimulationError, match="consolidation_host"):
            scaler(
                platform,
                engine,
                policy=AutoscalerPolicy(consolidate=True),
            )

    def test_desired_parallelism_window(self, pipeline_descriptor):
        platform, engine = build(pipeline_descriptor)
        control = scaler(platform, engine)
        policy = AutoscalerPolicy()
        assert control.desired_parallelism(0.0) == policy.trough_parallelism
        assert (
            control.desired_parallelism(PEAK_START - policy.lead)
            == policy.peak_parallelism
        )
        assert (
            control.desired_parallelism(PEAK_END + policy.lag)
            == policy.trough_parallelism
        )


class TestControlLoop:
    def test_scales_up_for_peak_and_down_after(self, pipeline_descriptor):
        platform, engine = build(pipeline_descriptor)
        control = scaler(platform, engine)
        control.start()
        platform.run()
        assert control.scale_ups > 0
        assert control.scale_downs > 0
        # After the run the fleet is back in trough shape.
        for pe in ("pe1", "pe2"):
            active = sum(
                1 for m in platform.group(pe).members if m.active
            )
            assert active == 1

    def test_consolidation_drains_and_expands(self, pipeline_descriptor):
        platform, engine = build(pipeline_descriptor)
        pe1_hosts = {
            m.host.name for m in platform.group("pe1").members
        }
        chost = min(
            h.name
            for h in platform.deployment.hosts
            if h.name not in pe1_hosts
        )
        # Park a standby on the consolidation host so there is
        # something for the night shift to remove.
        engine.add_replica("pe1", chost)
        control = scaler(
            platform,
            engine,
            policy=AutoscalerPolicy(consolidate=True),
            chost=chost,
        )
        control.start()
        platform.run()
        assert control.consolidations >= 1
        assert control.expansions >= 1
        types = event_types(platform)
        assert "host.drain" in types
        assert "host.reclaim" in types

    def test_reactive_cover_guard(self, pipeline_descriptor):
        platform, engine = build(pipeline_descriptor)
        control = scaler(platform, engine)
        control.start()

        def kill_active_cover():
            # In the trough only one replica per PE is active; crash
            # its host so the guard must re-activate a standby.
            for member in platform.group("pe1").members:
                if member.active and member.alive:
                    platform.crash_host(member.host.name)
                    return

        platform.env.schedule_at(1.5, kill_active_cover)
        platform.run()
        assert control.reactivations > 0

    def test_every_action_passes_the_proof(self, pipeline_descriptor):
        platform, engine = build(pipeline_descriptor, hosts=2)
        control = scaler(platform, engine)
        control.start()
        # Crash one of the two hosts over the scale-down boundary: the
        # calendar wants parallelism 1, the proof must keep refusing
        # while the survivor is the only cover.
        platform.env.schedule_at(8.2, lambda: platform.crash_host("h0"))
        platform.env.schedule_at(11.0, lambda: platform.recover_host("h0"))
        platform.run()
        for pe in ("pe1", "pe2"):
            assert any(
                m.alive and m.active
                for m in platform.group(pe).members
            )

    def test_batched_matches_tuple_granular(self, pipeline_descriptor):
        logs = []
        for batching in (False, True):
            platform, engine = build(
                pipeline_descriptor, batching=batching
            )
            control = scaler(
                platform,
                engine,
                policy=AutoscalerPolicy(rebalance=True),
            )
            control.start()
            platform.run()
            logs.append(platform.telemetry.events.to_jsonl())
        assert logs[0] == logs[1]
