"""Tests for the runtime elasticity layer (repro.elastic)."""
