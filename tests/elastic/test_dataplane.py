"""Tests for the autoscaled diurnal dataplane (repro.elastic.dataplane)."""

from __future__ import annotations

from dataclasses import replace

from repro.elastic import (
    ElasticParams,
    ElasticTask,
    run_elastic_tenant,
    summarize_elastic,
)
from repro.elastic.dataplane import peak_window, tenant_roles
from repro.elastic.scenario import run_elastic_fleet

PARAMS = ElasticParams(tenants=4, duration=10.0, chaos_every=4)


def digest_for(tenant, params=PARAMS, batching=None):
    return run_elastic_tenant(ElasticTask(params, tenant, batching))


class TestTenantRun:
    def test_digest_reports_elasticity_and_no_violations(self):
        digest = digest_for(0)
        assert digest["violations"] == []
        stats = digest["elastic"]
        assert stats["migrations"] > 0
        assert stats["scale_downs"] > 0
        assert stats["active_core_seconds"] > 0
        # Tenant 3's peak starts mid-run (phase-staggered), leaving a
        # trough before it, so the morning scale-up actually has
        # standbys to activate.
        later = digest_for(3)["elastic"]
        assert later["scale_ups"] > 0

    def test_batched_and_tuple_granular_agree_per_tenant(self):
        for tenant in range(PARAMS.tenants):
            batched = digest_for(tenant, batching=True)
            granular = digest_for(tenant, batching=False)
            assert batched["events_sha256"] == granular["events_sha256"], (
                f"tenant {tenant} diverged between execution modes"
            )

    def test_autoscaling_saves_core_hours(self):
        elastic = digest_for(0)
        static = digest_for(0, params=replace(PARAMS, autoscale=False))
        assert (
            elastic["elastic"]["active_core_seconds"]
            < static["elastic"]["active_core_seconds"]
        )
        assert static["elastic"]["migrations"] == 0

    def test_chaos_mid_migration_aborts_and_rolls_back(self):
        # Tenant 1 is the rebalancer slot whose scripted kill lands
        # inside its post-peak move window.
        digest = digest_for(1)
        assert digest["elastic"]["aborted"] >= 1
        assert digest["violations"] == []

    def test_consolidating_tenant_reclaims_capacity(self):
        consolidator = digest_for(0)
        rebalancer = digest_for(1)
        assert consolidator["elastic"]["consolidations"] >= 1
        assert (
            consolidator["elastic"]["reserved_core_seconds"]
            < rebalancer["elastic"]["reserved_core_seconds"]
        )


class TestRoles:
    def test_roles_are_disjoint(self):
        for tenant in range(8):
            consolidates, rebalances = tenant_roles(PARAMS, tenant)
            assert not (consolidates and rebalances)
        assert tenant_roles(PARAMS, 0) == (True, False)
        assert tenant_roles(PARAMS, 1) == (False, True)

    def test_peak_window_inside_run(self):
        for tenant in range(4):
            start, end = peak_window(PARAMS, tenant)
            assert 0.0 <= start < end <= PARAMS.duration


class TestFleet:
    def test_fleet_sha_is_worker_count_invariant(self):
        serial, _ = run_elastic_fleet(PARAMS, jobs=1)
        parallel, _ = run_elastic_fleet(PARAMS, jobs=2)
        assert serial["fleet_sha256"] == parallel["fleet_sha256"]
        assert serial["ok"] is True

    def test_summary_folds_elastic_block(self):
        digests = [digest_for(t) for t in range(PARAMS.tenants)]
        summary = summarize_elastic(digests)
        assert summary["elastic"]["migrations"] == sum(
            d["elastic"]["migrations"] for d in digests
        )
        assert summary["tenants"] == PARAMS.tenants
