"""Tests for the live-migration protocol (repro.elastic.migration)."""

from __future__ import annotations

import json

import pytest

from repro.core import Host
from repro.dsps import PlatformConfig, StreamPlatform, two_level_trace
from repro.elastic import (
    MigrationAction,
    MigrationConfig,
    MigrationEngine,
    MigrationPlan,
)
from repro.errors import SimulationError
from repro.placement import balanced_placement

GIGA = 1.0e9


def build(pipeline_descriptor, *, batching=False, duration=12.0, hosts=3):
    """Pipeline replicated twice over ``hosts`` roomy hosts."""
    pool = [
        Host(f"h{i}", cores=4, cycles_per_core=GIGA) for i in range(hosts)
    ]
    deployment = balanced_placement(
        pipeline_descriptor, pool, replication_factor=2
    )
    platform = StreamPlatform(
        deployment,
        {"src": two_level_trace(4.0, 8.0, duration=duration)},
        config=PlatformConfig(batching=batching),
    )
    return platform, MigrationEngine(platform)


def event_types(platform):
    return [
        json.loads(line)["type"]
        for line in platform.telemetry.events.to_jsonl().splitlines()
    ]


def hosts_of(platform, pe):
    return sorted(
        member.host.name for member in platform.group(pe).members
    )


def free_host(platform, pe):
    taken = set(hosts_of(platform, pe))
    return sorted(
        host.name
        for host in platform.deployment.hosts
        if host.name not in taken
    )[0]


class TestActions:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError, match="unknown migration"):
            MigrationAction(kind="teleport", pe="pe1")

    def test_missing_hosts_rejected(self):
        with pytest.raises(SimulationError):
            MigrationAction(kind="move", pe="pe1", src="h0")
        with pytest.raises(SimulationError):
            MigrationAction(kind="add", pe="pe1")
        with pytest.raises(SimulationError):
            MigrationAction(kind="rescale", pe="pe1", parallelism=0)

    def test_config_validation(self):
        with pytest.raises(SimulationError):
            MigrationConfig(dual_window=-1.0)


class TestMoveProtocol:
    def test_move_walks_all_four_steps(self, pipeline_descriptor):
        platform, engine = build(pipeline_descriptor)
        src = hosts_of(platform, "pe1")[0]
        dst = free_host(platform, "pe1")
        platform.env.schedule_at(
            2.0, lambda: engine.migrate("pe1", src, dst)
        )
        platform.run()
        types = event_types(platform)
        order = [
            types.index("migration.start"),
            types.index("migration.transfer"),
            types.index("migration.cutover"),
            types.index("migration.done"),
        ]
        assert order == sorted(order)
        assert engine.completed == 1
        assert engine.aborted == 0
        assert engine.open_migrations == ()
        assert dst in hosts_of(platform, "pe1")
        assert src not in hosts_of(platform, "pe1")

    def test_tuples_conserved_across_handover(self, pipeline_descriptor):
        platform, engine = build(pipeline_descriptor)
        src = hosts_of(platform, "pe1")[0]
        dst = free_host(platform, "pe1")
        platform.env.schedule_at(
            2.0, lambda: engine.migrate("pe1", src, dst)
        )
        metrics = platform.run()
        assert metrics.total_input > 0
        for replica_id, m in metrics.replicas.items():
            queued = platform.replica(replica_id).queue_length
            assert (
                m.received == m.processed + m.dropped + m.lost + queued
            ), f"conservation broken for {replica_id}"

    def test_infeasible_move_raises(self, pipeline_descriptor):
        platform, engine = build(pipeline_descriptor)
        src = hosts_of(platform, "pe1")[0]
        other = hosts_of(platform, "pe1")[1]
        with pytest.raises(SimulationError, match="already on"):
            engine.migrate("pe1", src, other)

    def test_cordoned_destination_refused(self, pipeline_descriptor):
        platform, engine = build(pipeline_descriptor)
        src = hosts_of(platform, "pe1")[0]
        dst = free_host(platform, "pe1")
        engine.cordon(dst)
        ok, reason = engine.feasible(
            MigrationAction(kind="move", pe="pe1", src=src, dst=dst)
        )
        assert not ok and "cordoned" in reason

    def test_plan_refuses_infeasible_counts(self, pipeline_descriptor):
        platform, engine = build(pipeline_descriptor)
        src = hosts_of(platform, "pe1")[0]
        other = hosts_of(platform, "pe1")[1]
        started = engine.submit(
            MigrationPlan(
                actions=(
                    MigrationAction(
                        kind="move", pe="pe1", src=src, dst=other
                    ),
                )
            )
        )
        assert started == ()
        assert engine.refused == 1


class TestAbort:
    def test_host_crash_mid_transfer_rolls_back(self, pipeline_descriptor):
        platform, engine = build(pipeline_descriptor)
        src = hosts_of(platform, "pe1")[0]
        dst = free_host(platform, "pe1")
        platform.env.schedule_at(
            2.0, lambda: engine.migrate("pe1", src, dst)
        )
        # Transfer takes 0.05s (0.1 Gcycle state, 0.5 s/Gcycle); the
        # dual window then runs 1s — this kill lands inside it.
        platform.env.schedule_at(2.5, lambda: platform.crash_host(dst))
        platform.env.schedule_at(4.0, lambda: platform.recover_host(dst))
        platform.run()
        assert engine.aborted == 1
        assert engine.completed == 0
        types = event_types(platform)
        assert "migration.abort" in types
        assert "migration.cutover" not in types
        # Rollback: the old deployment is authoritative again.
        assert src in hosts_of(platform, "pe1")
        assert dst not in hosts_of(platform, "pe1")

    def test_abort_past_cutover_refused(self, pipeline_descriptor):
        platform, engine = build(pipeline_descriptor)
        src = hosts_of(platform, "pe1")[0]
        dst = free_host(platform, "pe1")
        mid_box = {}

        def start():
            mid_box["mid"] = engine.migrate("pe1", src, dst)

        failures = {}

        def late_abort():
            try:
                engine.abort(mid_box["mid"], "too-late")
            except SimulationError as exc:
                failures["error"] = str(exc)

        platform.env.schedule_at(2.0, start)
        # 2.0 + transfer 0.05 + dual 1.0 = cutover at 3.05; the drain
        # grace runs until 4.05, so 3.5 is past the commit point.
        platform.env.schedule_at(3.5, late_abort)
        platform.run()
        assert "past cutover" in failures["error"]
        assert engine.completed == 1


class TestRescale:
    def test_scale_down_then_up_mirrors(self, pipeline_descriptor):
        platform, engine = build(pipeline_descriptor)
        platform.env.schedule_at(2.0, lambda: engine.rescale("pe1", 1))
        platform.env.schedule_at(6.0, lambda: engine.rescale("pe1", 2))
        platform.run()
        assert engine.completed == 2
        members = platform.group("pe1").members
        assert sum(1 for m in members if m.active) == 2
        types = event_types(platform)
        assert types.count("migration.start") == 2
        assert types.count("migration.done") == 2

    def test_never_deactivates_last_cover(self, pipeline_descriptor):
        platform, engine = build(pipeline_descriptor)
        host = hosts_of(platform, "pe1")[0]

        def kill_then_rescale():
            platform.crash_host(host)
            engine.rescale("pe1", 1)

        platform.env.schedule_at(2.0, kill_then_rescale)
        platform.run()
        # One of the two replicas is dead; scaling to 1 must keep the
        # alive one active and instead deactivate the dead one.
        members = platform.group("pe1").members
        assert any(m.alive and m.active for m in members)

    def test_remove_last_cover_refused(self, pipeline_descriptor):
        platform, engine = build(pipeline_descriptor)
        first, second = hosts_of(platform, "pe1")
        platform.crash_host(second)
        ok, reason = engine.feasible(
            MigrationAction(kind="remove", pe="pe1", src=first)
        )
        assert not ok and "last cover" in reason


class TestDrain:
    def test_drain_evacuates_and_reclaims(self, pipeline_descriptor):
        platform, engine = build(pipeline_descriptor)
        victim = hosts_of(platform, "pe1")[0]
        platform.env.schedule_at(2.0, lambda: engine.drain(victim))
        platform.run()
        types = event_types(platform)
        assert "host.cordon" in types
        assert "host.drain" in types
        assert "host.reclaim" in types
        assert platform.residents(victim) == ()
        assert victim in engine.cordoned

    def test_add_replica_warms_then_joins(self, pipeline_descriptor):
        platform, engine = build(pipeline_descriptor)
        dst = free_host(platform, "pe1")
        platform.env.schedule_at(
            2.0, lambda: engine.add_replica("pe1", dst)
        )
        platform.run()
        assert engine.completed == 1
        assert dst in hosts_of(platform, "pe1")
        assert len(platform.group("pe1").members) == 3


class TestByteIdentity:
    @pytest.mark.parametrize("scenario", ["move", "abort", "drain"])
    def test_batched_matches_tuple_granular(
        self, pipeline_descriptor, scenario
    ):
        logs = []
        for batching in (False, True):
            platform, engine = build(
                pipeline_descriptor, batching=batching
            )
            src = hosts_of(platform, "pe1")[0]
            dst = free_host(platform, "pe1")
            if scenario == "move":
                platform.env.schedule_at(
                    2.0, lambda e=engine, s=src, d=dst: e.migrate(
                        "pe1", s, d
                    )
                )
            elif scenario == "abort":
                platform.env.schedule_at(
                    2.0, lambda e=engine, s=src, d=dst: e.migrate(
                        "pe1", s, d
                    )
                )
                platform.env.schedule_at(
                    2.5, lambda p=platform, d=dst: p.crash_host(d)
                )
                platform.env.schedule_at(
                    4.0, lambda p=platform, d=dst: p.recover_host(d)
                )
            else:
                platform.env.schedule_at(
                    2.0, lambda e=engine, s=src: e.drain(s)
                )
            platform.run()
            logs.append(platform.telemetry.events.to_jsonl())
        assert logs[0] == logs[1]
