"""Tests for the Sec. 3 service model (contracts, pricing, provisioning)."""

from __future__ import annotations

import math

import pytest

from repro.core import Host, static_replication
from repro.dsps import two_level_trace
from repro.errors import InfeasibleError, ModelError
from repro.fleet.store import StrategyStore
from repro.laar import ExtendedApplication, MiddlewareConfig
from repro.service import (
    SLA,
    Contract,
    PricingPlan,
    Provisioner,
)

GIGA = 1.0e9


@pytest.fixture
def provider_hosts():
    return [
        Host("h0", cores=2, cycles_per_core=0.5 * GIGA),
        Host("h1", cores=2, cycles_per_core=0.5 * GIGA),
    ]


@pytest.fixture
def pipeline_contract(pipeline_descriptor):
    return Contract(
        descriptor=pipeline_descriptor,
        sla=SLA(ic_target=0.5, max_latency=1.5),
        pricing=PricingPlan(base_fee=10.0, cpu_rate=0.01,
                            billing_period=3600.0),
        name="pipeline-deal",
    )


class TestValidation:
    def test_sla_bounds(self):
        with pytest.raises(ModelError):
            SLA(ic_target=1.2)
        with pytest.raises(ModelError):
            SLA(ic_target=0.5, max_latency=0.0)
        with pytest.raises(ModelError):
            SLA(ic_target=0.5, latency_percentile=0.0)

    def test_pricing_bounds(self):
        with pytest.raises(ModelError):
            PricingPlan(base_fee=-1.0)
        with pytest.raises(ModelError):
            PricingPlan(billing_period=0.0)

    def test_provider_needs_hosts(self):
        with pytest.raises(ModelError):
            Provisioner(hosts=[])


class TestPricing:
    def test_fare_tracks_cpu_time(self, pipeline_deployment):
        plan = PricingPlan(base_fee=5.0, cpu_rate=0.02,
                           billing_period=1000.0)
        strategy = static_replication(pipeline_deployment)
        # SR: 1.92e9 cycles/s expected; hosts at 1e9 cycles/core-s ->
        # 1.92 core-s per second -> 1920 core-s per period.
        assert plan.fare(strategy) == pytest.approx(5.0 + 0.02 * 1920.0)

    def test_longer_period_costs_more(self, pipeline_deployment):
        strategy = static_replication(pipeline_deployment)
        short = PricingPlan(cpu_rate=1.0, billing_period=100.0)
        long = PricingPlan(cpu_rate=1.0, billing_period=200.0)
        assert long.fare(strategy) == pytest.approx(
            2.0 * short.fare(strategy)
        )


class TestProvisioning:
    def test_provision_meets_sla(
        self, pipeline_contract, provider_hosts
    ):
        provisioned = Provisioner(provider_hosts).provision(
            pipeline_contract
        )
        assert provisioned.guaranteed_ic >= 0.5 - 1e-9
        assert provisioned.fare > pipeline_contract.pricing.base_fee

    def test_laar_fare_below_static_fare(
        self, pipeline_contract, provider_hosts
    ):
        provisioned = Provisioner(provider_hosts).provision(
            pipeline_contract
        )
        sr_fare = pipeline_contract.pricing.fare(
            static_replication(provisioned.deployment)
        )
        assert provisioned.fare < sr_fare

    def test_stricter_sla_costs_more(
        self, pipeline_descriptor, provider_hosts
    ):
        pricing = PricingPlan(cpu_rate=1.0)
        fares = []
        for target in (0.4, 0.6):
            contract = Contract(
                descriptor=pipeline_descriptor,
                sla=SLA(ic_target=target),
                pricing=pricing,
            )
            fares.append(Provisioner(provider_hosts).quote(contract))
        assert fares[0] <= fares[1]

    def test_impossible_sla_is_refused(
        self, pipeline_descriptor, provider_hosts
    ):
        contract = Contract(
            descriptor=pipeline_descriptor,
            sla=SLA(ic_target=1.0),  # High overloads at full replication
            pricing=PricingPlan(),
        )
        with pytest.raises(InfeasibleError, match="no strategy"):
            Provisioner(provider_hosts).provision(contract)


class TestProvisionerEdgeCases:
    def test_infeasible_error_names_contract_target_and_outcome(
        self, pipeline_descriptor, provider_hosts
    ):
        contract = Contract(
            descriptor=pipeline_descriptor,
            sla=SLA(ic_target=1.0),
            pricing=PricingPlan(),
            name="doomed-deal",
        )
        with pytest.raises(InfeasibleError) as excinfo:
            Provisioner(provider_hosts).provision(contract)
        message = str(excinfo.value)
        assert "doomed-deal" in message  # which contract
        assert "IC >= 1.0" in message  # which clause failed
        assert "NUL" in message  # proven infeasible, not a timeout

    def test_zero_and_negative_billing_periods_rejected(self):
        """Degenerate pricing plans fail validation instead of dividing
        by zero inside fare computation."""
        with pytest.raises(ModelError, match="billing period"):
            PricingPlan(billing_period=0.0)
        with pytest.raises(ModelError, match="billing period"):
            PricingPlan(billing_period=-1.0)

    def test_tiny_billing_period_yields_finite_fare(
        self, pipeline_deployment
    ):
        plan = PricingPlan(cpu_rate=1.0, billing_period=1e-9)
        fare = plan.fare(static_replication(pipeline_deployment))
        assert math.isfinite(fare)
        assert fare >= 0.0


class TestStrategyStoreIntegration:
    def test_second_provision_hits_the_store(
        self, pipeline_contract, provider_hosts
    ):
        store = StrategyStore()
        provisioner = Provisioner(
            provider_hosts, search_time_limit=None, store=store
        )
        first = provisioner.provision(pipeline_contract)
        assert not first.from_cache
        second = provisioner.provision(pipeline_contract)
        assert second.from_cache
        assert store.hits == 1 and store.misses == 1
        # The cached strategy activates identically and prices the same.
        assert second.strategy.to_dict() == first.strategy.to_dict()
        assert second.fare == first.fare
        assert second.search.best_cost == first.search.best_cost
        assert second.search.best_ic == first.search.best_ic

    def test_store_shared_across_provisioners(
        self, pipeline_contract, provider_hosts
    ):
        store = StrategyStore()
        Provisioner(
            provider_hosts, search_time_limit=None, store=store
        ).provision(pipeline_contract)
        other = Provisioner(
            provider_hosts, search_time_limit=None, store=store
        )
        assert other.provision(pipeline_contract).from_cache

    def test_different_search_budget_misses(
        self, pipeline_contract, provider_hosts
    ):
        """A record is only reused by an identically-configured search."""
        store = StrategyStore()
        Provisioner(
            provider_hosts, search_time_limit=None, store=store
        ).provision(pipeline_contract)
        limited = Provisioner(
            provider_hosts,
            search_time_limit=None,
            node_limit=10_000,
            store=store,
        )
        assert not limited.provision(pipeline_contract).from_cache
        assert len(store) == 2

    def test_infeasible_result_cached_and_refused_again(
        self, pipeline_descriptor, provider_hosts
    ):
        store = StrategyStore()
        provisioner = Provisioner(
            provider_hosts, search_time_limit=None, store=store
        )
        contract = Contract(
            descriptor=pipeline_descriptor,
            sla=SLA(ic_target=1.0),
            pricing=PricingPlan(),
        )
        with pytest.raises(InfeasibleError):
            provisioner.provision(contract)
        assert len(store) == 1
        with pytest.raises(InfeasibleError, match="NUL"):
            provisioner.provision(contract)
        assert store.hits == 1  # the second refusal ran no search

    def test_warm_start_reaches_the_search(
        self, pipeline_contract, provider_hosts
    ):
        provisioner = Provisioner(provider_hosts, search_time_limit=None)
        cold = provisioner.provision(pipeline_contract)
        warm = provisioner.provision(
            pipeline_contract, warm_start=cold.strategy
        )
        assert warm.strategy.to_dict() == cold.strategy.to_dict()
        assert warm.search.best_cost == cold.search.best_cost
        assert (
            warm.search.stats.nodes_expanded
            <= cold.search.stats.nodes_expanded
        )


class TestSLAReport:
    def run_provisioned(self, provisioned, duration=60.0):
        trace = {"src": two_level_trace(4.0, 8.0, duration=duration)}
        app = ExtendedApplication(
            provisioned.deployment,
            provisioned.strategy,
            trace,
            middleware_config=MiddlewareConfig(monitor_interval=1.0),
        )
        return app.run()

    def test_compliant_run(self, pipeline_contract, provider_hosts):
        provisioned = Provisioner(provider_hosts).provision(
            pipeline_contract
        )
        metrics = self.run_provisioned(provisioned)
        report = provisioned.sla_report(metrics)
        assert report.ic_clause_met
        assert report.latency_clause_met
        assert report.compliant
        assert report.observed_latency is not None
        assert report.observed_latency <= 1.5

    def test_latency_violation_detected(
        self, pipeline_descriptor, provider_hosts
    ):
        """An SLA with an absurdly tight latency bound is violated by the
        same (otherwise healthy) run."""
        contract = Contract(
            descriptor=pipeline_descriptor,
            sla=SLA(ic_target=0.5, max_latency=0.01),
            pricing=PricingPlan(),
        )
        provisioned = Provisioner(provider_hosts).provision(contract)
        metrics = self.run_provisioned(provisioned)
        report = provisioned.sla_report(metrics)
        assert report.ic_clause_met
        assert not report.latency_clause_met
        assert not report.compliant

    def test_no_latency_clause_always_met(
        self, pipeline_descriptor, provider_hosts
    ):
        contract = Contract(
            descriptor=pipeline_descriptor,
            sla=SLA(ic_target=0.5),
            pricing=PricingPlan(),
        )
        provisioned = Provisioner(provider_hosts).provision(contract)
        metrics = self.run_provisioned(provisioned, duration=30.0)
        report = provisioned.sla_report(metrics)
        assert report.observed_latency is None
        assert report.latency_clause_met


class TestParallelSearchProvisioning:
    def test_jobs_kept_out_of_signature_by_default(self, provider_hosts):
        serial = Provisioner(provider_hosts, search_time_limit=None)
        assert ":jobs=" not in serial._search_signature()

    def test_jobs_tag_store_signature(self, provider_hosts):
        parallel = Provisioner(
            provider_hosts, search_time_limit=None, search_jobs=2
        )
        assert ":jobs=2" in parallel._search_signature()

    def test_parallel_provision_matches_serial(
        self, pipeline_contract, provider_hosts
    ):
        from repro.core.optimizer.parallel import shutdown

        serial = Provisioner(
            provider_hosts, search_time_limit=None
        ).provision(pipeline_contract)
        try:
            vectored = Provisioner(
                provider_hosts, search_time_limit=None, search_jobs=1
            ).provision(pipeline_contract)
        finally:
            shutdown()
        assert vectored.search.best_cost == serial.search.best_cost
        assert vectored.search.best_ic == serial.search.best_ic
        assert vectored.fare == serial.fare

    def test_serial_and_parallel_records_do_not_collide(
        self, pipeline_contract, provider_hosts
    ):
        from repro.core.optimizer.parallel import shutdown

        store = StrategyStore()
        Provisioner(
            provider_hosts, search_time_limit=None, store=store
        ).provision(pipeline_contract)
        try:
            parallel = Provisioner(
                provider_hosts,
                search_time_limit=None,
                store=store,
                search_jobs=1,
            )
            assert not parallel.provision(pipeline_contract).from_cache
        finally:
            shutdown()
        assert len(store) == 2
