"""Property test: the fast FT-Search core is behaviour-identical to the
reference implementation.

The optimised core (:class:`repro.core.optimizer.ftsearch.FTSearch`)
replaces the reference's dict lookups with flat integer-indexed arrays
and its recursion with an iterative loop, but it must remain an exact
re-expression of the same search: identical outcomes, identical best
cost/IC (bit-for-bit — the float operation order is preserved), and
identical node / value / prune counters, so the Fig. 4-6 statistics are
unchanged. This module checks that over a corpus of seeded random
instances, including runs with each pruning rule disabled.
"""

from __future__ import annotations

import random

import pytest

from repro.core.optimizer import (
    FTSearch,
    FTSearchConfig,
    OptimizationProblem,
    PruneRule,
    ReferenceFTSearch,
)
from tests.support import random_deployment, random_descriptor

#: Seeds 0..N-1 drive instance generation; every seed is its own test id
#: so a divergence names the instance that produced it.
N_INSTANCES = 50


def _problem(seed: int) -> OptimizationProblem:
    rng = random.Random(seed)
    descriptor = random_descriptor(
        rng,
        n_pes=rng.randint(3, 5),
        n_configs=rng.choice((2, 2, 3)),
        max_extra_edges=3,
    )
    deployment = random_deployment(
        rng, descriptor, n_hosts=rng.randint(2, 3),
        headroom=rng.uniform(0.9, 1.4),
    )
    return OptimizationProblem(
        deployment, ic_target=rng.choice((0.3, 0.5, 0.6, 0.7, 0.9))
    )


def _activation_matrix(strategy):
    if strategy is None:
        return None
    n_configs = len(strategy.deployment.descriptor.configuration_space)
    return tuple(
        tuple(sorted(strategy.active_map(c).items()))
        for c in range(n_configs)
    )


def assert_equivalent(problem: OptimizationProblem, config: FTSearchConfig):
    fast = FTSearch(problem, config).run()
    ref = ReferenceFTSearch(problem, config).run()

    assert fast.outcome is ref.outcome
    # Bit-for-bit: the fast core preserves the reference's float
    # operation order, so == (not approx) is the contract.
    assert fast.best_cost == ref.best_cost
    assert fast.best_ic == ref.best_ic
    assert fast.first_solution_cost == ref.first_solution_cost
    assert _activation_matrix(fast.strategy) == _activation_matrix(
        ref.strategy
    )

    assert fast.stats.nodes_expanded == ref.stats.nodes_expanded
    assert fast.stats.values_tried == ref.stats.values_tried
    assert fast.stats.solutions_found == ref.stats.solutions_found
    assert fast.stats.depth == ref.stats.depth
    for rule in PruneRule:
        assert fast.stats.prune_counts[rule] == ref.stats.prune_counts[rule]
        assert (
            fast.stats.prune_height_sums[rule]
            == ref.stats.prune_height_sums[rule]
        )


@pytest.mark.parametrize("seed", range(N_INSTANCES))
def test_equivalent_on_random_instances(seed):
    assert_equivalent(_problem(seed), FTSearchConfig(time_limit=None))


@pytest.mark.parametrize("rule", list(PruneRule))
@pytest.mark.parametrize("seed", range(0, N_INSTANCES, 7))
def test_equivalent_with_rule_disabled(seed, rule):
    config = FTSearchConfig(
        time_limit=None, disabled_rules=frozenset({rule})
    )
    assert_equivalent(_problem(seed), config)


@pytest.mark.parametrize("seed", range(0, N_INSTANCES, 11))
def test_equivalent_with_all_rules_disabled(seed):
    config = FTSearchConfig(
        time_limit=None, disabled_rules=frozenset(PruneRule)
    )
    assert_equivalent(_problem(seed), config)


@pytest.mark.parametrize("seed", range(0, N_INSTANCES, 11))
def test_equivalent_in_penalty_mode(seed):
    config = FTSearchConfig(time_limit=None, penalty_weight=1.0e8)
    assert_equivalent(_problem(seed), config)


@pytest.mark.parametrize("seed", range(0, N_INSTANCES, 11))
def test_equivalent_with_seed_incumbent(seed):
    config = FTSearchConfig(time_limit=None, seed_incumbent=True)
    assert_equivalent(_problem(seed), config)


@pytest.mark.parametrize("seed", range(0, N_INSTANCES, 11))
def test_equivalent_without_hungry_order(seed):
    config = FTSearchConfig(time_limit=None, hungry_configs_first=False)
    assert_equivalent(_problem(seed), config)


@pytest.mark.parametrize("seed", range(0, N_INSTANCES, 17))
@pytest.mark.parametrize("node_limit", (1, 37, 500))
def test_equivalent_under_node_budget(seed, node_limit):
    """Truncated searches must stop at the same node with the same
    partial statistics (the anytime contract)."""
    config = FTSearchConfig(time_limit=None, node_limit=node_limit)
    assert_equivalent(_problem(seed), config)
