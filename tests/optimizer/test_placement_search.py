"""Tests for the joint placement + activation search (future work iii)."""

from __future__ import annotations

import pytest

from repro.core import (
    Host,
    OptimizationProblem,
    ReplicaId,
    cpu_constraint_violations,
    ft_search,
    internal_completeness,
    joint_optimize,
)
from repro.core.optimizer.placement_search import _apply_move, _relocations
from repro.errors import OptimizationError
from repro.placement import balanced_placement

GIGA = 1.0e9


@pytest.fixture
def roomy_hosts():
    return [
        Host("h0", cores=3, cycles_per_core=GIGA),
        Host("h1", cores=3, cycles_per_core=GIGA),
        Host("h2", cores=3, cycles_per_core=GIGA),
    ]


class TestRelocations:
    def test_moves_preserve_anti_affinity(
        self, diamond_descriptor, roomy_hosts
    ):
        deployment = balanced_placement(diamond_descriptor, roomy_hosts, 2)
        for replica, host in _relocations(deployment):
            siblings = {
                deployment.host_of(other)
                for other in deployment.replicas_of(replica.pe)
                if other != replica
            }
            assert host not in siblings
            assert host != deployment.host_of(replica)

    def test_moves_respect_core_slots(self, diamond_descriptor):
        # Two hosts exactly full: no legal relocation exists.
        hosts = [
            Host("h0", cores=4, cycles_per_core=GIGA),
            Host("h1", cores=4, cycles_per_core=GIGA),
        ]
        deployment = balanced_placement(diamond_descriptor, hosts, 2)
        assert _relocations(deployment) == []

    def test_apply_move_produces_valid_deployment(
        self, diamond_descriptor, roomy_hosts
    ):
        deployment = balanced_placement(diamond_descriptor, roomy_hosts, 2)
        moves = _relocations(deployment)
        assert moves
        replica, host = moves[0]
        moved = _apply_move(deployment, replica, host)
        assert moved.host_of(replica) == host
        # Everything else is unchanged.
        for other in deployment.replicas:
            if other != replica:
                assert moved.host_of(other) == deployment.host_of(other)


class TestJointOptimize:
    def test_never_worse_than_balanced_baseline(
        self, diamond_descriptor, roomy_hosts
    ):
        baseline = balanced_placement(diamond_descriptor, roomy_hosts, 2)
        reference = ft_search(
            OptimizationProblem(baseline, ic_target=0.5), time_limit=5.0
        )
        result = joint_optimize(
            diamond_descriptor,
            roomy_hosts,
            ic_target=0.5,
            search_time_limit=2.0,
            max_rounds=2,
        )
        assert result.cost <= reference.best_cost * (1 + 1e-9)
        assert result.improvement >= -1e-9
        assert result.evaluated_placements >= 1

    def test_returned_pair_is_consistent(
        self, diamond_descriptor, roomy_hosts
    ):
        result = joint_optimize(
            diamond_descriptor,
            roomy_hosts,
            ic_target=0.5,
            search_time_limit=2.0,
            max_rounds=1,
        )
        strategy = result.search.strategy
        assert strategy is not None
        # The strategy was built against the returned deployment.
        assert strategy.deployment is result.deployment
        assert internal_completeness(strategy) >= 0.5 - 1e-9
        assert cpu_constraint_violations(strategy) == []

    def test_finds_improvement_over_bad_initial_placement(
        self, diamond_descriptor, roomy_hosts
    ):
        """Start from a deliberately skewed placement: the heavy PEs all
        share host h0. The local search should relocate something."""
        graph_pes = diamond_descriptor.graph.pes
        assignment = {}
        hosts_cycle = ["h0", "h1", "h2"]
        for i, pe in enumerate(graph_pes):
            assignment[ReplicaId(pe, 0)] = "h0" if i < 3 else "h1"
            assignment[ReplicaId(pe, 1)] = "h2" if i < 3 else "h0"
        from repro.core import ReplicatedDeployment

        skewed = ReplicatedDeployment(
            diamond_descriptor, roomy_hosts, assignment, 2
        )
        del hosts_cycle
        result = joint_optimize(
            diamond_descriptor,
            roomy_hosts,
            ic_target=0.5,
            search_time_limit=2.0,
            max_rounds=3,
            initial=skewed,
        )
        # At minimum the search terminates with a feasible pair; on this
        # skewed start it should also evaluate relocations.
        assert result.evaluated_placements > 1

    def test_infeasible_initial_raises(self, diamond_descriptor):
        hosts = [
            Host("h0", cores=4, cycles_per_core=0.001 * GIGA),
            Host("h1", cores=4, cycles_per_core=0.001 * GIGA),
        ]
        with pytest.raises(OptimizationError, match="no activation"):
            joint_optimize(
                diamond_descriptor,
                hosts,
                ic_target=0.0,
                search_time_limit=1.0,
            )

    def test_bad_rounds_rejected(self, diamond_descriptor, roomy_hosts):
        with pytest.raises(OptimizationError):
            joint_optimize(
                diamond_descriptor, roomy_hosts, ic_target=0.5, max_rounds=0
            )
