"""Tests for FT-Search: correctness against brute force, pruning, outcomes."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FTSearchConfig,
    FTSearch,
    Host,
    OptimizationProblem,
    PruneRule,
    RateTable,
    ReplicaId,
    ReplicatedDeployment,
    SearchOutcome,
    cpu_constraint_violations,
    ft_search,
    internal_completeness,
    strategy_cost,
)
from repro.errors import OptimizationError
from tests.support import (
    enumerate_strategies,
    random_deployment,
    random_descriptor,
)

GIGA = 1.0e9


def brute_force_optimum(problem):
    """Exhaustively evaluate all strategies; return (cost, ic) of the best."""
    table = RateTable(problem.deployment.descriptor)
    best = None
    for strategy in enumerate_strategies(problem.deployment):
        evaluation = problem.evaluate(strategy, table)
        if not evaluation.feasible:
            continue
        if best is None or evaluation.cost < best[0] - 1e-9:
            best = (evaluation.cost, evaluation.ic)
    return best


@pytest.fixture
def tight_problem(pipeline_descriptor):
    hosts = [Host("h0", cores=1, cycles_per_core=GIGA),
             Host("h1", cores=1, cycles_per_core=GIGA)]
    assignment = {
        ReplicaId("pe1", 0): "h0",
        ReplicaId("pe1", 1): "h1",
        ReplicaId("pe2", 0): "h1",
        ReplicaId("pe2", 1): "h0",
    }
    deployment = ReplicatedDeployment(
        pipeline_descriptor, hosts, assignment, 2
    )
    return OptimizationProblem(deployment, ic_target=0.5)


class TestPipelineSearch:
    def test_finds_known_optimum(self, pipeline_deployment):
        """On the roomy two-core deployment the hand-computed optimum for
        an IC target of 0.5 keeps pe1 fully replicated everywhere and pe2
        single everywhere: cost 1.44e9, IC exactly 0.5."""
        problem = OptimizationProblem(pipeline_deployment, ic_target=0.5)
        result = ft_search(problem, time_limit=30.0)
        assert result.outcome is SearchOutcome.OPTIMAL
        assert result.best_cost == pytest.approx(1.44 * GIGA)
        assert result.best_ic == pytest.approx(0.5)

    def test_solution_is_feasible(self, tight_problem):
        result = ft_search(tight_problem, time_limit=30.0)
        assert result.outcome is SearchOutcome.OPTIMAL
        evaluation = tight_problem.evaluate(result.strategy)
        assert evaluation.feasible
        assert evaluation.cost == pytest.approx(result.best_cost)
        assert evaluation.ic == pytest.approx(result.best_ic)

    def test_incremental_bookkeeping_matches_model(self, tight_problem):
        """The search's internal IC/cost accounting must agree with the
        reference implementations in repro.core.ic / repro.core.cost."""
        result = ft_search(tight_problem, time_limit=30.0)
        assert internal_completeness(result.strategy) == pytest.approx(
            result.best_ic
        )
        assert strategy_cost(result.strategy) == pytest.approx(
            result.best_cost
        )
        assert cpu_constraint_violations(result.strategy) == []

    def test_ic_one_requires_full_replication(self, pipeline_deployment):
        problem = OptimizationProblem(pipeline_deployment, ic_target=1.0)
        result = ft_search(problem, time_limit=30.0)
        assert result.outcome is SearchOutcome.OPTIMAL
        for pe in ("pe1", "pe2"):
            for c in range(2):
                assert result.strategy.fully_replicated(pe, c)

    def test_infeasible_when_capacity_cannot_hold_one_replica(
        self, pipeline_descriptor
    ):
        hosts = [Host("h0", cores=1, cycles_per_core=0.1 * GIGA),
                 Host("h1", cores=1, cycles_per_core=0.1 * GIGA)]
        assignment = {
            ReplicaId("pe1", 0): "h0",
            ReplicaId("pe1", 1): "h1",
            ReplicaId("pe2", 0): "h1",
            ReplicaId("pe2", 1): "h0",
        }
        deployment = ReplicatedDeployment(
            pipeline_descriptor, hosts, assignment, 2
        )
        problem = OptimizationProblem(deployment, ic_target=0.0)
        result = ft_search(problem, time_limit=30.0)
        assert result.outcome is SearchOutcome.INFEASIBLE
        assert result.strategy is None

    def test_infeasible_when_ic_target_unreachable(self, tight_problem):
        """The tight deployment cannot keep full replication in High, so
        an IC demand of 1.0 is provably infeasible."""
        problem = OptimizationProblem(
            tight_problem.deployment, ic_target=1.0
        )
        result = ft_search(problem, time_limit=30.0)
        assert result.outcome is SearchOutcome.INFEASIBLE

    def test_node_budget_truncates(self, tight_problem):
        result = ft_search(tight_problem, node_limit=1)
        assert result.outcome in (
            SearchOutcome.FEASIBLE,
            SearchOutcome.TIMEOUT,
        )

    def test_rejects_non_two_fold_replication(self, pipeline_descriptor):
        hosts = [Host("h0", cores=4, cycles_per_core=GIGA)]
        assignment = {
            ReplicaId("pe1", 0): "h0",
            ReplicaId("pe2", 0): "h0",
        }
        deployment = ReplicatedDeployment(
            pipeline_descriptor, hosts, assignment, replication_factor=1
        )
        problem = OptimizationProblem(deployment, ic_target=0.5)
        with pytest.raises(OptimizationError, match="k=2"):
            FTSearch(problem)

    def test_bad_config_rejected(self):
        with pytest.raises(OptimizationError):
            FTSearchConfig(time_limit=-1.0)
        with pytest.raises(OptimizationError):
            FTSearchConfig(node_limit=0)
        with pytest.raises(OptimizationError):
            FTSearchConfig(penalty_weight=-2.0)


class TestPruningStatistics:
    def test_cpu_prunes_fire_on_tight_deployment(self, tight_problem):
        result = ft_search(tight_problem, time_limit=30.0)
        assert result.stats.prune_counts[PruneRule.CPU] > 0

    def test_compl_prunes_fire_for_high_targets(self, pipeline_deployment):
        problem = OptimizationProblem(pipeline_deployment, ic_target=0.9)
        result = ft_search(problem, time_limit=30.0)
        assert result.stats.prune_counts[PruneRule.COMPLETENESS] > 0

    def test_prune_shares_sum_to_one(self, tight_problem):
        result = ft_search(tight_problem, time_limit=30.0)
        stats = result.stats
        if stats.total_prunes:
            total = sum(stats.prune_share(rule) for rule in PruneRule)
            assert total == pytest.approx(1.0)

    def test_heights_bounded_by_depth(self, tight_problem):
        result = ft_search(tight_problem, time_limit=30.0)
        stats = result.stats
        for rule in PruneRule:
            assert 0 <= stats.mean_prune_height(rule) <= stats.depth

    def test_stats_merge(self, tight_problem):
        a = ft_search(tight_problem, time_limit=30.0).stats
        b = ft_search(tight_problem, time_limit=30.0).stats
        merged = a.merge(b)
        assert merged.nodes_expanded == a.nodes_expanded + b.nodes_expanded
        for rule in PruneRule:
            assert merged.prune_counts[rule] == (
                a.prune_counts[rule] + b.prune_counts[rule]
            )


class TestAgainstBruteForce:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        ic_target=st.sampled_from([0.0, 0.3, 0.5, 0.7, 0.9, 1.0]),
    )
    def test_matches_exhaustive_enumeration(self, seed, ic_target):
        """FT-Search must find exactly the brute-force optimum (or prove
        infeasibility) on random 3-PE applications."""
        rng = random.Random(seed)
        descriptor = random_descriptor(rng, n_pes=3)
        deployment = random_deployment(rng, descriptor)
        problem = OptimizationProblem(deployment, ic_target=ic_target)
        reference = brute_force_optimum(problem)
        result = ft_search(problem, time_limit=60.0)
        if reference is None:
            assert result.outcome is SearchOutcome.INFEASIBLE
        else:
            assert result.outcome is SearchOutcome.OPTIMAL
            assert result.best_cost == pytest.approx(
                reference[0], rel=1e-6
            )
            # The found strategy must itself be feasible.
            assert problem.evaluate(result.strategy).feasible

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_cost_monotone_in_ic_target(self, seed):
        """A stricter IC target can never make the optimum cheaper."""
        rng = random.Random(seed)
        descriptor = random_descriptor(rng, n_pes=3)
        deployment = random_deployment(rng, descriptor)
        costs = []
        for target in (0.2, 0.5, 0.8):
            result = ft_search(
                OptimizationProblem(deployment, ic_target=target),
                time_limit=60.0,
            )
            if result.outcome is SearchOutcome.INFEASIBLE:
                costs.append(math.inf)
            else:
                assert result.outcome is SearchOutcome.OPTIMAL
                costs.append(result.best_cost)
        assert costs == sorted(costs)


class TestPenaltyMode:
    def test_penalty_zero_ignores_ic(self, tight_problem):
        """With no penalty weight, the optimizer returns the cheapest
        CPU-feasible strategy regardless of IC."""
        result = ft_search(tight_problem, time_limit=30.0, penalty_weight=0.0)
        assert result.outcome is SearchOutcome.OPTIMAL
        # Cheapest CPU-feasible strategy: single replica everywhere.
        for pe in ("pe1", "pe2"):
            for c in range(2):
                assert result.strategy.active_count(pe, c) == 1

    def test_huge_penalty_recovers_constraint_solution(self, tight_problem):
        constrained = ft_search(tight_problem, time_limit=30.0)
        penalized = ft_search(
            tight_problem, time_limit=30.0, penalty_weight=1e15
        )
        assert penalized.outcome is SearchOutcome.OPTIMAL
        assert penalized.best_ic >= constrained.best_ic - 1e-9
        assert penalized.best_cost == pytest.approx(
            constrained.best_cost, rel=1e-6
        )

    def test_penalty_trades_ic_for_cost(self, tight_problem):
        cheap = ft_search(tight_problem, time_limit=30.0, penalty_weight=0.0)
        strict = ft_search(
            tight_problem, time_limit=30.0, penalty_weight=1e15
        )
        assert cheap.best_cost <= strict.best_cost + 1e-6
        assert cheap.best_ic <= strict.best_ic + 1e-9
