"""Tests for the optimization problem statement (Eq. 9-12)."""

from __future__ import annotations

import pytest

from repro.core import (
    ActivationStrategy,
    OptimizationProblem,
    ReplicaId,
    internal_completeness,
    strategy_cost,
)
from repro.errors import OptimizationError


class TestValidation:
    def test_rejects_bad_ic_target(self, pipeline_deployment):
        with pytest.raises(OptimizationError):
            OptimizationProblem(pipeline_deployment, ic_target=1.5)

    def test_rejects_bad_billing_period(self, pipeline_deployment):
        with pytest.raises(OptimizationError):
            OptimizationProblem(
                pipeline_deployment, ic_target=0.5, billing_period=0.0
            )


class TestEvaluate:
    def test_all_active_on_roomy_deployment(self, pipeline_deployment):
        problem = OptimizationProblem(pipeline_deployment, ic_target=0.5)
        strategy = ActivationStrategy.all_active(pipeline_deployment)
        evaluation = problem.evaluate(strategy)
        assert evaluation.feasible
        assert evaluation.ic == pytest.approx(1.0)
        assert evaluation.cost == pytest.approx(strategy_cost(strategy))

    def test_ic_infeasibility_detected(self, pipeline_deployment):
        problem = OptimizationProblem(pipeline_deployment, ic_target=0.9)
        strategy = ActivationStrategy.all_active(pipeline_deployment).replace(
            {
                (ReplicaId("pe1", 1), 0): False,
                (ReplicaId("pe1", 1), 1): False,
            }
        )
        evaluation = problem.evaluate(strategy)
        assert evaluation.cpu_feasible
        assert not evaluation.ic_feasible
        assert evaluation.ic == pytest.approx(
            internal_completeness(strategy)
        )

    def test_rejects_strategy_from_other_deployment(
        self, pipeline_deployment, diamond_deployment
    ):
        problem = OptimizationProblem(pipeline_deployment, ic_target=0.5)
        foreign = ActivationStrategy.all_active(diamond_deployment)
        with pytest.raises(OptimizationError, match="different deployment"):
            problem.evaluate(foreign)

    def test_billing_period_scales_cost_only(self, pipeline_deployment):
        short = OptimizationProblem(
            pipeline_deployment, ic_target=0.5, billing_period=1.0
        )
        long = OptimizationProblem(
            pipeline_deployment, ic_target=0.5, billing_period=300.0
        )
        strategy = ActivationStrategy.all_active(pipeline_deployment)
        eval_short = short.evaluate(strategy)
        eval_long = long.evaluate(strategy)
        assert eval_long.cost == pytest.approx(300.0 * eval_short.cost)
        assert eval_long.ic == pytest.approx(eval_short.ic)
