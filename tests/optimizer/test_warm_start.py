"""Warm-started FT-Search: correctness and acceleration guarantees.

The control plane's re-planner re-runs FT-Search with the tenant's
current strategy installed as the initial incumbent (``warm_start``).
The contract, asserted here over the equivalence-suite instances for
BOTH engines:

* a warm-started search returns the *same* optimal cost and strategy as
  a cold search (the incumbent only tightens the COST bound, it never
  changes what is optimal);
* it expands at most as many nodes as the cold search;
* an incumbent that is infeasible for the new problem (IC below target,
  or hosts over capacity) is ignored rather than trusted — trusting it
  would make the bound unsound.
"""

from __future__ import annotations

import random

import pytest

from repro.core.optimizer import (
    FTSearch,
    FTSearchConfig,
    OptimizationProblem,
    ReferenceFTSearch,
    SearchOutcome,
    ft_search,
)
from repro.core.strategy import ActivationStrategy
from tests.optimizer.test_ftsearch_equivalence import (
    _activation_matrix,
    _problem,
    assert_equivalent,
)
from tests.support import random_deployment, random_descriptor

SEEDS = range(0, 50, 3)


def _cold(problem):
    return FTSearch(problem, FTSearchConfig(time_limit=None)).run()


class TestWarmEqualsCold:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_warm_from_own_optimum_fast(self, seed):
        problem = _problem(seed)
        cold = _cold(problem)
        if cold.strategy is None:
            pytest.skip("instance infeasible")
        warm = FTSearch(
            problem,
            FTSearchConfig(time_limit=None, warm_start=cold.strategy),
        ).run()
        assert warm.outcome is SearchOutcome.OPTIMAL
        assert warm.best_cost == cold.best_cost
        assert warm.best_ic == cold.best_ic
        assert _activation_matrix(warm.strategy) == _activation_matrix(
            cold.strategy
        )
        assert warm.stats.nodes_expanded <= cold.stats.nodes_expanded

    @pytest.mark.parametrize("seed", SEEDS)
    def test_warm_from_own_optimum_reference(self, seed):
        problem = _problem(seed)
        cold = ReferenceFTSearch(
            problem, FTSearchConfig(time_limit=None)
        ).run()
        if cold.strategy is None:
            pytest.skip("instance infeasible")
        warm = ReferenceFTSearch(
            problem,
            FTSearchConfig(time_limit=None, warm_start=cold.strategy),
        ).run()
        assert warm.outcome is SearchOutcome.OPTIMAL
        assert warm.best_cost == cold.best_cost
        assert _activation_matrix(warm.strategy) == _activation_matrix(
            cold.strategy
        )
        assert warm.stats.nodes_expanded <= cold.stats.nodes_expanded

    @pytest.mark.parametrize("seed", SEEDS)
    def test_warm_from_all_active_matches_cold(self, seed):
        """A suboptimal (maximal-replication) incumbent still converges
        to the cold optimum, strategy included."""
        problem = _problem(seed)
        cold = _cold(problem)
        warm_seed = ActivationStrategy.all_active(problem.deployment)
        warm = FTSearch(
            problem,
            FTSearchConfig(time_limit=None, warm_start=warm_seed),
        ).run()
        assert warm.outcome is cold.outcome
        assert warm.best_cost == cold.best_cost
        assert _activation_matrix(warm.strategy) == _activation_matrix(
            cold.strategy
        )
        assert warm.stats.nodes_expanded <= cold.stats.nodes_expanded


class TestEngineEquivalenceWarm:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_engines_bit_identical_with_warm_start(self, seed):
        """Both engines, warm-started with the same incumbent, stay
        bit-identical in every counter (the PR 1 oracle contract)."""
        problem = _problem(seed)
        cold = _cold(problem)
        if cold.strategy is None:
            pytest.skip("instance infeasible")
        config = FTSearchConfig(time_limit=None, warm_start=cold.strategy)
        assert_equivalent(problem, config)

    @pytest.mark.parametrize("seed", range(0, 50, 11))
    def test_engines_bit_identical_warm_plus_greedy(self, seed):
        problem = _problem(seed)
        cold = _cold(problem)
        if cold.strategy is None:
            pytest.skip("instance infeasible")
        config = FTSearchConfig(
            time_limit=None,
            warm_start=cold.strategy,
            seed_incumbent=True,
        )
        assert_equivalent(problem, config)

    @pytest.mark.parametrize("seed", range(0, 50, 11))
    def test_engines_bit_identical_warm_penalty_mode(self, seed):
        problem = _problem(seed)
        cold = FTSearch(
            problem,
            FTSearchConfig(time_limit=None, penalty_weight=1.0e8),
        ).run()
        if cold.strategy is None:
            pytest.skip("no solution recorded")
        config = FTSearchConfig(
            time_limit=None, penalty_weight=1.0e8, warm_start=cold.strategy
        )
        assert_equivalent(problem, config)


class TestUnusableWarmStartsIgnored:
    def _feasible_problem(self):
        for seed in range(50):
            problem = _problem(seed)
            cold = _cold(problem)
            if cold.strategy is not None:
                return problem, cold
        raise AssertionError("no feasible instance in suite")

    def test_foreign_shape_ignored(self):
        """A strategy from a structurally different application must not
        poison the search — it is silently skipped."""
        problem, cold = self._feasible_problem()
        rng = random.Random(987)
        other_desc = random_descriptor(rng, n_pes=7, n_configs=2)
        other_dep = random_deployment(rng, other_desc, n_hosts=3)
        foreign = ActivationStrategy.all_active(other_dep)
        warm = FTSearch(
            problem, FTSearchConfig(time_limit=None, warm_start=foreign)
        ).run()
        assert warm.best_cost == cold.best_cost
        assert _activation_matrix(warm.strategy) == _activation_matrix(
            cold.strategy
        )

    def test_infeasible_ic_incumbent_ignored(self):
        """An incumbent below the IC target would make the bound unsound;
        the search must behave exactly like a cold run instead."""
        for seed in range(50):
            problem = _problem(seed)
            cold = _cold(problem)
            if cold.strategy is None or cold.best_ic >= 1.0:
                continue
            # Raise the target above what the old strategy guarantees.
            harder = OptimizationProblem(
                problem.deployment,
                ic_target=min(1.0, cold.best_ic + 0.05),
            )
            cold_hard = _cold(harder)
            warm_hard = FTSearch(
                harder,
                FTSearchConfig(time_limit=None, warm_start=cold.strategy),
            ).run()
            assert warm_hard.outcome is cold_hard.outcome
            assert warm_hard.best_cost == cold_hard.best_cost
            assert warm_hard.stats.nodes_expanded == (
                cold_hard.stats.nodes_expanded
            )
            return
        pytest.skip("no feasible instance in suite")

    def test_wrapper_threads_warm_start(self):
        problem, cold = self._feasible_problem()
        result = ft_search(
            problem, time_limit=None, warm_start=cold.strategy
        )
        assert result.best_cost == cold.best_cost

    def test_config_rejects_non_strategy(self):
        from repro.errors import OptimizationError

        with pytest.raises(OptimizationError):
            FTSearchConfig(warm_start="not a strategy")
