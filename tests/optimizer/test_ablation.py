"""Ablation correctness: pruning rules must never change the answer.

Each FT-Search pruning rule (CPU, COMPL, COST, DOM) is an accelerator:
disabling any subset of rules may only slow the search down, never change
the optimal cost, the feasibility verdict, or the validity of the
returned strategy. These tests drive that property exhaustively on the
pipeline fixture and statistically on random applications.
"""

from __future__ import annotations

import itertools
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FTSearchConfig,
    FTSearch,
    OptimizationProblem,
    PruneRule,
    SearchOutcome,
    ft_search,
)
from repro.errors import OptimizationError
from tests.support import random_deployment, random_descriptor

ALL_RULES = frozenset(PruneRule)


def optimum_with(problem, disabled):
    result = ft_search(problem, time_limit=60.0, disabled_rules=disabled)
    assert result.outcome.is_proof, "ablation tests need exhausted searches"
    if result.outcome is SearchOutcome.INFEASIBLE:
        return math.inf
    return result.best_cost


class TestConfig:
    def test_rejects_non_rule_entries(self):
        with pytest.raises(OptimizationError, match="PruneRule"):
            FTSearchConfig(disabled_rules=frozenset({"CPU"}))

    def test_accepts_rule_entries(self):
        config = FTSearchConfig(disabled_rules=frozenset({PruneRule.COST}))
        assert PruneRule.COST in config.disabled_rules


class TestExhaustiveSubsets:
    def test_all_subsets_agree_on_pipeline(self, pipeline_deployment):
        problem = OptimizationProblem(pipeline_deployment, ic_target=0.5)
        reference = optimum_with(problem, frozenset())
        for size in range(1, len(ALL_RULES) + 1):
            for subset in itertools.combinations(ALL_RULES, size):
                cost = optimum_with(problem, frozenset(subset))
                assert cost == pytest.approx(reference, rel=1e-9), (
                    f"disabling {sorted(r.value for r in subset)} changed"
                    f" the optimum: {cost} vs {reference}"
                )

    def test_all_rules_disabled_is_plain_enumeration(
        self, pipeline_deployment
    ):
        """With everything off the search is brute force with leaf checks;
        it visits strictly more nodes but finds the same answer."""
        problem = OptimizationProblem(pipeline_deployment, ic_target=0.5)
        fast = ft_search(problem, time_limit=60.0)
        slow = ft_search(problem, time_limit=60.0, disabled_rules=ALL_RULES)
        assert slow.outcome is SearchOutcome.OPTIMAL
        assert slow.best_cost == pytest.approx(fast.best_cost)
        assert slow.stats.values_tried >= fast.stats.values_tried
        assert slow.stats.total_prunes == 0

    def test_infeasibility_verdict_is_rule_independent(
        self, pipeline_deployment
    ):
        problem = OptimizationProblem(pipeline_deployment, ic_target=1.0)
        baseline = ft_search(problem, time_limit=60.0)
        # IC = 1 is feasible on the roomy deployment; tighten to the point
        # of infeasibility with an impossible combination instead:
        # nothing to assert if feasible - use a target beyond achievable.
        if baseline.outcome is SearchOutcome.OPTIMAL:
            return
        for rule in PruneRule:
            ablated = ft_search(
                problem, time_limit=60.0, disabled_rules=frozenset({rule})
            )
            assert ablated.outcome is baseline.outcome


class TestRandomisedAblation:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        ic_target=st.sampled_from([0.3, 0.5, 0.8]),
        rule=st.sampled_from(list(PruneRule)),
    )
    def test_single_rule_ablation_preserves_optimum(
        self, seed, ic_target, rule
    ):
        rng = random.Random(seed)
        descriptor = random_descriptor(rng, n_pes=3)
        deployment = random_deployment(rng, descriptor)
        problem = OptimizationProblem(deployment, ic_target=ic_target)
        reference = optimum_with(problem, frozenset())
        ablated = optimum_with(problem, frozenset({rule}))
        if math.isinf(reference):
            assert math.isinf(ablated)
        else:
            assert ablated == pytest.approx(reference, rel=1e-9)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_rules_only_reduce_work(self, seed):
        """Enabling all rules never tries more values than disabling all."""
        rng = random.Random(seed)
        descriptor = random_descriptor(rng, n_pes=3)
        deployment = random_deployment(rng, descriptor)
        problem = OptimizationProblem(deployment, ic_target=0.5)
        fast = ft_search(problem, time_limit=60.0)
        slow = ft_search(problem, time_limit=60.0, disabled_rules=ALL_RULES)
        assert fast.stats.values_tried <= slow.stats.values_tried


class TestAblationDiagnostics:
    def test_disabled_rule_records_no_prunes(self, pipeline_deployment):
        problem = OptimizationProblem(pipeline_deployment, ic_target=0.7)
        for rule in PruneRule:
            result = ft_search(
                problem, time_limit=60.0, disabled_rules=frozenset({rule})
            )
            assert result.stats.prune_counts[rule] == 0
