"""The parallel/vectorized FT-Search engines vs the scalar oracles.

The vector engine (``jobs=1``) and the multi-process driver
(``jobs>1``) promise *cost and strategy* equality against the scalar
cores on every instance — node counts and prune statistics are
engine-specific, and under the shared incumbent bound they additionally
vary run to run. This suite pins that contract over the equivalence
corpus, plus the shared-bound tighten-only invariant, warm-start
interaction, budget handling, and configuration validation.

Tier-1 runs sample the corpus; set ``REPRO_NIGHTLY=1`` (the scheduled
CI workflow does) to sweep every seed.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import random

import pytest

from repro.core.optimizer import (
    FTSearch,
    FTSearchConfig,
    PruneRule,
    ReferenceFTSearch,
    SearchOutcome,
    VectorFTSearch,
    ft_search,
)
from repro.core.optimizer.parallel import (
    SharedBound,
    parallel_ft_search,
    shutdown,
)
from repro.core.optimizer import OptimizationProblem
from repro.errors import OptimizationError
from tests.optimizer.test_ftsearch_equivalence import (
    N_INSTANCES,
    _activation_matrix,
    _problem,
)
from tests.support import random_deployment, random_descriptor

_NIGHTLY = bool(os.environ.get("REPRO_NIGHTLY"))

#: Corpus sampling: every seed on the nightly sweep, a spread sample on
#: tier-1 (the reference oracle is slow, and jobs>1 pays pool traffic).
VECTOR_SEEDS = range(N_INSTANCES) if _NIGHTLY else range(0, N_INSTANCES, 3)
POOL_SEEDS = range(N_INSTANCES) if _NIGHTLY else range(0, N_INSTANCES, 11)


@pytest.fixture(scope="module", autouse=True)
def _pool_teardown():
    """Tests share the persistent pool; tear it down once at the end."""
    yield
    shutdown()


def _rich_problem() -> OptimizationProblem:
    """A feasible 8-PE instance big enough to split (~1100 nodes)."""
    rng = random.Random(1)
    descriptor = random_descriptor(
        rng, n_pes=8, n_configs=2, max_extra_edges=3
    )
    deployment = random_deployment(
        rng, descriptor, n_hosts=3, headroom=1.3
    )
    return OptimizationProblem(deployment, ic_target=0.6)


def assert_same_optimum(result, oracle, problem=None):
    """Cost/strategy equality — the parallel engines' contract.

    On a bit-equal cost tie the scalar engines break the tie through
    their dynamic value ordering, whose host-load comparisons carry
    path-history float residue a block engine cannot observe, so the
    returned strategy may legitimately be a different *co-optimal*
    one. That case is accepted — but only after an independent
    warm-start replay (when ``problem`` is given) proves the returned
    strategy really achieves the oracle's exact cost and IC.
    """
    assert result.outcome is oracle.outcome
    assert result.best_cost == oracle.best_cost
    assert result.best_ic == oracle.best_ic
    ours = _activation_matrix(result.strategy)
    theirs = _activation_matrix(oracle.strategy)
    if ours == theirs:
        return
    assert ours is not None and theirs is not None
    if problem is not None:
        seeded = VectorFTSearch(
            problem,
            FTSearchConfig(time_limit=None, warm_start=result.strategy),
        )
        assert seeded.seed.cost == oracle.best_cost
        assert seeded.seed.ic == oracle.best_ic


class TestVectorEqualsReference:
    @pytest.mark.parametrize("seed", VECTOR_SEEDS)
    def test_default_config(self, seed):
        problem = _problem(seed)
        config = FTSearchConfig(time_limit=None)
        oracle = ReferenceFTSearch(problem, config).run()
        assert_same_optimum(
            VectorFTSearch(problem, config).run(), oracle, problem
        )

    @pytest.mark.parametrize("rule", list(PruneRule))
    @pytest.mark.parametrize("seed", range(0, N_INSTANCES, 17))
    def test_each_rule_disabled(self, seed, rule):
        problem = _problem(seed)
        config = FTSearchConfig(
            time_limit=None, disabled_rules=frozenset({rule})
        )
        oracle = ReferenceFTSearch(problem, config).run()
        assert_same_optimum(
            VectorFTSearch(problem, config).run(), oracle, problem
        )

    @pytest.mark.parametrize("seed", range(0, N_INSTANCES, 17))
    def test_penalty_mode(self, seed):
        problem = _problem(seed)
        config = FTSearchConfig(time_limit=None, penalty_weight=1.0e8)
        oracle = ReferenceFTSearch(problem, config).run()
        assert_same_optimum(
            VectorFTSearch(problem, config).run(), oracle, problem
        )

    @pytest.mark.parametrize("seed", range(0, N_INSTANCES, 17))
    def test_seeded_incumbent(self, seed):
        problem = _problem(seed)
        config = FTSearchConfig(time_limit=None, seed_incumbent=True)
        oracle = ReferenceFTSearch(problem, config).run()
        assert_same_optimum(
            VectorFTSearch(problem, config).run(), oracle, problem
        )

    @pytest.mark.parametrize("seed", range(0, N_INSTANCES, 17))
    def test_tiny_blocks_change_nothing(self, seed):
        """Correctness never depends on the block-row budget (node
        counts may: splitting finds incumbents in a different order)."""
        problem = _problem(seed)
        config = FTSearchConfig(time_limit=None)
        baseline = VectorFTSearch(problem, config).run()
        tiny = VectorFTSearch(problem, config, block_rows=3).run()
        assert_same_optimum(tiny, baseline, problem)


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("seed", POOL_SEEDS)
    def test_jobs4_matches_reference(self, seed):
        problem = _problem(seed)
        config = FTSearchConfig(
            time_limit=None, seed_incumbent=True, jobs=4
        )
        oracle = ReferenceFTSearch(
            problem, FTSearchConfig(time_limit=None, seed_incumbent=True)
        ).run()
        assert_same_optimum(
            parallel_ft_search(problem, config), oracle, problem
        )

    @pytest.mark.parametrize("seed", POOL_SEEDS)
    def test_jobs1_and_jobs4_agree(self, seed):
        problem = _problem(seed)
        one = ft_search(problem, time_limit=None, jobs=1)
        four = ft_search(problem, time_limit=None, jobs=4)
        assert_same_optimum(four, one, problem)

    def test_without_shared_bound_nodes_are_reproducible(self):
        problem = _rich_problem()
        config = FTSearchConfig(
            time_limit=None, jobs=2, shared_bound=False
        )
        a = parallel_ft_search(problem, config)
        b = parallel_ft_search(problem, config)
        assert a.stats.nodes_expanded == b.stats.nodes_expanded
        assert a.stats.values_tried == b.stats.values_tried
        assert_same_optimum(a, b, problem)

    def test_shared_bound_never_changes_the_optimum(self):
        problem = _rich_problem()
        base = parallel_ft_search(
            problem,
            FTSearchConfig(time_limit=None, jobs=2, shared_bound=False),
        )
        shared = parallel_ft_search(
            problem,
            FTSearchConfig(time_limit=None, jobs=2, shared_bound=True),
        )
        assert_same_optimum(shared, base, problem)


class TestWarmStartTimesParallel:
    @pytest.mark.parametrize("seed", POOL_SEEDS)
    @pytest.mark.parametrize("jobs", (1, 4))
    def test_warm_equals_cold(self, seed, jobs):
        problem = _problem(seed)
        cold = ft_search(problem, time_limit=None, jobs=jobs)
        if cold.strategy is None:
            pytest.skip("instance infeasible")
        warm = ft_search(
            problem,
            time_limit=None,
            jobs=jobs,
            warm_start=cold.strategy,
        )
        assert warm.outcome is SearchOutcome.OPTIMAL
        assert_same_optimum(warm, cold, problem)

    def test_warm_start_seeds_the_vector_engine(self):
        problem = _rich_problem()
        cold = ft_search(problem, time_limit=None)
        assert cold.strategy is not None
        engine = VectorFTSearch(
            problem,
            FTSearchConfig(time_limit=None, warm_start=cold.strategy),
        )
        assert engine.seed.codes is not None
        assert engine.seed.cost == cold.best_cost


class TestSharedBound:
    def _bound(self) -> SharedBound:
        return SharedBound(multiprocessing.Value("d", math.inf))

    def test_starts_at_infinity(self):
        assert math.isinf(self._bound().get())

    def test_offer_only_tightens(self):
        bound = self._bound()
        bound.offer(10.0)
        assert bound.get() == 10.0
        bound.offer(25.0)  # looser: must be ignored
        assert bound.get() == 10.0
        bound.offer(3.0)
        assert bound.get() == 3.0

    def test_reset_rearms_between_runs(self):
        bound = self._bound()
        bound.offer(1.0)
        bound.reset(7.5)
        assert bound.get() == 7.5
        bound.offer(9.0)
        assert bound.get() == 7.5


class TestBudgetsAndValidation:
    def test_node_budget_truncates_with_anytime_outcome(self):
        problem = _rich_problem()
        result = ft_search(
            problem,
            time_limit=None,
            node_limit=10,
            seed_incumbent=True,
            jobs=1,
        )
        assert result.outcome in (
            SearchOutcome.FEASIBLE,
            SearchOutcome.TIMEOUT,
        )

    def test_parallel_node_budget_is_shared_out(self):
        problem = _rich_problem()
        full = ft_search(problem, time_limit=None, jobs=2)
        capped = ft_search(
            problem,
            time_limit=None,
            node_limit=60,
            seed_incumbent=True,
            jobs=2,
        )
        assert capped.stats.nodes_expanded < full.stats.nodes_expanded

    @pytest.mark.parametrize("jobs", (0, -3))
    def test_bad_jobs_rejected(self, jobs):
        with pytest.raises(OptimizationError):
            FTSearchConfig(jobs=jobs)

    def test_bad_block_rows_rejected(self):
        with pytest.raises(ValueError):
            VectorFTSearch(_problem(0), block_rows=0)

    def test_roots_must_be_nonempty_and_same_depth(self):
        problem = _problem(0)
        with pytest.raises(ValueError):
            VectorFTSearch(problem, roots=[])
        with pytest.raises(ValueError):
            VectorFTSearch(problem, roots=[b"\x00", b"\x00\x01"])


class TestSplitAndFold:
    def test_split_plus_tasks_equal_single_run(self):
        """Driving the split/fold machinery by hand, in-process, must
        reproduce the one-shot vector result exactly."""
        problem = _rich_problem()
        config = FTSearchConfig(time_limit=None, seed_incumbent=True)
        single = VectorFTSearch(problem, config).run()

        engine = VectorFTSearch(problem, config)
        prefixes, split_raw = engine.split_frontier(8)
        raws = [split_raw]
        for lo in range(0, len(prefixes), 3):
            worker = VectorFTSearch(
                problem, config, roots=prefixes[lo:lo + 3]
            )
            raws.append(worker.search())
        merged = engine.build_result(raws)
        assert_same_optimum(merged, single, problem)
        assert merged.stats.nodes_expanded == single.stats.nodes_expanded

    def test_split_on_exhausted_instance_returns_no_prefixes(self):
        problem = _problem(2)
        engine = VectorFTSearch(
            problem, FTSearchConfig(time_limit=None)
        )
        prefixes, raw = engine.split_frontier(10 ** 9)
        assert prefixes == []
        result = engine.build_result([raw])
        oracle = FTSearch(
            problem, FTSearchConfig(time_limit=None)
        ).run()
        assert_same_optimum(result, oracle, problem)
