"""Tests for greedy incumbent seeding in FT-Search."""

from __future__ import annotations

import pytest

from repro.core import (
    OptimizationProblem,
    SearchOutcome,
    ft_search,
    greedy_deactivation,
    internal_completeness,
    strategy_cost,
)
from repro.workloads import generate_application


@pytest.fixture(scope="module")
def hard_app():
    """Seed 77 is the motivating instance: without seeding, no feasible
    solution is found within a short budget (deep CPU-conflict thrash)."""
    return generate_application(seed=77)


class TestSeeding:
    def test_unseeded_search_times_out_empty(self, hard_app):
        result = ft_search(
            OptimizationProblem(hard_app.deployment, ic_target=0.4),
            time_limit=0.5,
        )
        assert result.outcome is SearchOutcome.TIMEOUT
        assert result.strategy is None

    def test_seeded_search_returns_the_incumbent(self, hard_app):
        result = ft_search(
            OptimizationProblem(hard_app.deployment, ic_target=0.4),
            time_limit=0.5,
            seed_incumbent=True,
        )
        assert result.outcome is SearchOutcome.FEASIBLE
        assert result.strategy is not None
        greedy = greedy_deactivation(hard_app.deployment)
        assert result.best_cost <= strategy_cost(greedy) * (1 + 1e-9)
        assert internal_completeness(result.strategy) >= 0.4 - 1e-9

    def test_seed_skipped_when_greedy_misses_target(self, hard_app):
        """GRD's IC on this app is ~0.51; a 0.9 target gets no seed and
        the short search stays empty-handed (TMO) or proves NUL."""
        result = ft_search(
            OptimizationProblem(hard_app.deployment, ic_target=0.9),
            time_limit=0.5,
            seed_incumbent=True,
        )
        assert result.outcome in (
            SearchOutcome.TIMEOUT,
            SearchOutcome.INFEASIBLE,
        )

    def test_seeding_never_worsens_the_optimum(self, pipeline_deployment):
        problem = OptimizationProblem(pipeline_deployment, ic_target=0.5)
        plain = ft_search(problem, time_limit=30.0)
        seeded = ft_search(problem, time_limit=30.0, seed_incumbent=True)
        assert plain.outcome is SearchOutcome.OPTIMAL
        assert seeded.outcome is SearchOutcome.OPTIMAL
        assert seeded.best_cost == pytest.approx(plain.best_cost)

    def test_seeded_incumbent_enables_cost_pruning(self, pipeline_deployment):
        problem = OptimizationProblem(pipeline_deployment, ic_target=0.5)
        plain = ft_search(problem, time_limit=30.0)
        seeded = ft_search(problem, time_limit=30.0, seed_incumbent=True)
        assert seeded.stats.values_tried <= plain.stats.values_tried

    def test_penalty_mode_seeding(self, hard_app):
        result = ft_search(
            OptimizationProblem(hard_app.deployment, ic_target=0.9),
            time_limit=0.5,
            penalty_weight=1e12,
            seed_incumbent=True,
        )
        # The greedy incumbent always seeds in penalty mode (deficit is
        # allowed), so a strategy comes back even on the hard instance.
        assert result.strategy is not None
