"""The structured event log: stamping, ring buffering, canonical JSONL."""

from __future__ import annotations

import json

import pytest

from repro.obs import EVENT_SCHEMA, Event, EventLog, event_to_json


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestEmission:
    def test_events_are_stamped_from_the_clock(self):
        clock = FakeClock()
        log = EventLog(clock=clock)
        log.emit("replica.crash", replica="pe0#0")
        clock.now = 3.5
        log.emit("replica.recover", replica="pe0#0")
        first, second = log.events()
        assert (first.time, second.time) == (0.0, 3.5)

    def test_seq_is_strictly_increasing(self):
        log = EventLog()
        for _ in range(5):
            log.emit("replica.crash", replica="r")
        assert [e.seq for e in log.events()] == [0, 1, 2, 3, 4]

    def test_no_clock_stamps_zero(self):
        log = EventLog()
        assert log.emit("host.crash", host="h0").time == 0.0

    def test_type_counts_and_count(self):
        log = EventLog()
        log.emit("host.crash", host="h0")
        log.emit("host.crash", host="h1")
        log.emit("host.recover", host="h0")
        assert log.count("host.crash") == 2
        assert log.count("host.recover") == 1
        assert log.count("tuple.drop") == 0


class TestRingBuffer:
    def test_eviction_keeps_newest_in_order(self):
        log = EventLog(maxlen=3)
        for i in range(7):
            log.emit("host.crash", host=f"h{i}")
        assert log.evicted == 4
        assert len(log) == 3
        assert [e.fields["host"] for e in log.events()] == ["h4", "h5", "h6"]
        assert [e.seq for e in log.events()] == [4, 5, 6]

    def test_counters_survive_eviction(self):
        log = EventLog(maxlen=2)
        for _ in range(10):
            log.emit("tuple.drop", replica="r", port="p", primary=True)
        assert log.emitted == 10
        assert log.count("tuple.drop") == 10

    def test_invalid_maxlen_rejected(self):
        with pytest.raises(ValueError):
            EventLog(maxlen=0)


class TestJsonExport:
    def test_canonical_line_is_key_sorted_and_compact(self):
        event = Event(7, 1.25, "tuple.drop", {"replica": "r", "port": "p"})
        line = event_to_json(event)
        assert line == '{"port":"p","replica":"r","seq":7,"t":1.25,"type":"tuple.drop"}'

    def test_equal_events_serialize_byte_identically(self):
        a = Event(0, 2.0, "host.crash", {"host": "h0"})
        b = Event(0, 2.0, "host.crash", {"host": "h0"})
        assert event_to_json(a) == event_to_json(b)

    def test_to_jsonl_round_trips(self):
        log = EventLog()
        log.emit("host.crash", host="h0")
        log.emit("host.recover", host="h0")
        lines = log.to_jsonl().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["type"] for r in records] == ["host.crash", "host.recover"]
        assert list(log.iter_jsonl()) == lines

    def test_empty_log_exports_empty_string(self):
        assert EventLog().to_jsonl() == ""

    def test_write_jsonl(self, tmp_path):
        log = EventLog()
        log.emit("host.crash", host="h0")
        path = tmp_path / "events.jsonl"
        assert log.write_jsonl(path) == 1
        assert json.loads(path.read_text())["host"] == "h0"


class TestSchema:
    def test_every_schema_type_is_namespaced(self):
        assert all("." in type_ for type_ in EVENT_SCHEMA)

    def test_core_field_names_are_reserved(self):
        # Payload fields may never shadow the envelope keys.
        for fields in EVENT_SCHEMA.values():
            assert not fields.keys() & {"seq", "t", "type"}

    def test_every_field_tag_is_well_formed(self):
        from repro.obs.events import _TAG_BASES

        for fields in EVENT_SCHEMA.values():
            for tag in fields.values():
                base = tag[:-1] if tag.endswith("?") else tag
                assert base in _TAG_BASES, tag
