"""Run-to-run SLO diff: alignment, phase attribution, rendering."""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.obs import diff_runs, render_diff


def _window(index, phase="steady", bad=0.0, output=100, drops=0, p95=0.01):
    return {
        "window": index,
        "start": index * 5.0,
        "end": (index + 1) * 5.0,
        "phase": phase,
        "availability": 1.0 - bad / 5.0,
        "bad_seconds": bad,
        "input": output,
        "output": output,
        "drops": drops,
        "failovers": 0,
        "lat_count": output,
        "lat_p50": p95 / 2,
        "lat_p95": p95,
        "lat_max": p95,
    }


def _tenant(tenant, windows, verdict="met", alerts=()):
    bad = sum(w["bad_seconds"] for w in windows)
    horizon = windows[-1]["end"] if windows else 0.0
    return {
        "tenant": tenant,
        "app": "chain",
        "slo": {
            "tenant": tenant,
            "objective": 0.999,
            "window_seconds": 5.0,
            "horizon": horizon,
            "n_windows": len(windows),
            "availability": 1.0 - (bad / horizon if horizon else 0.0),
            "bad_seconds": bad,
            "budget_seconds": 0.001 * horizon,
            "burned": 0.0,
            "verdict": verdict,
            "trusted": True,
            "alerts": list(alerts),
            "input": sum(w["input"] for w in windows),
            "output": sum(w["output"] for w in windows),
            "drops": sum(w["drops"] for w in windows),
            "latency": {"count": 0, "mean": None, "p50": None,
                        "p95": None, "max": None},
            "failover": {"count": 0, "mean": None, "p50": None,
                         "p95": None, "max": None},
            "windows": windows,
        },
    }


def _doc(*tenants):
    return {"params": {}, "fleet": {}, "tenants": list(tenants)}


class TestDiffRuns:
    def test_rejects_non_artifact(self):
        with pytest.raises(ReproError, match="tenants"):
            diff_runs({"params": {}}, _doc())

    def test_tenant_alignment(self):
        doc_a = _doc(
            _tenant("0", [_window(0)]), _tenant("1", [_window(0)])
        )
        doc_b = _doc(
            _tenant("1", [_window(0)]), _tenant("2", [_window(0)])
        )
        diff = diff_runs(doc_a, doc_b)
        assert diff["tenants"] == {
            "common": 1, "only_a": ["0"], "only_b": ["2"],
        }

    def test_phase_attribution_and_transition_labels(self):
        doc_a = _doc(
            _tenant("0", [
                _window(0, "steady", output=100),
                _window(1, "failover", bad=1.0, output=80),
            ])
        )
        doc_b = _doc(
            _tenant("0", [
                _window(0, "steady", output=90),
                _window(1, "steady", output=100),
            ])
        )
        diff = diff_runs(doc_a, doc_b)
        assert set(diff["phases"]) == {"steady", "failover->steady"}
        transition = diff["phases"]["failover->steady"]
        assert transition["windows"] == 1
        assert transition["bad_seconds"]["delta"] == -1.0
        assert transition["output"]["delta"] == 20
        assert diff["totals"]["output"]["delta"] == 10

    def test_unaligned_windows_counted_not_diffed(self):
        doc_a = _doc(_tenant("0", [_window(0), _window(1), _window(2)]))
        doc_b = _doc(_tenant("0", [_window(0)]))
        diff = diff_runs(doc_a, doc_b)
        assert diff["unaligned_windows"] == 2
        assert diff["phases"]["steady"]["windows"] == 1

    def test_verdict_changes_and_top_movers_order(self):
        doc_a = _doc(
            _tenant("0", [_window(0)]),
            _tenant("1", [_window(0)]),
        )
        doc_b = _doc(
            _tenant("0", [_window(0, "failure", bad=2.0)], verdict="breached"),
            _tenant("1", [_window(0, output=150)]),
        )
        diff = diff_runs(doc_a, doc_b)
        assert diff["verdict_changes"] == [
            {"tenant": "0", "a": "met", "b": "breached"}
        ]
        # Tenant 0 moved bad_seconds (ranks first); tenant 1 only output.
        assert [m["tenant"] for m in diff["top_movers"]] == ["0", "1"]
        assert diff["top_movers"][0]["d_bad_seconds"] == 2.0

    def test_alert_counts_only_firing_edges(self):
        alerts = [
            {"rule": "availability-burn", "state": "firing", "window": 1,
             "burn_fast": 5.0, "burn_slow": 2.0},
            {"rule": "availability-burn", "state": "resolved", "window": 3,
             "burn_fast": 0.0, "burn_slow": 0.5},
        ]
        doc_a = _doc(_tenant("0", [_window(0)]))
        doc_b = _doc(_tenant("0", [_window(0)], alerts=alerts))
        diff = diff_runs(doc_a, doc_b)
        assert diff["totals"]["alerts"]["delta"] == 1

    def test_deterministic_serialization(self):
        doc = _doc(
            _tenant("3", [_window(0, "replan")]),
            _tenant("10", [_window(0)]),
            _tenant("2", [_window(0, "failure", bad=0.5)]),
        )
        first = json.dumps(diff_runs(doc, doc), sort_keys=True)
        second = json.dumps(diff_runs(doc, doc), sort_keys=True)
        assert first == second
        # Numeric tenant names sort numerically via the (len, str) key.
        movers = [m["tenant"] for m in diff_runs(doc, doc)["top_movers"]]
        assert movers == ["2", "3", "10"]


class TestRenderDiff:
    def test_renders_all_sections(self):
        doc_a = _doc(_tenant("0", [_window(0)]))
        doc_b = _doc(
            _tenant("0", [_window(0, "failure", bad=1.0)], verdict="breached")
        )
        text = render_diff(diff_runs(doc_a, doc_b))
        assert "== slo diff ==" in text
        assert "-- fleet totals (A -> B) --" in text
        assert "-- attribution by phase --" in text
        assert "steady->failure" in text
        assert "-- verdict changes --" in text
        assert "tenant 0: met -> breached" in text
        assert "-- top movers --" in text

    def test_identical_runs_render_zero_deltas(self):
        doc = _doc(_tenant("0", [_window(0), _window(1)]))
        text = render_diff(diff_runs(doc, doc))
        assert "(delta 0)" in text
        assert "verdict changes" not in text


class TestMigrationWindows:
    def test_counts_per_side_including_unaligned(self):
        doc_a = _doc(
            _tenant("0", [_window(0), _window(1, phase="migration", bad=0.5)])
        )
        doc_b = _doc(
            _tenant(
                "0",
                [
                    _window(0, phase="migration", bad=1.0),
                    _window(1, phase="migration", bad=0.25),
                    _window(2, phase="migration", bad=0.25),
                ],
            )
        )
        diff = diff_runs(doc_a, doc_b)
        migration = diff["migration_windows"]
        assert migration["windows"]["a"] == 1
        assert migration["windows"]["b"] == 3
        assert migration["windows"]["delta"] == 2
        assert migration["bad_seconds"]["a"] == 0.5
        assert migration["bad_seconds"]["b"] == 1.5
        assert migration["bad_seconds"]["delta"] == 1.0

    def test_zero_when_no_migration_phase(self):
        doc = _doc(_tenant("0", [_window(0), _window(1, phase="failover")]))
        diff = diff_runs(doc, doc)
        assert diff["migration_windows"]["windows"] == {
            "a": 0,
            "b": 0,
            "delta": 0,
        }

    def test_rendered_section_present(self):
        doc_a = _doc(_tenant("0", [_window(0)]))
        doc_b = _doc(_tenant("0", [_window(0, phase="migration", bad=0.5)]))
        text = render_diff(diff_runs(doc_a, doc_b))
        assert "-- migration windows (A -> B) --" in text
        assert "windows 0 -> 1 (delta 1)" in text
