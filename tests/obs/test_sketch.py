"""The deterministic log-histogram sketch and nearest-rank semantics."""

from __future__ import annotations

import math

import pytest

from repro.obs import LogHistogram, MetricsRegistry, nearest_rank_index


def _exact_nearest_rank(values: list[float], q: float) -> float:
    ordered = sorted(values)
    return ordered[nearest_rank_index(q, len(ordered))]


class TestNearestRankIndex:
    def test_bounds(self):
        assert nearest_rank_index(0.0, 5) == 0
        assert nearest_rank_index(1.0, 5) == 4

    def test_median_of_four_is_second_element(self):
        # ceil(0.5 * 4) - 1 = 1: nearest-rank picks a real sample, not
        # an interpolated midpoint.
        assert nearest_rank_index(0.5, 4) == 1

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            nearest_rank_index(1.5, 4)
        with pytest.raises(ValueError):
            nearest_rank_index(0.5, 0)


class TestLogHistogram:
    def test_empty(self):
        sketch = LogHistogram()
        assert sketch.percentile(0.5) == 0.0
        assert sketch.summary() == {
            "count": 0, "mean": None, "p50": None, "p95": None, "max": None,
        }

    def test_exact_scalars(self):
        sketch = LogHistogram()
        for value in (0.25, 0.5, 0.125, 2.0):
            sketch.add(value)
        summary = sketch.summary()
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(2.875 / 4)
        assert summary["max"] == 2.0

    @pytest.mark.parametrize(
        "values",
        [
            # Uniform spread over three decades.
            [0.001 * (i + 1) for i in range(500)],
            # Heavy-tailed: most mass tiny, a few huge outliers.
            [0.0001] * 400 + [5.0, 50.0, 500.0],
            # Adversarial for fixed-width buckets: geometric spacing.
            [2.0 ** (-i) for i in range(30)] * 4,
            # All-identical values (single-bucket degenerate case).
            [0.042] * 100,
        ],
    )
    @pytest.mark.parametrize("q", [0.0, 0.5, 0.9, 0.95, 0.99, 1.0])
    def test_relative_error_bound(self, values, q):
        growth = 1.05
        sketch = LogHistogram(growth=growth)
        for value in values:
            sketch.add(value)
        exact = _exact_nearest_rank(values, q)
        approx = sketch.percentile(q)
        # One-sided bucket rounding: the sketch returns the bucket's
        # upper bound (clamped to observed min/max), so the relative
        # error is bounded by the growth factor — except below the
        # grid floor, where the absolute error is at most min_value.
        assert approx >= exact * (1.0 - 1e-12)
        ceiling = max(exact * growth, sketch.min_value)
        assert approx <= ceiling * (1.0 + 1e-12)

    def test_below_min_value_clamps_to_first_bucket(self):
        sketch = LogHistogram(min_value=1e-6)
        sketch.add(1e-9)
        sketch.add(0.0 + 1e-12)
        assert sketch.percentile(1.0) <= 1e-6 + 1e-12

    def test_merge_equals_combined_ingest(self):
        a, b, combined = LogHistogram(), LogHistogram(), LogHistogram()
        for i in range(200):
            value = math.exp((i * 37 % 100) / 10.0 - 5.0)
            (a if i % 2 else b).add(value)
            combined.add(value)
        a.merge(b)
        merged, direct = a.to_dict(), combined.to_dict()
        # Sums accumulate in different order, so compare them
        # tolerantly and everything else exactly.
        assert merged.pop("sum") == pytest.approx(direct.pop("sum"))
        assert merged == direct

    def test_merge_rejects_mismatched_grid(self):
        with pytest.raises(ValueError):
            LogHistogram(growth=1.05).merge(LogHistogram(growth=1.1))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            LogHistogram(growth=1.0)
        with pytest.raises(ValueError):
            LogHistogram(min_value=0.0)
        with pytest.raises(ValueError):
            LogHistogram().add(0.5, count=0)

    def test_to_dict_is_json_stable(self):
        sketch = LogHistogram()
        for value in (0.3, 0.1, 0.2):
            sketch.add(value)
        doc = sketch.to_dict()
        assert doc["count"] == 3
        assert list(doc["buckets"]) == sorted(
            doc["buckets"], key=lambda k: int(k)
        )


class TestRegistryHistogramAgreement:
    """The registry histogram now shares nearest-rank semantics."""

    def test_p0_is_min_not_max(self):
        histogram = MetricsRegistry().histogram("h")
        for value in (5.0, 1.0, 3.0):
            histogram.record(value)
        summary = histogram.summary()
        assert summary["min"] == 1.0
        # Regression: pct(0.0) used to index ordered[-1] and report max.
        assert summary["p50"] == 3.0

    def test_matches_shared_index_rule(self):
        histogram = MetricsRegistry().histogram("h")
        values = [float(i) for i in (9, 2, 7, 4)]
        for value in values:
            histogram.record(value)
        assert histogram.summary()["p50"] == _exact_nearest_rank(values, 0.5)
