"""The metrics registry: instruments, labels, snapshots and diffs."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry


class TestCounter:
    def test_inc_and_value(self):
        counter = MetricsRegistry().counter("tuples.dropped")
        counter.inc()
        counter.inc(2.0)
        assert counter.value() == 3.0

    def test_labels_partition_counts(self):
        counter = MetricsRegistry().counter("tuples.dropped")
        counter.inc(replica="r0")
        counter.inc(replica="r0")
        counter.inc(replica="r1")
        assert counter.value(replica="r0") == 2.0
        assert counter.value(replica="r1") == 1.0
        assert counter.value(replica="r2") == 0.0
        assert counter.total() == 3.0

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_items_sorted_by_labels(self):
        counter = MetricsRegistry().counter("c")
        counter.inc(replica="r1")
        counter.inc(replica="r0")
        assert [labels for labels, _ in counter.items()] == [
            {"replica": "r0"}, {"replica": "r1"},
        ]


class TestGauge:
    def test_set_overwrites(self):
        gauge = MetricsRegistry().gauge("queue.depth")
        gauge.set(3.0, replica="r0")
        gauge.set(5.0, replica="r0")
        assert gauge.value(replica="r0") == 5.0

    def test_unseen_labels_read_none(self):
        assert MetricsRegistry().gauge("g").value(replica="r9") is None


class TestHistogram:
    def test_empty_summary_is_stable(self):
        summary = MetricsRegistry().histogram("h").summary()
        assert summary == {
            "count": 0, "mean": None, "min": None,
            "max": None, "p50": None, "p95": None,
        }

    def test_summary_statistics(self):
        histogram = MetricsRegistry().histogram("latency")
        for value in (0.1, 0.2, 0.3, 0.4, 1.0):
            histogram.record(value)
        summary = histogram.summary()
        assert summary["count"] == 5
        assert summary["mean"] == pytest.approx(0.4)
        assert summary["min"] == 0.1
        assert summary["max"] == 1.0
        assert summary["p50"] == 0.3
        assert summary["p95"] == 1.0


class TestSeries:
    def test_observe_appends_parallel_lists(self):
        series = MetricsRegistry().series("cpu.utilization")
        series.observe(1.0, 0.5)
        series.observe(2.0, 0.7)
        assert series.times == [1.0, 2.0]
        assert series.values == [0.5, 0.7]
        assert series.last() == 0.7
        assert len(series) == 2

    def test_empty_series_last_is_none(self):
        assert MetricsRegistry().series("s").last() is None

    def test_label_combinations_are_distinct_series(self):
        registry = MetricsRegistry()
        a = registry.series("queue.length", replica="r0")
        b = registry.series("queue.length", replica="r1")
        assert a is not b
        assert registry.series("queue.length", replica="r0") is a
        assert registry.series_named("queue.length") == [a, b]


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_conflicts_rejected(self):
        registry = MetricsRegistry()
        registry.counter("metric")
        with pytest.raises(ValueError):
            registry.gauge("metric")
        with pytest.raises(ValueError):
            registry.series("metric")

    def test_snapshot_is_flat_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("drops").inc(replica="r0")
        registry.gauge("depth").set(4.0)
        registry.series("cpu", host="h0").observe(1.0, 0.5)
        snapshot = registry.snapshot()
        assert snapshot == {
            "cpu{host=h0}": 0.5,
            "depth": 4.0,
            "drops{replica=r0}": 1.0,
        }
        assert list(snapshot) == sorted(snapshot)

    def test_diff_reports_changed_and_new_keys(self):
        registry = MetricsRegistry()
        drops = registry.counter("drops")
        drops.inc()
        before = registry.snapshot()
        drops.inc()
        registry.gauge("depth").set(1.0)
        delta = MetricsRegistry.diff(before, registry.snapshot())
        assert delta == {"drops": 2.0, "depth": 1.0}

    def test_diff_of_identical_snapshots_is_empty(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        snap = registry.snapshot()
        assert MetricsRegistry.diff(snap, registry.snapshot()) == {}
