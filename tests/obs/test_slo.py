"""The streaming SLO engine: windows, burn alerts, budgets, trust."""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.obs import (
    AvailabilityTracker,
    CoverageAvailability,
    EventLog,
    NullAvailability,
    SloConfig,
    SloEngine,
)
from repro.obs.validate import validate_lines


class _ScriptedAvailability(AvailabilityTracker):
    """Bad while between a host.crash and the matching host.recover."""

    def __init__(self):
        super().__init__()
        self._down = False

    def _apply(self, time, type_, fields):
        if type_ == "host.crash":
            self._down = True
        elif type_ == "host.recover":
            self._down = False

    def _evaluate(self):
        return self._down

    def degraded(self):
        return self._down


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _engine(config=None, availability=None, **kwargs):
    clock = _Clock()
    events = EventLog(clock)
    engine = SloEngine(
        events,
        availability if availability is not None else NullAvailability(),
        config,
        tenant="t0",
        **kwargs,
    )
    events.add_tap(engine.on_event)
    return clock, events, engine


def _emit_at(clock, events, time, type_, **fields):
    clock.now = time
    events.emit(type_, **fields)


class TestSloConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0.5},
            {"window": 2.5},
            {"availability_target": 1.0},
            {"availability_target": 0.0},
            {"burn_threshold": 0.0},
            {"fast_windows": 0},
            {"fast_windows": 3, "slow_windows": 2},
            {"ic_target": 0.0},
            {"ic_target": 1.5},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ReproError):
            SloConfig(**kwargs)


class TestWindows:
    def test_lazy_close_emits_slo_window_with_true_bounds(self):
        clock, events, engine = _engine(SloConfig(window=5.0))
        _emit_at(clock, events, 1.0, "tuple.drop", replica="pe0#0")
        # Jumping past two whole windows closes both at once; the
        # slo.window events are stamped "now" but carry true bounds.
        _emit_at(clock, events, 12.0, "tuple.drop", replica="pe0#0")
        windows = list(events.of_type("slo.window"))
        assert [(w.fields["start"], w.fields["end"]) for w in windows] == [
            (0.0, 5.0), (5.0, 10.0),
        ]
        assert all(w.time == 12.0 for w in windows)
        assert windows[0].fields["drops"] == 1
        assert windows[1].fields["drops"] == 0

    def test_finalize_closes_partial_window_and_emits_budget(self):
        clock, events, engine = _engine(SloConfig(window=5.0))
        _emit_at(clock, events, 1.0, "tuple.drop", replica="pe0#0")
        engine.finalize(12.0)
        windows = list(events.of_type("slo.window"))
        assert [(w.fields["start"], w.fields["end"]) for w in windows] == [
            (0.0, 5.0), (5.0, 10.0), (10.0, 12.0),
        ]
        budget = list(events.of_type("slo.budget"))
        assert len(budget) == 1
        assert budget[0].fields["windows"] == 3
        assert budget[0].fields["verdict"] == "met"
        summary = engine.summary()
        assert summary["n_windows"] == 3
        assert summary["drops"] == 1
        assert summary["availability"] == 1.0

    def test_finalize_twice_and_summary_before_finalize_raise(self):
        _, _, engine = _engine()
        with pytest.raises(ReproError, match="finalize"):
            engine.summary()
        engine.finalize(10.0)
        with pytest.raises(ReproError, match="twice"):
            engine.finalize(10.0)

    def test_slo_events_are_schema_valid(self):
        clock, events, engine = _engine(
            SloConfig(window=5.0, availability_target=0.9),
            availability=_ScriptedAvailability(),
        )
        _emit_at(clock, events, 1.0, "host.crash", host="h0")
        _emit_at(clock, events, 8.0, "host.recover", host="h0")
        engine.finalize(10.0)
        assert validate_lines(events.to_jsonl().splitlines()) == []

    def test_latency_cursor_splits_samples_at_window_bound(self):
        samples = [(0.5, 0.010), (4.999, 0.020), (5.0, 0.030), (9.0, 0.040)]
        clock, events, engine = _engine(
            SloConfig(window=5.0), latency=[("sink", samples)]
        )
        engine.finalize(10.0)
        windows = list(events.of_type("slo.window"))
        # Strict t < end: the boundary sample at t=5.0 lands in window 1.
        assert windows[0].fields["lat_count"] == 2
        assert windows[1].fields["lat_count"] == 2
        assert engine.summary()["latency"]["count"] == 4

    def test_throughput_sums_series_buckets_inside_window(self):
        clock, events, engine = _engine(
            SloConfig(window=5.0),
            output_buckets=[{0: 3, 4: 2, 5: 7}],
            input_buckets=[{1: 10}],
        )
        engine.finalize(10.0)
        windows = list(events.of_type("slo.window"))
        assert windows[0].fields["output"] == 5
        assert windows[0].fields["input"] == 10
        assert windows[1].fields["output"] == 7
        summary = engine.summary()
        assert summary["output"] == 12
        assert summary["input"] == 10


class TestPhaseAttribution:
    def test_failover_beats_failure_beats_replan(self):
        clock, events, engine = _engine(
            availability=_ScriptedAvailability(),
            config=SloConfig(window=5.0, availability_target=0.5),
        )
        # Window 0: an open failover span plus a crash -> "failover".
        _emit_at(clock, events, 1.0, "host.crash", host="h0")
        _emit_at(
            clock, events, 1.0, "span.start", name="failover", pe="pe0"
        )
        # The span ends inside window 1, so that window still counts
        # as "failover" (beating the degraded-host "failure" reading).
        _emit_at(
            clock, events, 6.0, "span.end",
            name="failover", pe="pe0", duration=5.0,
        )
        # Recovery lands mid-window-2; by close time the tracker is
        # healthy again and nothing else happened -> "steady".
        _emit_at(clock, events, 12.0, "host.recover", host="h0")
        # Window 3 has a replan marker only.
        _emit_at(clock, events, 16.0, "fleet.replan", tenant="t0")
        engine.finalize(25.0)
        phases = [
            w.fields["phase"] for w in events.of_type("slo.window")
        ]
        assert phases == ["failover", "failover", "steady", "replan", "steady"]
        assert engine.summary()["failover"]["count"] == 1
        assert engine.summary()["failover"]["max"] == 5.0

    def test_open_span_carries_failover_phase_across_windows(self):
        clock, events, engine = _engine(SloConfig(window=5.0))
        _emit_at(
            clock, events, 2.0, "span.start", name="failover", pe="pe0"
        )
        _emit_at(
            clock, events, 13.0, "span.end",
            name="failover", pe="pe0", duration=11.0,
        )
        engine.finalize(20.0)
        phases = [
            w.fields["phase"] for w in events.of_type("slo.window")
        ]
        # Windows 0-2 all overlap the span: started in 0, open across
        # 1, ended inside 2.
        assert phases == ["failover", "failover", "failover", "steady"]


class TestBurnAlerts:
    def test_edge_triggered_firing_and_resolve(self):
        clock, events, engine = _engine(
            availability=_ScriptedAvailability(),
            config=SloConfig(
                window=5.0,
                availability_target=0.9,
                burn_threshold=1.0,
                fast_windows=1,
                slow_windows=3,
            ),
        )
        # Whole first window bad: burn = 1.0 / 0.1 = 10x.
        _emit_at(clock, events, 0.0, "host.crash", host="h0")
        _emit_at(clock, events, 5.0, "host.recover", host="h0")
        engine.finalize(20.0)
        alerts = [
            (a.fields["state"], a.fields["window"])
            for a in events.of_type("slo.alert")
        ]
        # Fires at window 0, resolves at window 1 (fast burn drops to 0).
        assert alerts == [("firing", 0), ("resolved", 1)]
        summary = engine.summary()
        assert summary["verdict"] == "breached"
        assert summary["bad_seconds"] == pytest.approx(5.0)

    def test_slow_window_gate_suppresses_brief_blips(self):
        clock, events, engine = _engine(
            availability=_ScriptedAvailability(),
            config=SloConfig(
                window=5.0,
                availability_target=0.9,
                burn_threshold=1.0,
                fast_windows=1,
                slow_windows=4,
            ),
        )
        # Bad for 1s of a 5s window: fast burn = 0.2/0.1 = 2x, but the
        # first window's slow burn over one window is also 2x — so make
        # the blip land in window 2 with two clean windows of history:
        # slow burn = (0 + 0 + 0.2) / 3 / 0.1 = 0.67x < 1 -> no alert.
        _emit_at(clock, events, 11.0, "host.crash", host="h0")
        _emit_at(clock, events, 12.0, "host.recover", host="h0")
        engine.finalize(20.0)
        assert list(events.of_type("slo.alert")) == []
        # 1 bad second against a 0.1 * 20 = 2s budget: met, no alert.
        assert engine.summary()["verdict"] == "met"

    def test_clean_run_fires_nothing_and_meets_budget(self):
        clock, events, engine = _engine(
            availability=_ScriptedAvailability(),
            config=SloConfig(window=5.0, availability_target=0.999),
        )
        _emit_at(clock, events, 3.0, "tuple.drop", replica="pe0#0")
        engine.finalize(30.0)
        assert list(events.of_type("slo.alert")) == []
        summary = engine.summary()
        assert summary["verdict"] == "met"
        assert summary["burned"] == 0.0


class TestTrust:
    def test_evicted_log_yields_untrusted_verdict(self):
        clock = _Clock()
        events = EventLog(clock, maxlen=2)
        engine = SloEngine(events, NullAvailability(), tenant="t0")
        events.add_tap(engine.on_event)
        for i in range(8):
            _emit_at(clock, events, float(i), "tuple.drop", replica="r")
        engine.finalize(10.0)
        summary = engine.summary()
        assert summary["trusted"] is False
        assert summary["verdict"] == "untrusted"
        # The tap saw every drop even though the ring kept only two.
        assert summary["drops"] == 8

    def test_own_emissions_are_ignored(self):
        clock, events, engine = _engine(SloConfig(window=5.0))
        _emit_at(clock, events, 7.0, "tuple.drop", replica="r")
        engine.finalize(10.0)
        # slo.window / slo.budget events did not loop back into rollups.
        assert engine.summary()["n_windows"] == 2


class TestCoverageAvailability:
    def test_single_crash_keeps_coverage(self, pipeline_deployment):
        tracker = CoverageAvailability(pipeline_deployment)
        tracker.on_event(1.0, "replica.crash", {"replica": "pe1#0"})
        assert tracker.take(10.0) == 0.0
        assert tracker.degraded()

    def test_losing_both_replicas_accrues_bad_time(self, pipeline_deployment):
        tracker = CoverageAvailability(pipeline_deployment)
        tracker.on_event(2.0, "replica.crash", {"replica": "pe1#0"})
        tracker.on_event(4.0, "replica.crash", {"replica": "pe1#1"})
        tracker.on_event(7.0, "replica.recover", {"replica": "pe1#0"})
        assert tracker.take(10.0) == pytest.approx(3.0)

    def test_deactivation_counts_against_coverage(self, pipeline_deployment):
        tracker = CoverageAvailability(pipeline_deployment)
        tracker.on_event(1.0, "replica.deactivate", {"replica": "pe2#0"})
        tracker.on_event(2.0, "replica.crash", {"replica": "pe2#1"})
        assert tracker.take(5.0) == pytest.approx(3.0)

    def test_fractional_target_tolerates_one_uncovered_pe(
        self, pipeline_deployment
    ):
        tracker = CoverageAvailability(pipeline_deployment, ic_target=0.5)
        tracker.on_event(1.0, "replica.crash", {"replica": "pe1#0"})
        tracker.on_event(2.0, "replica.crash", {"replica": "pe1#1"})
        assert tracker.take(8.0) == 0.0


class TestDataplaneSlo:
    """The SLO engine wired into the fleet dataplane (jobs-determinism)."""

    @pytest.fixture(scope="class")
    def params(self):
        from repro.fleet.dataplane import DataplaneParams

        return DataplaneParams(
            tenants=6, duration=15.0, chaos_every=3, keep_events=True
        )

    def test_digests_identical_across_worker_counts(self, params):
        from repro.fleet.scenario import run_fleet_dataplane

        summary_1, digests_1 = run_fleet_dataplane(params, jobs=1)
        summary_2, digests_2 = run_fleet_dataplane(params, jobs=2)
        assert json.dumps(digests_1, sort_keys=True) == json.dumps(
            digests_2, sort_keys=True
        )
        assert summary_1["fleet_sha256"] == summary_2["fleet_sha256"]

    def test_digest_carries_slo_and_trust(self, params):
        from repro.fleet.dataplane import run_tenant, TenantTask

        digest = run_tenant(TenantTask(params, 0))
        assert digest["log_complete"] is True
        slo = digest["slo"]
        # 15s run + 2s drain horizon: three full windows and a partial.
        assert slo["n_windows"] == 4
        assert slo["windows"][0]["end"] == 5.0
        # keep_events streams must validate with slo.* included.
        assert validate_lines(digest["jsonl"].splitlines()) == []
