"""Sim-time spans: windows between events, rendered into the log."""

from __future__ import annotations

from repro.obs import EventLog, SpanTracer


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def make_tracer() -> tuple[SpanTracer, EventLog, FakeClock]:
    clock = FakeClock()
    events = EventLog(clock=clock)
    return SpanTracer(events, clock), events, clock


class TestSpanLifecycle:
    def test_duration_is_sim_time_difference(self):
        tracer, _, clock = make_tracer()
        span = tracer.begin("failover", pe="pe0")
        assert span.duration is None
        clock.now = 2.5
        span.end()
        assert span.duration == 2.5

    def test_start_and_end_events_emitted(self):
        tracer, events, clock = make_tracer()
        span = tracer.begin("failover", pe="pe0")
        clock.now = 1.0
        span.end(elected="pe0#1")
        start, end = events.events()
        assert start.type == "span.start"
        assert start.fields == {"span": 0, "name": "failover", "pe": "pe0"}
        assert end.type == "span.end"
        assert end.fields["duration"] == 1.0
        assert end.fields["elected"] == "pe0#1"

    def test_end_is_idempotent(self):
        tracer, events, clock = make_tracer()
        span = tracer.begin("window")
        clock.now = 1.0
        span.end()
        clock.now = 9.0
        span.end()
        assert span.duration == 1.0
        assert events.count("span.end") == 1

    def test_context_manager_closes_on_exit(self):
        tracer, _, clock = make_tracer()
        with tracer.span("config.switch") as span:
            clock.now = 0.25
        assert span.duration == 0.25


class TestConcurrentSpans:
    def test_same_name_spans_may_overlap(self):
        tracer, _, clock = make_tracer()
        first = tracer.begin("failover", pe="pe0")
        second = tracer.begin("failover", pe="pe1")
        clock.now = 1.0
        second.end()
        clock.now = 3.0
        first.end()
        assert first.span_id != second.span_id
        # finished is completion-ordered.
        assert [s.fields["pe"] for s in tracer.finished_named("failover")] == [
            "pe1", "pe0",
        ]
        assert tracer.durations("failover") == [1.0, 3.0]

    def test_durations_skip_open_spans(self):
        tracer, _, clock = make_tracer()
        tracer.begin("failover")
        done = tracer.begin("failover")
        clock.now = 2.0
        done.end()
        assert tracer.durations("failover") == [2.0]
