"""The JSONL event-schema validator and its CLI entry point."""

from __future__ import annotations

import os
import subprocess
import sys

from repro.obs.events import EventLog
from repro.obs.validate import main, validate_file, validate_lines


def _clean_lines() -> list[str]:
    log = EventLog()
    log.emit("host.crash", host="h0")
    log.emit("host.recover", host="h0")
    return log.to_jsonl().splitlines()


class TestValidateLines:
    def test_clean_stream_has_no_problems(self):
        assert validate_lines(_clean_lines()) == []

    def test_blank_lines_ignored(self):
        assert validate_lines(["", *_clean_lines(), "   "]) == []

    def test_unknown_event_type_reported(self):
        problems = validate_lines(
            ['{"seq":0,"t":0.0,"type":"bogus.event"}']
        )
        assert len(problems) == 1
        assert "unknown event type" in problems[0]

    def test_missing_required_field_reported(self):
        problems = validate_lines(
            ['{"seq":0,"t":0.0,"type":"tuple.drop","replica":"r"}']
        )
        assert len(problems) == 1
        assert "missing field" in problems[0]
        assert "port" in problems[0] and "primary" in problems[0]

    def test_missing_core_fields_reported(self):
        problems = validate_lines(['{"type":"host.crash","host":"h0"}'])
        assert len(problems) == 1
        assert "seq" in problems[0] and "t" in problems[0]

    def test_non_json_reported_with_line_number(self):
        problems = validate_lines(["not json"], origin="f.jsonl")
        assert problems[0].startswith("f.jsonl:1:")

    def test_non_increasing_seq_reported(self):
        lines = [
            '{"seq":1,"t":0.0,"type":"host.crash","host":"h0"}',
            '{"seq":1,"t":0.0,"type":"host.crash","host":"h1"}',
        ]
        problems = validate_lines(lines)
        assert len(problems) == 1
        assert "strictly increasing" in problems[0]


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        path.write_text("\n".join(_clean_lines()) + "\n")
        assert main([str(path)]) == 0
        assert validate_file(path) == []
        assert "OK (2 events)" in capsys.readouterr().out

    def test_problem_file_exits_one(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"seq":0,"t":0.0,"type":"nope"}\n')
        assert main([str(path)]) == 1
        assert "unknown event type" in capsys.readouterr().out

    def test_missing_file_exits_one(self, tmp_path):
        assert main([str(tmp_path / "absent.jsonl")]) == 1

    def test_no_arguments_is_usage_error(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out


class TestModuleEntryPoint:
    """``python -m repro.obs.validate`` as CI invokes it.

    The in-process tests above pin ``main()``'s return values; these pin
    that the module entry point actually turns them into process exit
    codes (``raise SystemExit(main())``), so a wiring regression can't
    make CI silently pass on bad streams.
    """

    @staticmethod
    def _run(*args: str) -> subprocess.CompletedProcess[str]:
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            "src",
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH", "")) if p
        )
        return subprocess.run(
            [sys.executable, "-m", "repro.obs.validate", *args],
            capture_output=True,
            text=True,
            env=env,
        )

    def test_unknown_event_type_exits_nonzero(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"seq":0,"t":0.0,"type":"bogus.event"}\n')
        result = self._run(str(path))
        assert result.returncode == 1
        assert "unknown event type" in result.stdout

    def test_clean_stream_exits_zero(self, tmp_path):
        path = tmp_path / "ok.jsonl"
        path.write_text(
            '{"seq":0,"t":0.0,"type":"host.crash","host":"h0"}\n'
        )
        result = self._run(str(path))
        assert result.returncode == 0, result.stdout + result.stderr
