"""Telemetry end-to-end: simulated runs emit the events the schema says.

These tests pin the acceptance contract of the observability layer: a
run of the platform (or the full LAAR application) produces drop,
failure, re-election and activation-switch events stamped in simulated
time, failover and config-switch spans measure the right windows, and
the whole stream is schema-clean and bit-identical across repeated runs.
"""

from __future__ import annotations

import pytest

from repro.core import (
    Host,
    OptimizationProblem,
    ReplicaId,
    ft_search,
)
from repro.dsps import (
    InputTrace,
    PlatformConfig,
    StreamPlatform,
    TraceSegment,
    two_level_trace,
)
from repro.laar import ExtendedApplication, MiddlewareConfig
from repro.obs.validate import validate_lines
from repro.placement import balanced_placement

GIGA = 1.0e9


def build_platform(descriptor, trace, **config):
    hosts = [
        Host("h0", cores=2, cycles_per_core=0.5 * GIGA),
        Host("h1", cores=2, cycles_per_core=0.5 * GIGA),
    ]
    deployment = balanced_placement(descriptor, hosts, 2)
    return StreamPlatform(
        deployment, {"src": trace}, config=PlatformConfig(**config)
    )


class TestKernelEvents:
    def test_run_start_and_end_emitted(self, pipeline_descriptor):
        platform = build_platform(
            pipeline_descriptor, InputTrace([TraceSegment(4.0, 5.0)])
        )
        platform.run(until=5.0)
        events = platform.telemetry.events
        (start,) = events.of_type("sim.run.start")
        (end,) = events.of_type("sim.run.end")
        assert start.fields["until"] == 5.0
        assert end.time == 5.0
        assert end.fields["events_processed"] > 0


class TestFailureEvents:
    def test_crash_emits_failure_and_reelection_events(
        self, pipeline_descriptor
    ):
        platform = build_platform(
            pipeline_descriptor,
            InputTrace([TraceSegment(4.0, 10.0)]),
            failover_delay=1.0,
        )
        victim = ReplicaId("pe1", 0)
        platform.env.schedule(
            5.0, lambda: platform.crash_replica(victim)
        )
        platform.run(until=10.0)
        events = platform.telemetry.events

        (crash,) = events.of_type("replica.crash")
        assert crash.time == 5.0
        assert crash.fields["replica"] == "pe1#0"

        (lost,) = events.of_type("primary.lost")
        assert lost.fields == {
            "pe": "pe1", "replica": "pe1#0", "reason": "crash",
        }

        # Initial elections at t=0 for both PEs, plus the re-election
        # after the failover delay.
        elected = events.of_type("primary.elected")
        reelection = [e for e in elected if e.time > 0.0]
        assert len(reelection) == 1
        assert reelection[0].time == pytest.approx(6.0)
        assert reelection[0].fields["replica"] == "pe1#1"

    def test_failover_span_measures_the_no_primary_window(
        self, pipeline_descriptor
    ):
        platform = build_platform(
            pipeline_descriptor,
            InputTrace([TraceSegment(4.0, 10.0)]),
            failover_delay=1.5,
        )
        platform.env.schedule(
            4.0, lambda: platform.crash_replica(ReplicaId("pe2", 0))
        )
        platform.run(until=10.0)
        spans = platform.telemetry.spans
        (window,) = spans.finished_named("failover")
        assert window.start == 4.0
        assert window.duration == pytest.approx(1.5)
        assert window.fields["elected"] == "pe2#1"


class TestDropEvents:
    @pytest.fixture
    def saturated(self, pipeline_descriptor):
        # One-tuple queues under an offered rate far above capacity:
        # drops are guaranteed.
        platform = build_platform(
            pipeline_descriptor,
            InputTrace([TraceSegment(40.0, 10.0)]),
            queue_seconds=0.01,
        )
        platform.run(until=10.0)
        return platform.telemetry.events

    def test_drops_and_overflows_emitted(self, saturated):
        drops = saturated.of_type("tuple.drop")
        assert drops
        assert {"replica", "port", "primary"} <= drops[0].fields.keys()
        overflows = saturated.of_type("queue.overflow")
        assert overflows
        assert overflows[0].fields["capacity"] >= 1

    def test_overflow_only_on_transition(self, saturated):
        # queue.overflow marks full->overflow edges, not every drop.
        assert saturated.count("queue.overflow") <= saturated.count(
            "tuple.drop"
        )


class TestLaarEvents:
    @pytest.fixture
    def laar_run(self, pipeline_descriptor):
        hosts = [
            Host("h0", cores=2, cycles_per_core=0.5 * GIGA),
            Host("h1", cores=2, cycles_per_core=0.5 * GIGA),
        ]
        deployment = balanced_placement(pipeline_descriptor, hosts, 2)
        result = ft_search(
            OptimizationProblem(deployment, ic_target=0.5), time_limit=10.0
        )
        assert result.strategy is not None
        trace = {"src": two_level_trace(4.0, 8.0, duration=90.0)}
        app = ExtendedApplication(
            deployment,
            result.strategy,
            trace,
            middleware_config=MiddlewareConfig(command_latency=0.05),
        )
        metrics = app.run()
        return app, metrics

    def test_switch_events_match_metrics(self, laar_run):
        app, metrics = laar_run
        switches = app.platform.telemetry.events.of_type("config.switch")
        assert [
            (event.time, event.fields["to"]) for event in switches
        ] == metrics.config_switches
        assert all(e.fields["commands"] >= 1 for e in switches)

    def test_switch_spans_cover_the_command_latency(self, laar_run):
        app, _ = laar_run
        spans = app.platform.telemetry.spans
        durations = spans.durations("config.switch")
        assert durations
        assert all(d == pytest.approx(0.05) for d in durations)

    def test_activation_events_accompany_switches(self, laar_run):
        app, metrics = laar_run
        events = app.platform.telemetry.events
        assert metrics.config_switches
        assert events.count("replica.activate") > 0
        assert events.count("replica.deactivate") > 0
        assert events.count("sla.check") >= events.count("config.switch")

    def test_event_stream_is_schema_clean(self, laar_run):
        app, _ = laar_run
        lines = app.platform.telemetry.events.to_jsonl().splitlines()
        assert validate_lines(lines) == []


class TestDeterminism:
    def test_identical_runs_produce_identical_jsonl(
        self, pipeline_descriptor
    ):
        def one_run() -> str:
            platform = build_platform(
                pipeline_descriptor,
                InputTrace([TraceSegment(6.0, 10.0)]),
                arrival_jitter=0.3,
                seed=7,
                queue_seconds=0.2,
            )
            platform.env.schedule(
                3.0, lambda: platform.crash_replica(ReplicaId("pe1", 0))
            )
            platform.run(until=12.0)
            return platform.telemetry.events.to_jsonl()

        assert one_run() == one_run()
