"""The telemetry facade and the sampled tuple tracer."""

from __future__ import annotations

import pytest

from repro.obs import EventLog, Telemetry, TupleTracer


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestTelemetryFacade:
    def test_components_share_the_clock(self):
        clock = FakeClock()
        telemetry = Telemetry(clock=clock)
        clock.now = 4.0
        telemetry.emit("host.crash", host="h0")
        span = telemetry.spans.begin("failover")
        clock.now = 6.0
        span.end()
        event, start, end = telemetry.events.events()
        assert event.time == 4.0
        assert (start.time, end.time) == (4.0, 6.0)
        assert span.duration == 2.0

    def test_tuple_tracer_off_by_default(self):
        assert Telemetry().tuple_tracer is None

    def test_tuple_tracer_on_when_sampling_enabled(self):
        telemetry = Telemetry(tuple_trace_every=10)
        assert telemetry.tuple_tracer is not None

    def test_event_buffer_bounds_the_log(self):
        telemetry = Telemetry(event_buffer=2)
        for i in range(5):
            telemetry.emit("host.crash", host=f"h{i}")
        assert len(telemetry.events) == 2
        assert telemetry.events.evicted == 3


class TestTupleTracer:
    def test_samples_every_nth_emission_per_source(self):
        events = EventLog()
        tracer = TupleTracer(events, every=3)
        for i in range(7):
            tracer.on_emit("src", birth=float(i))
        sampled = [
            e.fields["birth"] for e in events.of_type("tuple.trace")
        ]
        assert sampled == [0.0, 3.0, 6.0]

    def test_sources_sample_independently(self):
        events = EventLog()
        tracer = TupleTracer(events, every=2)
        tracer.on_emit("a", birth=0.0)
        tracer.on_emit("b", birth=1.0)
        assert events.count("tuple.trace") == 2

    def test_stages_recorded_only_for_sampled_tuples(self):
        events = EventLog()
        tracer = TupleTracer(events, every=2)
        tracer.on_emit("src", birth=0.0)  # sampled
        tracer.on_emit("src", birth=1.0)  # not sampled
        tracer.stage("enqueue", 0.0, replica="r0")
        tracer.stage("enqueue", 1.0, replica="r0")
        stages = [
            (e.fields["stage"], e.fields["birth"])
            for e in events.of_type("tuple.trace")
        ]
        assert stages == [("emit", 0.0), ("enqueue", 0.0)]

    def test_terminal_stage_retires_the_tuple(self):
        events = EventLog()
        tracer = TupleTracer(events, every=1)
        tracer.on_emit("src", birth=0.0)
        tracer.stage("sink", 0.0)
        tracer.stage("process", 0.0)  # after retirement: ignored
        stages = [e.fields["stage"] for e in events.of_type("tuple.trace")]
        assert stages == ["emit", "sink"]

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            TupleTracer(EventLog(), every=0)
