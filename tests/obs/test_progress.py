"""FT-Search progress telemetry: the two-step snapshot protocol."""

from __future__ import annotations

import pytest

from repro.obs import SearchProgress


class TestOnNode:
    def test_snapshot_due_every_n_nodes(self):
        progress = SearchProgress(every=3)
        due = [n for n in range(1, 10) if progress.on_node(n, depth=0)]
        assert due == [3, 6, 9]

    def test_depth_histogram_accumulates(self):
        progress = SearchProgress(every=100)
        for depth in (0, 1, 1, 2):
            progress.on_node(1, depth)
        progress.snapshot(4, None, {})
        assert progress.snapshots[-1].depth_counts == {0: 1, 1: 2, 2: 1}

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            SearchProgress(every=0)


class TestSnapshots:
    def test_snapshot_copies_mutable_state(self):
        progress = SearchProgress(every=1)
        prunes = {"CPU": 1}
        progress.on_node(1, 0)
        progress.snapshot(1, 10.0, prunes)
        prunes["CPU"] = 99
        progress.on_node(2, 1)
        progress.snapshot(2, 9.0, prunes)
        assert progress.snapshots[0].prunes == {"CPU": 1}
        assert progress.snapshots[0].depth_counts == {0: 1}
        assert progress.snapshots[1].depth_counts == {0: 1, 1: 1}

    def test_finish_records_final_state(self):
        progress = SearchProgress(every=4)
        for n in range(1, 7):
            progress.on_node(n, 0)
        progress.snapshot(4, 5.0, {"CPU": 2})
        progress.finish(6, 4.0, {"CPU": 3})
        assert [s.nodes for s in progress.snapshots] == [4, 6]

    def test_finish_skipped_when_snapshot_just_landed(self):
        progress = SearchProgress(every=2)
        progress.on_node(1, 0)
        progress.on_node(2, 0)
        progress.snapshot(2, 5.0, {})
        progress.finish(2, 5.0, {})
        assert len(progress.snapshots) == 1

    def test_to_list_is_json_friendly(self):
        progress = SearchProgress(every=1)
        progress.on_node(1, 3)
        progress.snapshot(1, None, {"COST": 0, "CPU": 1})
        (entry,) = progress.to_list()
        assert entry == {
            "nodes": 1,
            "incumbent_cost": None,
            "prunes": {"COST": 0, "CPU": 1},
            "depth_counts": {"3": 1},
        }
