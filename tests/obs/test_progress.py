"""FT-Search progress telemetry: the two-step snapshot protocol."""

from __future__ import annotations

import pytest

from repro.obs import SearchProgress


class TestOnNode:
    def test_snapshot_due_every_n_nodes(self):
        progress = SearchProgress(every=3)
        due = [n for n in range(1, 10) if progress.on_node(n, depth=0)]
        assert due == [3, 6, 9]

    def test_depth_histogram_accumulates(self):
        progress = SearchProgress(every=100)
        for depth in (0, 1, 1, 2):
            progress.on_node(1, depth)
        progress.snapshot(4, None, {})
        assert progress.snapshots[-1].depth_counts == {0: 1, 1: 2, 2: 1}

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            SearchProgress(every=0)


class TestSnapshots:
    def test_snapshot_copies_mutable_state(self):
        progress = SearchProgress(every=1)
        prunes = {"CPU": 1}
        progress.on_node(1, 0)
        progress.snapshot(1, 10.0, prunes)
        prunes["CPU"] = 99
        progress.on_node(2, 1)
        progress.snapshot(2, 9.0, prunes)
        assert progress.snapshots[0].prunes == {"CPU": 1}
        assert progress.snapshots[0].depth_counts == {0: 1}
        assert progress.snapshots[1].depth_counts == {0: 1, 1: 1}

    def test_finish_records_final_state(self):
        progress = SearchProgress(every=4)
        for n in range(1, 7):
            progress.on_node(n, 0)
        progress.snapshot(4, 5.0, {"CPU": 2})
        progress.finish(6, 4.0, {"CPU": 3})
        assert [s.nodes for s in progress.snapshots] == [4, 6]

    def test_finish_skipped_when_snapshot_just_landed(self):
        progress = SearchProgress(every=2)
        progress.on_node(1, 0)
        progress.on_node(2, 0)
        progress.snapshot(2, 5.0, {})
        progress.finish(2, 5.0, {})
        assert len(progress.snapshots) == 1

    def test_to_list_is_json_friendly(self):
        progress = SearchProgress(every=1)
        progress.on_node(1, 3)
        progress.snapshot(1, None, {"COST": 0, "CPU": 1})
        (entry,) = progress.to_list()
        assert entry == {
            "nodes": 1,
            "incumbent_cost": None,
            "prunes": {"COST": 0, "CPU": 1},
            "depth_counts": {"3": 1},
        }


class TestOnNodes:
    def test_batched_boundary_detection(self):
        progress = SearchProgress(every=4)
        # 3 nodes: no boundary yet; +3 more crosses 4.
        assert progress.on_nodes(3, 3, depth=0) is False
        assert progress.on_nodes(6, 3, depth=1) is True
        # One batch spanning several boundaries still reports once.
        assert progress.on_nodes(20, 14, depth=2) is True
        assert progress._depth_counts == {0: 3, 1: 3, 2: 14}

    def test_batched_and_single_counters_agree(self):
        single = SearchProgress(every=5)
        batched = SearchProgress(every=5)
        due_single = [single.on_node(n, 0) for n in range(1, 13)]
        due_batched = [
            batched.on_nodes(4, 4, 0),
            batched.on_nodes(8, 4, 0),
            batched.on_nodes(12, 4, 0),
        ]
        assert sum(due_single) == sum(due_batched) == 2
        assert single._depth_counts == batched._depth_counts


class TestMergeAndAbsorb:
    def _part(self, every, points):
        part = SearchProgress(every=every)
        for nodes, cost, prunes in points:
            part.snapshot(nodes, cost, prunes)
        return part

    def test_merge_rebases_counters_in_task_order(self):
        a = self._part(4, [(4, 10.0, {"CPU": 1}), (7, 9.0, {"CPU": 2})])
        b = self._part(4, [(5, 12.0, {"CPU": 4})])
        merged = SearchProgress.merge([a, b], every=4)
        assert [s.nodes for s in merged.snapshots] == [4, 7, 12]
        assert merged.snapshots[-1].prunes == {"CPU": 6}

    def test_merge_incumbent_is_running_minimum(self):
        a = self._part(4, [(4, 10.0, {})])
        b = self._part(4, [(3, 12.0, {}), (6, 8.0, {})])
        merged = SearchProgress.merge([a, b], every=4)
        assert [s.incumbent_cost for s in merged.snapshots] == [
            10.0,
            10.0,
            8.0,
        ]

    def test_merge_is_independent_of_completion_order(self):
        # Task order is the contract: permuting the *input list* changes
        # the series (it is a task-order fold), but the same list always
        # merges identically — no hidden wall-clock or scheduling state.
        a = self._part(2, [(2, 5.0, {"COST": 1})])
        b = self._part(2, [(2, 4.0, {"COST": 2})])
        once = SearchProgress.merge([a, b], every=2)
        again = SearchProgress.merge([a, b], every=2)
        assert once.to_list() == again.to_list()

    def test_merge_empty_parts(self):
        merged = SearchProgress.merge([], every=8)
        assert merged.snapshots == []
        merged_sparse = SearchProgress.merge(
            [SearchProgress(every=8)], every=8
        )
        assert merged_sparse.snapshots == []

    def test_absorb_appends_and_adopts_state(self):
        target = SearchProgress(every=4)
        target.on_node(1, 0)
        other = self._part(4, [(4, 3.0, {"DOM": 1})])
        other.on_nodes(4, 4, depth=2)
        target.absorb(other)
        assert [s.nodes for s in target.snapshots] == [4]
        assert target._depth_counts == {0: 1, 2: 4}
        # finish() right after absorb must not duplicate the last snap.
        target.finish(4, 3.0, {"DOM": 1})
        assert len(target.snapshots) == 1
