"""Tests for the fleet controller (admission, drift, re-plan, evict)."""

from __future__ import annotations

import pytest

from repro.core import Host
from repro.errors import ModelError
from repro.fleet.controller import (
    FleetController,
    TenantClass,
    TenantSpec,
    scale_configuration_space,
    scale_descriptor_rates,
)
from repro.fleet.scenario import FleetScenarioParams, tenant_application
from repro.obs import Telemetry

BRONZE = TenantClass("bronze", ic_target=0.3)
GOLD = TenantClass("gold", ic_target=0.6)
IMPOSSIBLE = TenantClass("impossible", ic_target=1.0)

PARAMS = FleetScenarioParams(tenants=1)


@pytest.fixture(scope="module")
def app():
    return tenant_application(PARAMS, PARAMS.base_seed)


def spec(app, name="t0", tenant_class=BRONZE):
    return TenantSpec(
        name=name,
        descriptor=app.descriptor,
        slice_hosts=tuple(app.deployment.hosts),
        tenant_class=tenant_class,
    )


def controller(hosts=None, sustain_checks=2, **kwargs):
    hosts = hosts or [Host(f"s{i}", cores=16) for i in range(4)]
    return FleetController(
        hosts, Telemetry(), sustain_checks=sustain_checks, **kwargs
    )


class TestScaling:
    def test_scale_configuration_space(self, app):
        space = app.descriptor.configuration_space
        scaled = scale_configuration_space(space, 2.0)
        for before, after in zip(space, scaled):
            assert after.probability == before.probability
            assert after.label == before.label
            for source in space.sources:
                assert after.rate_of(source) == 2.0 * before.rate_of(source)

    def test_scale_descriptor_keeps_everything_else(self, app):
        scaled = scale_descriptor_rates(app.descriptor, 1.5)
        assert scaled.name == app.descriptor.name
        assert scaled.graph.to_dict() == app.descriptor.graph.to_dict()
        payload = scaled.to_dict()
        original = app.descriptor.to_dict()
        assert payload["edge_profiles"] == original["edge_profiles"]

    def test_bad_factor_rejected(self, app):
        with pytest.raises(ModelError):
            scale_descriptor_rates(app.descriptor, 0.0)


class TestAdmission:
    def test_admit_reserves_and_emits(self, app):
        ctl = controller()
        assert ctl.submit(spec(app)) == "admitted"
        assert ctl.counters()["admitted"] == 1
        assert ctl.pool.tenants == ("t0",)
        events = ctl._telemetry.events.of_type("fleet.admit")
        assert len(events) == 1
        fields = events[0].fields
        assert fields["tenant"] == "t0"
        assert fields["cores"] == sum(
            len(app.deployment.replicas_on(h))
            for h in app.deployment.host_names
        )
        assert fields["cache"] is False

    def test_sla_reject_emits_and_reserves_nothing(self, app):
        ctl = controller()
        decision = ctl.submit(spec(app, tenant_class=IMPOSSIBLE))
        assert decision == "rejected:sla"
        assert ctl.pool.tenants == ()
        [event] = ctl._telemetry.events.of_type("fleet.reject")
        assert event.fields["reason"] == "sla"

    def test_capacity_reject(self, app):
        ctl = controller(hosts=[Host("only", cores=64)])
        # The tenant needs three distinct shared hosts; one exists.
        assert ctl.submit(spec(app)) == "rejected:capacity"
        [event] = ctl._telemetry.events.of_type("fleet.reject")
        assert event.fields["reason"] == "capacity"

    def test_second_tenant_hits_store(self, app):
        ctl = controller()
        ctl.submit(spec(app, name="t0"))
        ctl.submit(spec(app, name="t1"))
        admits = ctl._telemetry.events.of_type("fleet.admit")
        assert [e.fields["cache"] for e in admits] == [False, True]
        assert ctl.store.hits == 1

    def test_duplicate_name_rejected(self, app):
        ctl = controller()
        ctl.submit(spec(app))
        with pytest.raises(ModelError, match="already submitted"):
            ctl.submit(spec(app))


class TestDriftAndReplan:
    def drifted_rates(self, app, factor):
        space = app.descriptor.configuration_space
        heaviest = space[space.sorted_by_total_rate()[0]]
        return {s: r * factor for s, r in sorted(heaviest.rates.items())}

    def test_sustained_drift_triggers_warm_replan(self, app):
        ctl = controller(sustain_checks=2)
        ctl.submit(spec(app))
        rates = self.drifted_rates(app, 1.05)
        ctl.observe_rates("t0", rates)
        assert ctl.replans_attempted == 0  # one fallback is not sustained
        ctl.observe_rates("t0", rates)
        assert ctl.replans_attempted == 1
        [event] = ctl._telemetry.events.of_type("fleet.replan")
        assert event.fields["warm"] is True
        assert event.fields["feasible"] is True
        assert event.fields["factor"] == pytest.approx(1.05)
        fallbacks = ctl._telemetry.events.of_type("config.fallback")
        assert all(e.fields["tenant"] == "t0" for e in fallbacks)
        # The replanned contract covers the drifted rates: no more
        # fallbacks, no second replan.
        ctl.observe_rates("t0", rates)
        ctl.observe_rates("t0", rates)
        assert ctl.replans_attempted == 1
        assert ctl.tenants["t0"].status == "active"
        assert ctl.tenants["t0"].drift_factor == pytest.approx(1.05)

    def test_in_contract_observations_reset_the_streak(self, app):
        ctl = controller(sustain_checks=2)
        ctl.submit(spec(app))
        out = self.drifted_rates(app, 1.05)
        calm = self.drifted_rates(app, 1.0)
        ctl.observe_rates("t0", out)
        ctl.observe_rates("t0", calm)
        ctl.observe_rates("t0", out)
        assert ctl.replans_attempted == 0

    def test_infeasible_replan_evicts(self, app):
        ctl = controller(sustain_checks=1)
        ctl.submit(spec(app, tenant_class=GOLD))
        # Massive drift: the scaled problem cannot meet the IC bound.
        ctl.observe_rates("t0", self.drifted_rates(app, 50.0))
        assert ctl.evicted == 1
        assert ctl.tenants["t0"].status == "evicted"
        assert ctl.pool.tenants == ()  # cores returned
        [replan] = ctl._telemetry.events.of_type("fleet.replan")
        assert replan.fields["feasible"] is False
        [evict] = ctl._telemetry.events.of_type("fleet.evict")
        assert evict.fields == {"tenant": "t0", "reason": "sla"}
        # Late monitor samples for the evicted tenant are ignored.
        ctl.observe_rates("t0", self.drifted_rates(app, 50.0))
        assert ctl.replans_attempted == 1

    def test_unknown_tenant_observations_ignored(self, app):
        ctl = controller()
        ctl.observe_rates("ghost", {"src": 1.0})
        assert ctl.replans_attempted == 0

    def test_replan_result_is_memoised(self, app):
        ctl = controller(sustain_checks=1)
        ctl.submit(spec(app, name="t0"))
        ctl.submit(spec(app, name="t1"))
        rates = self.drifted_rates(app, 1.05)
        ctl.observe_rates("t0", rates)
        ctl.observe_rates("t1", rates)
        replans = ctl._telemetry.events.of_type("fleet.replan")
        assert len(replans) == 2
        # Same app, class and factor: the second replan hits the store
        # and reports the same search effort.
        assert replans[0].fields["nodes"] == replans[1].fields["nodes"]
        assert ctl.replans_feasible == 2


class TestValidation:
    def test_sustain_checks_bounds(self):
        with pytest.raises(ModelError):
            controller(sustain_checks=0)
