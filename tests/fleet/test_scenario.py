"""Fleet scenario determinism and reporting tests.

The headline contract (ISSUE 3 acceptance): a 100-tenant scenario fanned
through ``repro.experiments.parallel`` produces **byte-identical** event
logs and reports for ``jobs=1`` and ``jobs=4``, and the strategy store
serves every repeat provisioning from cache.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.parallel import FabricProfile
from repro.fleet.report import render_fleet_report
from repro.fleet.scenario import FleetScenarioParams, run_fleet_scenario
from repro.fleet.store import StrategyStore
from repro.obs.validate import validate_lines


@pytest.fixture(scope="module")
def small_result():
    return run_fleet_scenario(
        FleetScenarioParams(tenants=12, distinct_apps=3), jobs=1
    )


class TestScenario:
    def test_every_tenant_gets_a_decision(self, small_result):
        admission = small_result.report["admission"]
        assert admission["submitted"] == 12
        assert (
            admission["admitted"]
            + admission["rejected_sla"]
            + admission["rejected_capacity"]
        ) == 12

    def test_admissions_after_prewarm_all_hit_the_store(self, small_result):
        events = small_result.events_jsonl.splitlines()
        admits = [
            json.loads(line)
            for line in events
            if json.loads(line)["type"] == "fleet.admit"
        ]
        assert admits
        assert all(record["cache"] for record in admits)
        store = small_result.report["store"]
        assert store["hits"] >= small_result.report["admission"]["submitted"]

    def test_events_validate_against_schema(self, small_result):
        problems = validate_lines(small_result.events_jsonl.splitlines())
        assert problems == []

    def test_events_are_sim_time_stamped(self, small_result):
        params = small_result.params
        times = [
            json.loads(line)["t"]
            for line in small_result.events_jsonl.splitlines()
        ]
        horizon = (
            params.tenants * params.arrival_spacing
            + params.drift_checks * params.check_spacing
        )
        assert all(0.0 <= t <= horizon for t in times)

    def test_report_renders(self, small_result):
        text = render_fleet_report(small_result.report)
        assert "fleet scenario report" in text
        assert "shared pool occupancy" in text
        assert "strategy store" in text

    def test_drift_produces_replans(self):
        result = run_fleet_scenario(
            FleetScenarioParams(
                tenants=8, distinct_apps=2, drift_every=2
            ),
            jobs=1,
        )
        assert result.report["admission"]["replans_attempted"] >= 1
        assert result.report["events"].get("config.fallback", 0) >= 1

    def test_high_drift_evicts_and_frees_cores(self):
        result = run_fleet_scenario(
            FleetScenarioParams(
                tenants=6,
                distinct_apps=2,
                drift_every=1,
                drift_factor=50.0,
            ),
            jobs=1,
        )
        admission = result.report["admission"]
        assert admission["evicted"] >= 1
        assert admission["active"] == (
            admission["admitted"] - admission["evicted"]
        )
        assert result.report["events"].get("fleet.evict", 0) >= 1

    def test_persistent_store_reused_across_runs(self, tmp_path):
        params = FleetScenarioParams(tenants=6, distinct_apps=2)
        first = run_fleet_scenario(
            params, jobs=1, store=StrategyStore(tmp_path / "store")
        )
        assert first.report["store"]["misses"] >= 0
        searched = first.report["store"]["entries"]
        again = run_fleet_scenario(
            params, jobs=1, store=StrategyStore(tmp_path / "store")
        )
        # Everything — prewarm included — is served from disk.
        assert again.report["store"]["entries"] == searched
        assert again.report["store"]["misses"] == 0


class TestCrossWorkerDeterminism:
    """The ISSUE 3 acceptance scenario: 100 tenants, jobs=1 vs jobs=4."""

    @pytest.fixture(scope="class")
    def hundred(self):
        params = FleetScenarioParams(tenants=100)
        serial = run_fleet_scenario(params, jobs=1)
        profile = FabricProfile(label="fleet-prewarm")
        parallel = run_fleet_scenario(params, jobs=4, profile=profile)
        return serial, parallel, profile

    def test_event_logs_byte_identical(self, hundred):
        serial, parallel, _ = hundred
        assert serial.events_jsonl.encode() == parallel.events_jsonl.encode()

    def test_reports_byte_identical(self, hundred):
        serial, parallel, _ = hundred
        a = json.dumps(serial.report, sort_keys=True).encode()
        b = json.dumps(parallel.report, sort_keys=True).encode()
        assert a == b

    def test_store_contents_identical(self, hundred):
        serial, parallel, _ = hundred
        assert serial.store.items() == parallel.store.items()

    def test_scenario_actually_exercised_the_fleet(self, hundred):
        serial, _, _ = hundred
        admission = serial.report["admission"]
        assert admission["submitted"] == 100
        assert admission["admitted"] >= 25
        assert admission["rejected_sla"] >= 1
        assert admission["rejected_capacity"] >= 1
        assert admission["replans_attempted"] >= 1

    def test_prewarm_ran_through_the_pool(self, hundred):
        _, _, profile = hundred
        summary = profile.summary()
        assert summary["n_tasks"] == 21  # 7 apps x 3 classes
        assert summary["jobs"] == 4
