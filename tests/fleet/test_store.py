"""Tests for the persistent strategy store (repro.fleet.store)."""

from __future__ import annotations

import json

import pytest

from repro.core.optimizer import (
    OptimizationProblem,
    SearchOutcome,
    ft_search,
)
from repro.fleet.store import (
    StoreError,
    StrategyStore,
    record_from_result,
    result_from_record,
    strategy_key,
)


@pytest.fixture
def solved(pipeline_deployment):
    result = ft_search(
        OptimizationProblem(pipeline_deployment, ic_target=0.5),
        time_limit=None,
        seed_incumbent=True,
    )
    assert result.outcome is SearchOutcome.OPTIMAL
    return pipeline_deployment, result


class TestStrategyKey:
    def test_deterministic(self, pipeline_deployment):
        descriptor = pipeline_deployment.descriptor
        hosts = pipeline_deployment.hosts
        a = strategy_key(descriptor, hosts, 2, 0.5)
        b = strategy_key(descriptor, hosts, 2, 0.5)
        assert a == b
        assert len(a) == 64  # sha256 hex

    def test_sensitive_to_every_input(
        self, pipeline_deployment, diamond_descriptor
    ):
        descriptor = pipeline_deployment.descriptor
        hosts = pipeline_deployment.hosts
        base = strategy_key(descriptor, hosts, 2, 0.5)
        assert strategy_key(diamond_descriptor, hosts, 2, 0.5) != base
        assert strategy_key(descriptor, hosts[:1], 1, 0.5) != base
        assert strategy_key(descriptor, hosts, 2, 0.6) != base
        assert (
            strategy_key(descriptor, hosts, 2, 0.5, signature="other")
            != base
        )


class TestRecords:
    def test_round_trip_preserves_result(self, solved):
        deployment, result = solved
        record = record_from_result(result)
        rebuilt = result_from_record(record, deployment)
        assert rebuilt.outcome is result.outcome
        assert rebuilt.best_cost == result.best_cost
        assert rebuilt.best_ic == result.best_ic
        assert rebuilt.stats.nodes_expanded == result.stats.nodes_expanded
        assert rebuilt.strategy == result.strategy

    def test_record_is_json_and_wall_clock_free(self, solved):
        _, result = solved
        record = record_from_result(result)
        text = json.dumps(record, sort_keys=True)
        assert json.loads(text) == record
        assert set(record) == {
            "outcome", "best_cost", "best_ic", "nodes", "strategy",
        }

    def test_infeasible_record_round_trips(self, tight_pipeline_deployment):
        result = ft_search(
            OptimizationProblem(tight_pipeline_deployment, ic_target=1.0),
            time_limit=None,
        )
        assert result.outcome is SearchOutcome.INFEASIBLE
        record = record_from_result(result)
        assert record["strategy"] is None
        rebuilt = result_from_record(record, tight_pipeline_deployment)
        assert rebuilt.strategy is None
        assert rebuilt.outcome is SearchOutcome.INFEASIBLE

    def test_malformed_record_rejected(self, pipeline_deployment):
        with pytest.raises(StoreError, match="missing field"):
            result_from_record({"outcome": "BST"}, pipeline_deployment)


class TestStore:
    def test_memory_hit_and_counters(self, solved):
        _, result = solved
        store = StrategyStore()
        record = record_from_result(result)
        assert store.get("k") is None
        store.put("k", record)
        assert store.get("k") == record
        assert (store.hits, store.misses) == (1, 1)
        assert len(store) == 1
        assert "k" in store

    def test_persistence_round_trip(self, solved, tmp_path):
        _, result = solved
        record = record_from_result(result)
        StrategyStore(tmp_path / "store").put("k", record)
        # A fresh store over the same directory finds the record.
        reopened = StrategyStore(tmp_path / "store")
        assert reopened.get("k") == record
        assert reopened.hits == 1
        # No leftover temp files from the atomic write.
        leftovers = list((tmp_path / "store").glob("*.tmp"))
        assert leftovers == []

    def test_corrupt_disk_record_raises(self, tmp_path):
        store_dir = tmp_path / "store"
        store_dir.mkdir()
        (store_dir / "bad.json").write_text("{not json")
        with pytest.raises(StoreError, match="corrupt"):
            StrategyStore(store_dir).get("bad")

    def test_put_validates_fields(self):
        with pytest.raises(StoreError, match="missing field"):
            StrategyStore().put("k", {"outcome": "BST"})

    def test_merge_first_write_wins(self, solved):
        _, result = solved
        record = record_from_result(result)
        other = dict(record, nodes=record["nodes"] + 1)
        store = StrategyStore()
        added = store.merge([("a", record), ("a", other), ("b", other)])
        assert added == 2
        assert store._memory["a"] == record
        assert store.stats()["entries"] == 2
