"""Engine behavior: suppression channels, reports, CLI exit codes."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main, run_smoke
from repro.analysis.diagnostics import load_allowlist
from repro.analysis.engine import run_analysis

FIXTURES = Path(__file__).parent / "fixtures"
NO_ALLOWLIST = FIXTURES / "missing-allowlist"


def _write_module(tmp_path: Path, name: str, source: str) -> Path:
    path = tmp_path / name
    path.write_text(source)
    return path


class TestInlineSuppression:
    def test_trailing_comment_suppresses_its_line(self, tmp_path):
        path = _write_module(
            tmp_path,
            "mod.py",
            '"""Doc."""\n'
            "import time\n"
            "t = time.time()  # repro: allow[R1] reason=trailing form\n",
        )
        report = run_analysis([path], allowlist_path=NO_ALLOWLIST)
        assert report.diagnostics == []
        assert len(report.suppressed) == 1
        assert report.suppressed[0][1] == "trailing form"

    def test_standalone_comment_binds_to_next_code_line(self, tmp_path):
        path = _write_module(
            tmp_path,
            "mod.py",
            '"""Doc."""\n'
            "import time\n"
            "# repro: allow[R1] reason=standalone form\n"
            "t = time.time()\n",
        )
        report = run_analysis([path], allowlist_path=NO_ALLOWLIST)
        assert report.diagnostics == []
        assert len(report.suppressed) == 1

    def test_suppression_is_rule_specific(self, tmp_path):
        path = _write_module(
            tmp_path,
            "mod.py",
            '"""Doc."""\n'
            "import time\n"
            "t = time.time()  # repro: allow[R2] reason=wrong rule\n",
        )
        report = run_analysis([path], allowlist_path=NO_ALLOWLIST)
        # The R1 finding survives AND the R2 comment is unused: two
        # findings from one bad suppression.
        rules = sorted(d.rule for d in report.diagnostics)
        assert rules == ["R1", "R8"]

    def test_r8_is_never_suppressible(self, tmp_path):
        path = _write_module(
            tmp_path,
            "mod.py",
            '"""Doc."""\n'
            "# repro: allow[R8] reason=self-waiver must not work\n"
            "x = 1\n",
        )
        report = run_analysis([path], allowlist_path=NO_ALLOWLIST)
        assert [d.rule for d in report.diagnostics] == ["R8"]
        assert "unused suppression" in report.diagnostics[0].message

    def test_unknown_rule_id_is_malformed(self, tmp_path):
        path = _write_module(
            tmp_path,
            "mod.py",
            '"""Doc."""\n'
            "# repro: allow[R99] reason=no such rule\n"
            "x = 1\n",
        )
        report = run_analysis([path], allowlist_path=NO_ALLOWLIST)
        assert [d.rule for d in report.diagnostics] == ["R8"]


class TestAllowlist:
    def _bad_module(self, tmp_path: Path) -> Path:
        return _write_module(
            tmp_path,
            "mod.py",
            '"""Doc."""\nimport time\nt = time.time()\n',
        )

    def test_path_glob_entry_suppresses(self, tmp_path):
        target = self._bad_module(tmp_path)
        allowlist = tmp_path / "allow.txt"
        allowlist.write_text(f"{tmp_path.as_posix()}/* R1 harness file\n")
        report = run_analysis([target], allowlist_path=allowlist)
        assert report.diagnostics == []
        assert len(report.suppressed) == 1
        assert report.suppressed[0][1] == "harness file"
        assert report.allowlist[0].matches == 1

    def test_wildcard_rule_matches_any_rule(self, tmp_path):
        target = self._bad_module(tmp_path)
        allowlist = tmp_path / "allow.txt"
        allowlist.write_text(f"{tmp_path.as_posix()}/* * vendored\n")
        report = run_analysis([target], allowlist_path=allowlist)
        assert report.diagnostics == []

    def test_non_matching_entry_does_not_suppress(self, tmp_path):
        target = self._bad_module(tmp_path)
        allowlist = tmp_path / "allow.txt"
        allowlist.write_text("some.other.module R1 elsewhere\n")
        report = run_analysis([target], allowlist_path=allowlist)
        assert [d.rule for d in report.diagnostics] == ["R1"]

    def test_malformed_allowlist_line_raises(self, tmp_path):
        allowlist = tmp_path / "allow.txt"
        allowlist.write_text("just-a-glob-no-rule-or-reason\n")
        with pytest.raises(ValueError):
            load_allowlist(allowlist)

    def test_missing_allowlist_path_means_no_allowlist(self, tmp_path):
        target = self._bad_module(tmp_path)
        report = run_analysis([target], allowlist_path=tmp_path / "absent.txt")
        assert [d.rule for d in report.diagnostics] == ["R1"]
        assert report.allowlist == []


class TestReport:
    def test_json_report_shape(self, tmp_path):
        report = run_analysis([FIXTURES / "bad"], allowlist_path=NO_ALLOWLIST)
        data = json.loads(report.to_json())
        assert data["tool"] == "repro.analysis"
        assert data["version"] == 1
        assert data["ok"] is False
        assert data["files_checked"] == 19
        assert sorted(data["counts"]) == sorted(f"R{n}" for n in range(1, 11))
        assert sum(data["counts"].values()) == len(data["diagnostics"])
        first = data["diagnostics"][0]
        assert set(first) == {"file", "line", "col", "rule", "message"}

    def test_json_is_deterministic(self):
        a = run_analysis([FIXTURES / "bad"], allowlist_path=NO_ALLOWLIST)
        b = run_analysis([FIXTURES / "bad"], allowlist_path=NO_ALLOWLIST)
        assert a.to_json() == b.to_json()

    def test_render_text_summary_line(self):
        report = run_analysis([FIXTURES / "good"], allowlist_path=NO_ALLOWLIST)
        assert report.render_text().endswith(
            "15 file(s) checked, 0 finding(s), 2 suppressed"
        )

    def test_syntax_error_is_reported_not_fatal(self, tmp_path):
        _write_module(tmp_path, "broken.py", "def oops(:\n")
        report = run_analysis([tmp_path], allowlist_path=NO_ALLOWLIST)
        assert len(report.errors) == 1
        assert not report.ok


class TestCli:
    def test_good_corpus_exits_zero(self, capsys):
        code = main(
            [
                str(FIXTURES / "good"),
                "--allowlist",
                str(NO_ALLOWLIST),
            ]
        )
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_bad_corpus_exits_one(self, capsys):
        code = main([str(FIXTURES / "bad"), "--allowlist", str(NO_ALLOWLIST)])
        assert code == 1
        assert "R1" in capsys.readouterr().out

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["definitely/not/here"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_json_format_and_out_file(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(
            [
                str(FIXTURES / "bad"),
                "--allowlist",
                str(NO_ALLOWLIST),
                "--format",
                "json",
                "--out",
                str(out),
            ]
        )
        assert code == 1
        stdout = capsys.readouterr().out
        assert json.loads(stdout) == json.loads(out.read_text())

    def test_sarif_format_and_exit_code_contract(self, tmp_path, capsys):
        # SARIF output must not change the exit-code contract: findings
        # still exit 1, and the log carries one result per finding.
        sarif_path = tmp_path / "lint.sarif"
        code = main(
            [
                str(FIXTURES / "bad"),
                "--allowlist",
                str(NO_ALLOWLIST),
                "--format",
                "sarif",
                "--sarif",
                str(sarif_path),
            ]
        )
        assert code == 1
        stdout = capsys.readouterr().out
        log = json.loads(stdout)
        assert log == json.loads(sarif_path.read_text())
        assert log["version"] == "2.1.0"
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "repro.analysis"
        rules = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rules == [f"R{n}" for n in range(1, 11)]
        results = run["results"]
        assert len(results) == 38
        first = results[0]
        assert first["level"] == "error"
        region = first["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1
        assert region["startColumn"] >= 1  # SARIF columns are 1-based

    def test_sarif_clean_tree_exits_zero_with_empty_results(self, capsys):
        code = main(
            [
                str(FIXTURES / "good"),
                "--allowlist",
                str(NO_ALLOWLIST),
                "--format",
                "sarif",
            ]
        )
        assert code == 0
        log = json.loads(capsys.readouterr().out)
        assert log["runs"][0]["results"] == []
        assert log["runs"][0]["invocations"][0]["executionSuccessful"]

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (f"R{n}" for n in range(1, 11)):
            assert rule_id in out

    def test_smoke_passes_on_checked_in_corpus(self, capsys):
        assert run_smoke(FIXTURES) == 0
        assert "smoke: OK" in capsys.readouterr().out
