"""The shipped tree must satisfy its own linter — and the linter must
actually notice when it stops being true.

The mutation tests copy ``src/repro`` to a temp tree, seed one violation
of the schema cross-check, and assert R4 fires: this is the evidence
that a green run means "emitters and EVENT_SCHEMA agree", not "the
check silently matched nothing".
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.analysis.engine import AnalysisReport, run_analysis
from repro.analysis.facts import collect_facts
from repro.obs.events import (
    check_field_value,
    field_types,
    known_event_types,
    required_fields,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"
ALLOWLIST = REPO_ROOT / "analysis-allowlist.txt"
EVENTS = SRC / "obs" / "events.py"


def _analyze(*roots: Path) -> AnalysisReport:
    return run_analysis(list(roots), allowlist_path=ALLOWLIST)


@pytest.fixture()
def src_copy(tmp_path):
    """A mutable copy of src/repro (same dotted module names)."""
    copy = tmp_path / "src" / "repro"
    shutil.copytree(SRC, copy)
    return copy


class TestShippedTreeIsClean:
    @pytest.fixture(autouse=True)
    def _from_repo_root(self, monkeypatch):
        # The allowlist's path globs (benchmarks/*) are repo-relative,
        # so run the gate scan exactly as CI does: from the repo root
        # with relative paths.
        monkeypatch.chdir(REPO_ROOT)

    def test_no_findings_no_errors(self):
        # Same scan CI gates on: the library tree plus the benchmark
        # harness (whose wall-clock reads the allowlist waives).
        report = _analyze(Path("src/repro"), Path("benchmarks"))
        assert report.errors == []
        assert [d.render() for d in report.diagnostics] == []

    def test_every_allowlist_entry_earns_its_keep(self):
        # Stale allowlist entries are invisible risk: they would mask a
        # future real violation. Each checked-in entry must match today.
        report = _analyze(Path("src/repro"), Path("benchmarks"))
        unused = [e.pattern for e in report.allowlist if e.matches == 0]
        assert unused == []

    def test_inline_suppressions_all_used(self):
        report = _analyze(Path("src/repro"), Path("benchmarks"))
        assert all(s.used for s in report.suppressions)


class TestSchemaAgreement:
    def test_ast_view_matches_runtime_view(self):
        # The linter parses EVENT_SCHEMA from source; the runtime
        # validator imports it. Both views must name the same types with
        # the same required fields, or R4 and obs.validate could give
        # contradictory verdicts on the same tree.
        facts = collect_facts(EVENTS, EVENTS.as_posix())
        parsed = {d.event_type: d.fields for d in facts.schema_defs}
        assert sorted(parsed) == list(known_event_types())
        for event_type, fields in parsed.items():
            assert fields == required_fields(event_type)

    def test_ast_types_match_runtime_types(self):
        # Same pin for the typed layer: the per-field tags the linter
        # parses out of EVENT_SCHEMA must be exactly the tags the
        # runtime validator enforces.
        facts = collect_facts(EVENTS, EVENTS.as_posix())
        for schema_def in facts.schema_defs:
            assert schema_def.types is not None, schema_def.event_type
            assert schema_def.type_map() == field_types(schema_def.event_type)

    @pytest.mark.parametrize(
        ("tag", "value", "ok"),
        [
            ("int", 3, True),
            ("int", True, False),  # bool is not an int here
            ("float", 3, True),  # ints coerce into float fields
            ("float", 1.5, True),
            ("float", None, False),
            ("float?", None, True),
            ("str", "x", True),
            ("str", 1, False),
            ("bool", True, True),
            ("bool", 1, False),
            ("list", (1, 2), True),  # tuples pass as list payloads
            ("list", [1], True),
            ("dict", {}, True),
            ("dict", [], False),
            ("any", object(), True),
            ("any?", None, True),
        ],
    )
    def test_runtime_tag_semantics_mirror_static_ones(self, tag, value, ok):
        # The runtime check and the linter's _tag_compatible() implement
        # the same lattice (int-into-float, bool excluded from numerics,
        # trailing '?' for nullable). Pin the runtime side value-by-value
        # so the two can't drift apart silently.
        assert check_field_value(tag, value) is ok

    def test_removing_a_schema_entry_fails_r4(self, src_copy):
        events = src_copy / "obs" / "events.py"
        source = events.read_text()
        needle = '"span.start": {"span": "int", "name": "str"},'
        assert needle in source
        events.write_text(source.replace(needle, ""))
        report = _analyze(src_copy)
        r4 = [d for d in report.diagnostics if d.rule == "R4"]
        assert r4, "dropping a schema entry must trip R4"
        assert any("span.start" in d.message for d in r4)

    def test_emitting_unregistered_type_fails_r4(self, src_copy):
        events = src_copy / "obs" / "events.py"
        with events.open("a") as handle:
            handle.write(
                "\n\ndef _schema_drift_probe(log: EventLog) -> None:\n"
                '    """Mutation-test probe."""\n'
                '    log.emit("not.a.registered.event", x=1)\n'
            )
        report = _analyze(src_copy)
        r4 = [d for d in report.diagnostics if d.rule == "R4"]
        assert any(
            "'not.a.registered.event' is not declared" in d.message
            for d in r4
        )

    def test_dead_schema_entry_fails_r4(self, src_copy):
        events = src_copy / "obs" / "events.py"
        source = events.read_text()
        needle = '"sim.run.start": {"until": "float?"},'
        assert needle in source
        events.write_text(
            source.replace(
                needle,
                needle + '\n    "never.emitted": frozenset({"x"}),',
            )
        )
        report = _analyze(src_copy)
        r4 = [d for d in report.diagnostics if d.rule == "R4"]
        assert any("'never.emitted' has no emitter" in d.message for d in r4)


class TestSeededViolationsAreCaught:
    """End-to-end: a fresh violation anywhere in the tree exits dirty."""

    @pytest.mark.parametrize(
        ("relative", "snippet", "rule"),
        [
            (
                "sim/kernel.py",
                "\n\ndef _probe_wallclock() -> float:\n"
                '    """Mutation-test probe."""\n'
                "    import time\n\n"
                "    return time.time()\n",
                "R1",
            ),
            (
                "laar/middleware.py",
                "\n\ndef _probe_unseeded() -> object:\n"
                '    """Mutation-test probe."""\n'
                "    import random\n\n"
                "    return random.Random()\n",
                "R2",
            ),
            (
                "core/strategy.py",
                "\n\ndef _probe_ordering(hosts: list) -> list:\n"
                '    """Mutation-test probe."""\n'
                "    return [h for h in set(hosts)]\n",
                "R3",
            ),
            (
                "sim/kernel.py",
                "\n\ndef _probe_identity(x: object) -> int:\n"
                '    """Mutation-test probe."""\n'
                "    return id(x)\n",
                "R6",
            ),
        ],
    )
    def test_seeded_violation_fires(self, src_copy, relative, snippet, rule):
        target = src_copy / relative
        with target.open("a") as handle:
            handle.write(snippet)
        report = _analyze(src_copy)
        fired = [d for d in report.diagnostics if d.rule == rule]
        assert fired, f"seeded {rule} violation in {relative} not caught"
        assert not report.ok
