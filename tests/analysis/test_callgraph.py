"""Call-graph construction: each resolution layer, pinned in isolation.

Every test builds a tiny package in ``tmp_path`` (with the ``__init__``
chain that gives files real dotted module names) and asserts on the
resolved edges, so a regression names the exact resolution layer that
broke rather than a downstream rule.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.callgraph import EXTERNAL, CallGraph, build_call_graph
from repro.analysis.facts import FileFacts, collect_facts


def _build(
    tmp_path: Path,
    modules: dict[str, str],
    strict: tuple[str, ...] = ("pkg",),
) -> tuple[CallGraph, dict[str, FileFacts]]:
    all_facts = []
    by_module: dict[str, FileFacts] = {}
    (tmp_path / "pkg").mkdir(exist_ok=True)
    (tmp_path / "pkg" / "__init__.py").touch()
    for name, source in modules.items():
        path = tmp_path / "pkg" / f"{name}.py"
        path.write_text(source)
    for path in sorted((tmp_path / "pkg").glob("*.py")):
        facts = collect_facts(path, str(path))
        all_facts.append(facts)
        by_module[facts.module] = facts
    return build_call_graph(all_facts, strict_prefixes=strict), by_module


def _edges(graph: CallGraph) -> list[tuple[str, str, str]]:
    return [(s.caller, s.callee, s.resolution) for s in graph.call_sites]


class TestResolutionLayers:
    def test_direct_same_module_call(self, tmp_path):
        graph, _ = _build(
            tmp_path,
            {
                "mod": (
                    '"""Doc."""\n'
                    "def helper() -> int:\n"
                    "    return 1\n"
                    "def caller() -> int:\n"
                    "    return helper()\n"
                )
            },
        )
        assert ("pkg.mod.caller", "pkg.mod.helper", "direct") in _edges(graph)

    def test_alias_resolves_through_package_reexport(self, tmp_path):
        graph, _ = _build(
            tmp_path,
            {
                "__init__": '"""Doc."""\nfrom pkg.impl import work\n',
                "impl": (
                    '"""Doc."""\n'
                    "def work() -> int:\n"
                    "    return 1\n"
                ),
                "app": (
                    '"""Doc."""\n'
                    "from pkg import work\n"
                    "def run() -> int:\n"
                    "    return work()\n"
                ),
            },
        )
        assert ("pkg.app.run", "pkg.impl.work", "alias") in _edges(graph)

    def test_constructor_call_resolves_to_init(self, tmp_path):
        graph, _ = _build(
            tmp_path,
            {
                "mod": (
                    '"""Doc."""\n'
                    "class Widget:\n"
                    "    def __init__(self) -> None:\n"
                    "        self.x = 1\n"
                    "def make() -> Widget:\n"
                    "    return Widget()\n"
                )
            },
        )
        assert (
            "pkg.mod.make",
            "pkg.mod.Widget.__init__",
            "constructor",
        ) in _edges(graph)

    def test_self_method_call(self, tmp_path):
        graph, _ = _build(
            tmp_path,
            {
                "mod": (
                    '"""Doc."""\n'
                    "class Widget:\n"
                    "    def a(self) -> int:\n"
                    "        return self.b()\n"
                    "    def b(self) -> int:\n"
                    "        return 1\n"
                )
            },
        )
        assert (
            "pkg.mod.Widget.a",
            "pkg.mod.Widget.b",
            "self",
        ) in _edges(graph)

    def test_annotated_receiver_resolves_by_type(self, tmp_path):
        graph, _ = _build(
            tmp_path,
            {
                "mod": (
                    '"""Doc."""\n'
                    "class Widget:\n"
                    "    def poke(self) -> int:\n"
                    "        return 1\n"
                    "def use(w: Widget) -> int:\n"
                    "    return w.poke()\n"
                )
            },
        )
        assert (
            "pkg.mod.use",
            "pkg.mod.Widget.poke",
            "receiver",
        ) in _edges(graph)

    def test_unique_method_name_fallback(self, tmp_path):
        graph, _ = _build(
            tmp_path,
            {
                "mod": (
                    '"""Doc."""\n'
                    "class Widget:\n"
                    "    def frobnicate(self) -> int:\n"
                    "        return 1\n"
                    "def use(w) -> int:\n"
                    "    return w.frobnicate()\n"
                )
            },
        )
        assert (
            "pkg.mod.use",
            "pkg.mod.Widget.frobnicate",
            "unique",
        ) in _edges(graph)

    def test_known_external_receiver_blocks_the_fallback(self, tmp_path):
        # A receiver whose type resolves to something outside the scan
        # must NOT fall back to unique-method matching: guessing there
        # would attribute foreign behavior to scanned code.
        graph, _ = _build(
            tmp_path,
            {
                "mod": (
                    '"""Doc."""\n'
                    "import queue\n"
                    "class Widget:\n"
                    "    def put(self) -> int:\n"
                    "        return 1\n"
                    "def use(q: queue.Queue) -> None:\n"
                    "    q.put()\n"
                )
            },
        )
        assert all(s.callee != "pkg.mod.Widget.put" for s in graph.call_sites)


class TestGraphQueries:
    def test_enclosing_function_finds_nested_scope(self, tmp_path):
        graph, by_module = _build(
            tmp_path,
            {
                "mod": (
                    '"""Doc."""\n'
                    "def outer() -> int:\n"
                    "    def inner() -> int:\n"
                    "        return 1\n"
                    "    return inner()\n"
                )
            },
        )
        facts = by_module["pkg.mod"]
        ret = next(
            n
            for n in ast.walk(facts.tree)
            if isinstance(n, ast.Return) and isinstance(n.value, ast.Constant)
        )
        info = graph.enclosing_function(facts, ret)
        assert info is not None
        assert info.qualname == "pkg.mod.outer.inner"
        assert info.is_nested

    def test_external_prefix_marks_foreign_types(self, tmp_path):
        graph, by_module = _build(
            tmp_path,
            {
                "mod": (
                    '"""Doc."""\n'
                    "import queue\n"
                    "def use(q: queue.Queue) -> None:\n"
                    "    q.get()\n"
                )
            },
        )
        facts = by_module["pkg.mod"]
        call = next(n for n in ast.walk(facts.tree) if isinstance(n, ast.Call))
        info = graph.functions["pkg.mod.use"]
        rtype = graph.receiver_type(info, facts, call.func.value)
        assert rtype == f"{EXTERNAL}queue.Queue"

    def test_call_sites_are_deterministically_ordered(self, tmp_path):
        source = {
            "mod": (
                '"""Doc."""\n'
                "def a() -> int:\n"
                "    return 1\n"
                "def b() -> int:\n"
                "    return a()\n"
                "def c() -> int:\n"
                "    return a() + b()\n"
            )
        }
        first, _ = _build(tmp_path, source)
        again, _ = _build(tmp_path, source)
        assert _edges(first) == _edges(again)
        keys = [(s.file, s.line, s.col, s.callee) for s in first.call_sites]
        assert keys == sorted(keys)
