"""Effect inference: taint collection, propagation, budget carve-out.

The headline pin here is old-miss/new-catch: the cross-function leak
fixture produces ZERO findings under per-file scanning (the pre-graph
linter's view) and exactly the R1/R2 pair under the whole-program pass.
That asymmetry is the reason the call graph exists.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.callgraph import build_call_graph
from repro.analysis.effects import (
    KIND_RNG,
    KIND_WALLCLOCK,
    EffectAnalysis,
)
from repro.analysis.engine import run_analysis
from repro.analysis.facts import collect_facts
from repro.analysis.rules import check_file

FIXTURES = Path(__file__).parent / "fixtures"
NO_ALLOWLIST = FIXTURES / "missing-allowlist"


def _effects(tmp_path: Path, source: str) -> EffectAnalysis:
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "__init__.py").touch()
    path = tmp_path / "pkg" / "mod.py"
    path.write_text(source)
    facts = collect_facts(path, str(path))
    return EffectAnalysis(build_call_graph([facts]))


class TestIntrinsicSites:
    def test_wallclock_read_taints_its_function(self, tmp_path):
        effects = _effects(
            tmp_path,
            '"""Doc."""\n'
            "import time\n"
            "def stamp() -> float:\n"
            "    return time.time()\n",
        )
        taints = effects.taint_of("pkg.mod.stamp")
        assert KIND_WALLCLOCK in taints
        chain = taints[KIND_WALLCLOCK]
        assert len(chain) == 1
        assert effects.render_chain(chain).startswith("time.time() (")

    def test_unseeded_rng_taints_its_function(self, tmp_path):
        effects = _effects(
            tmp_path,
            '"""Doc."""\n'
            "import random\n"
            "def draw() -> float:\n"
            "    return random.random()\n",
        )
        assert KIND_RNG in effects.taint_of("pkg.mod.draw")

    def test_budget_confined_read_does_not_taint(self, tmp_path):
        # A deadline check whose clock value only ever feeds comparisons
        # cannot leak nondeterminism into results, so the function stays
        # clean for callers (the placement_search carve-out).
        effects = _effects(
            tmp_path,
            '"""Doc."""\n'
            "import time\n"
            "def expired(deadline: float) -> bool:\n"
            "    return time.monotonic() > deadline\n",
        )
        assert effects.taint_of("pkg.mod.expired") == {}
        (site,) = effects.intrinsic["pkg.mod.expired"]
        assert site.budget_only

    def test_escaping_read_is_not_budget_confined(self, tmp_path):
        effects = _effects(
            tmp_path,
            '"""Doc."""\n'
            "import time\n"
            "def leak(deadline: float) -> float:\n"
            "    now = time.monotonic()\n"
            "    if now > deadline:\n"
            "        return 0.0\n"
            "    return now\n",  # the read escapes via the return
        )
        assert KIND_WALLCLOCK in effects.taint_of("pkg.mod.leak")


class TestPropagation:
    def test_taint_flows_through_two_hops(self, tmp_path):
        effects = _effects(
            tmp_path,
            '"""Doc."""\n'
            "import time\n"
            "def read() -> float:\n"
            "    return time.time()\n"
            "def middle() -> float:\n"
            "    return read()\n"
            "def top() -> float:\n"
            "    return middle()\n",
        )
        chain = effects.taint_of("pkg.mod.top")[KIND_WALLCLOCK]
        assert [step.name for step in chain] == [
            "pkg.mod.middle",
            "pkg.mod.read",
            "time.time()",
        ]
        rendered = effects.render_chain(chain)
        assert rendered.count(" -> ") == 2

    def test_chain_steps_carry_file_and_line(self, tmp_path):
        effects = _effects(
            tmp_path,
            '"""Doc."""\n'
            "import time\n"
            "def read() -> float:\n"
            "    return time.time()\n"
            "def top() -> float:\n"
            "    return read()\n",
        )
        chain = effects.taint_of("pkg.mod.top")[KIND_WALLCLOCK]
        for step in chain:
            assert step.file.endswith("mod.py")
            assert step.line > 0
        assert chain[0].line == 6  # the call site inside top()
        assert chain[1].line == 4  # the intrinsic read inside read()


class TestOldMissNewCatch:
    """The acceptance pin: invisible locally, caught interprocedurally."""

    LEAK = FIXTURES / "bad" / "repro" / "sim" / "leak.py"

    def test_per_file_scan_misses_the_leak(self):
        # leak.py itself contains no intrinsic violation — the wall
        # clock and RNG live two modules away — so the per-file rules
        # (the old linter's entire power) see a clean file.
        facts = collect_facts(self.LEAK, str(self.LEAK))
        assert check_file(facts) == []

    def test_whole_program_pass_catches_it(self):
        report = run_analysis([FIXTURES / "bad"], allowlist_path=NO_ALLOWLIST)
        leak_hits = [
            (d.line, d.rule, d.message)
            for d in report.diagnostics
            if d.file.endswith("sim/leak.py")
        ]
        assert [(line, rule) for line, rule, _ in leak_hits] == [
            (14, "R1"),
            (15, "R2"),
        ]
        for _, _, message in leak_hits:
            assert "[chain:" in message
