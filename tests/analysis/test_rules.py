"""Exact-diagnostic tests for every rule, pinned on the fixture corpus.

Each rule gets one bad fixture file and the good corpus must stay clean;
assertions pin file, line *and* rule id so a rule that drifts (fires on
the wrong construct, or stops firing) fails loudly rather than just
changing a count.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.engine import AnalysisReport, run_analysis
from repro.analysis.rules import RULE_IDS, RULES

FIXTURES = Path(__file__).parent / "fixtures"
NO_ALLOWLIST = FIXTURES / "missing-allowlist"


def _analyze(corpus: str) -> AnalysisReport:
    return run_analysis([FIXTURES / corpus], allowlist_path=NO_ALLOWLIST)


def _hits(report: AnalysisReport, filename: str) -> list[tuple[int, str]]:
    """(line, rule) pairs for one fixture file, in report order."""
    return [
        (d.line, d.rule)
        for d in report.diagnostics
        if d.file.endswith(filename)
    ]


class TestBadCorpus:
    def setup_method(self) -> None:
        self.report = _analyze("bad")

    def test_r1_wallclock_direct_aliased_and_datetime(self):
        assert _hits(self.report, "sim/wallclock.py") == [
            (11, "R1"),
            (16, "R1"),
            (21, "R1"),
        ]

    def test_r1_alias_resolves_to_real_target(self):
        aliased = [
            d
            for d in self.report.diagnostics
            if d.file.endswith("sim/wallclock.py") and d.line == 16
        ]
        assert len(aliased) == 1
        assert "time.monotonic()" in aliased[0].message

    def test_r2_unseeded_module_level_and_entropy(self):
        assert _hits(self.report, "sim/unseeded.py") == [
            (9, "R2"),
            (14, "R2"),
            (19, "R2"),
        ]

    def test_r3_for_loop_listify_and_comprehension(self):
        assert _hits(self.report, "ordering.py") == [
            (7, "R3"),
            (14, "R3"),
            (19, "R3"),
        ]

    def test_r4_unknown_type_missing_fields_and_type_mismatch(self):
        assert _hits(self.report, "obs/emitters.py") == [
            (6, "R4"),
            (7, "R4"),
            (9, "R4"),
        ]
        messages = [
            d.message
            for d in self.report.diagnostics
            if d.file.endswith("obs/emitters.py")
        ]
        assert "'not.in.schema' is not declared" in messages[0]
        assert "missing required payload field(s): port" in messages[1]
        assert (
            "field 'count': payload is str but the schema declares int"
            in messages[2]
        )

    def test_r4_schema_side_findings(self):
        assert _hits(self.report, "obs/schema.py") == [
            (6, "R4"),
            (9, "R4"),
            (9, "R4"),
            (9, "R4"),
        ]
        messages = [
            d.message
            for d in self.report.diagnostics
            if d.file.endswith("obs/schema.py")
        ]
        assert "'ghost.event' has no emitter" in messages[0]
        assert "'ghostfield' of 'typed.sample' is never passed" in messages[1]
        assert "'ratio' of 'typed.sample' is never passed" in messages[2]
        assert "unknown type tag 'quaternion'" in messages[3]

    def test_r5_unfrozen_spec(self):
        assert _hits(self.report, "bad/repro/specs.py") == [(7, "R5")]

    def test_r6_id_and_hash_on_sim_path(self):
        assert _hits(self.report, "sim/identity.py") == [
            (6, "R6"),
            (11, "R6"),
        ]

    def test_r7_fence_catches_stdlib_and_repro_fabric(self):
        hits = _hits(self.report, "sim/fence.py")
        assert hits == [(3, "R7"), (5, "R7")]
        messages = [
            d.message
            for d in self.report.diagnostics
            if d.file.endswith("sim/fence.py")
        ]
        assert "'threading'" in messages[0]
        assert "'repro.experiments.parallel'" in messages[1]

    def test_r7_fence_covers_the_deterministic_core(self):
        hits = _hits(self.report, "core/fence.py")
        assert hits == [(3, "R7"), (5, "R7"), (10, "R9")]
        messages = [
            d.message
            for d in self.report.diagnostics
            if d.file.endswith("core/fence.py")
        ]
        assert "'multiprocessing'" in messages[0]
        assert "'repro.core.optimizer.parallel'" in messages[1]
        assert "outside the audited home" in messages[2]

    def test_r9_shared_state_ctor_value_lock_and_acquire(self):
        assert _hits(self.report, "bad/repro/shared.py") == [
            (8, "R9"),
            (9, "R9"),
            (10, "R9"),
            (11, "R9"),
        ]
        messages = [
            d.message
            for d in self.report.diagnostics
            if d.file.endswith("bad/repro/shared.py")
        ]
        assert "creates cross-process shared state" in messages[0]
        assert "raw .value access" in messages[1]
        assert "lock acquired outside the audited" in messages[2]
        assert "bare .acquire()" in messages[3]

    def test_r10_fabric_worker_hygiene(self):
        assert _hits(self.report, "bad/repro/driver.py") == [
            (27, "R10"),
            (28, "R10"),
            (33, "R10"),
            (34, "R10"),
        ]
        messages = [
            d.message
            for d in self.report.diagnostics
            if d.file.endswith("bad/repro/driver.py")
        ]
        assert "lambda submitted to run_tasks" in messages[0]
        assert "unannotated payload 'task'" in messages[1]
        assert "nested function run_nested()" in messages[2]
        assert "MutableJob is not a frozen dataclass" in messages[3]

    def test_interprocedural_leak_fires_at_the_sim_call_site(self):
        # The helpers live outside the sim path, so local scanning of
        # leak.py sees nothing; the effect pass walks the call graph and
        # fires R1/R2 where taint crosses into repro.sim, with the chain
        # rendered in the message.
        assert _hits(self.report, "sim/leak.py") == [
            (14, "R1"),
            (15, "R2"),
        ]
        messages = [
            d.message
            for d in self.report.diagnostics
            if d.file.endswith("sim/leak.py")
        ]
        assert (
            "sim-path call into repro.util.timing.stamp_run()" in messages[0]
        )
        assert "[chain: repro.util.timing._read_clock" in messages[0]
        assert "-> time.time()" in messages[0]
        assert "sim-path call into repro.util.timing.draw()" in messages[1]
        assert "[chain: random.random()" in messages[1]

    def test_helper_module_still_gets_local_findings(self):
        # The tainted helpers themselves are flagged at their intrinsic
        # sites too — interprocedural findings add to, not replace, the
        # local ones.
        assert _hits(self.report, "util/timing.py") == [
            (14, "R1"),
            (24, "R2"),
        ]

    def test_r8_malformed_and_unused(self):
        assert _hits(self.report, "bad/repro/suppress.py") == [
            (3, "R8"),
            (6, "R8"),
        ]

    def test_every_rule_fires_somewhere(self):
        fired = {d.rule for d in self.report.diagnostics}
        assert fired == set(RULE_IDS)

    def test_total_finding_count_is_pinned(self):
        # A new finding (or a silently dropped one) must be a conscious
        # fixture change, not drift.
        assert len(self.report.diagnostics) == 38
        assert not self.report.errors

    def test_diagnostics_render_as_path_line_col_rule(self):
        first = self.report.diagnostics[0]
        rendered = first.render()
        assert rendered == (
            f"{first.file}:{first.line}:{first.col}"
            f" {first.rule} {first.message}"
        )


class TestGoodCorpus:
    def test_clean_and_error_free(self):
        report = _analyze("good")
        assert report.diagnostics == []
        assert report.errors == []
        assert report.ok


class TestAuditedFenceExceptions:
    """The R7 exception table is exactly as large as it needs to be."""

    REPO_SRC = Path(__file__).parents[2] / "src"

    def _fence(self, module: str) -> list:
        from repro.analysis.facts import collect_facts
        from repro.analysis.rules import _check_import_fence

        path = self.REPO_SRC / (module.replace(".", "/") + ".py")
        return _check_import_fence(collect_facts(path, str(path)))

    def test_real_driver_modules_pass_through_the_table(self):
        # With the audited exceptions in place, the real parallel
        # driver and its lazy dispatcher are fence-clean.
        assert self._fence("repro.core.optimizer.parallel") == []
        assert self._fence("repro.core.optimizer.ftsearch") == []

    def test_every_exception_entry_earns_its_keep(self, monkeypatch):
        # Dropping the table must surface findings in the exact modules
        # it names — a stale entry (or a blanket one) fails here.
        import repro.analysis.rules as rules

        monkeypatch.setattr(rules, "_R7_AUDITED_EXCEPTIONS", {})
        for module in (
            "repro.core.optimizer.parallel",
            "repro.core.optimizer.ftsearch",
        ):
            findings = self._fence(module)
            assert findings, f"{module} no longer needs its exception"
            assert all(d.rule == "R7" for d in findings)

    def test_exception_keys_are_exact_modules(self):
        from repro.analysis.rules import _R7_AUDITED_EXCEPTIONS

        for module in _R7_AUDITED_EXCEPTIONS:
            path = self.REPO_SRC / (module.replace(".", "/") + ".py")
            assert path.is_file(), f"exception names missing {module}"

    def test_used_suppressions_are_counted_not_reported(self):
        report = _analyze("good")
        assert len(report.suppressed) == 2
        files = {d.file.rsplit("/", 1)[-1] for d, _ in report.suppressed}
        assert files == {"suppress.py", "budget.py"}
        assert all(d.rule == "R1" for d, _ in report.suppressed)


class TestRuleCatalog:
    def test_ten_rules_with_stable_ids(self):
        assert [rule.rule_id for rule in RULES] == [
            f"R{n}" for n in range(1, 11)
        ]

    def test_sim_path_scoping(self):
        scoped = {r.rule_id for r in RULES if r.sim_path_only}
        assert scoped == {"R6", "R7"}


class TestAuditedConcurrencyTables:
    """R9/R10 audit tables stay pinned to real code."""

    REPO_SRC = Path(__file__).parents[2] / "src"

    def test_r9_audited_accessor_without_table_fires(self, monkeypatch):
        # The one audited home really does construct shared primitives:
        # drop the table and the real module must light up.
        import repro.analysis.rules as rules
        from repro.analysis.facts import collect_facts

        monkeypatch.setattr(rules, "_R9_AUDITED_ACCESSORS", {})
        path = self.REPO_SRC / "repro" / "core" / "optimizer" / "parallel.py"
        findings = rules._check_shared_state(collect_facts(path, str(path)))
        assert findings, "audited accessor table no longer needed"
        assert all(d.rule == "R9" for d in findings)

    def test_r9_audited_modules_exist(self):
        from repro.analysis.rules import _R9_AUDITED_ACCESSORS

        for module in _R9_AUDITED_ACCESSORS:
            path = self.REPO_SRC / (module.replace(".", "/") + ".py")
            assert path.is_file(), f"audit table names missing {module}"

    def test_r10_fabric_entry_points_exist(self):
        import repro.experiments.parallel as fabric
        from repro.analysis.rules import (
            _FABRIC_POOL_CLASS,
            _FABRIC_TASK_FUNCS,
        )

        for dotted in _FABRIC_TASK_FUNCS:
            module, _, name = dotted.rpartition(".")
            assert module == "repro.experiments.parallel"
            assert hasattr(fabric, name)
        module, _, name = _FABRIC_POOL_CLASS.rpartition(".")
        assert module == "repro.experiments.parallel"
        assert hasattr(fabric, name)
