"""Exact-diagnostic tests for every rule, pinned on the fixture corpus.

Each rule gets one bad fixture file and the good corpus must stay clean;
assertions pin file, line *and* rule id so a rule that drifts (fires on
the wrong construct, or stops firing) fails loudly rather than just
changing a count.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.engine import AnalysisReport, run_analysis
from repro.analysis.rules import RULE_IDS, RULES

FIXTURES = Path(__file__).parent / "fixtures"
NO_ALLOWLIST = FIXTURES / "missing-allowlist"


def _analyze(corpus: str) -> AnalysisReport:
    return run_analysis([FIXTURES / corpus], allowlist_path=NO_ALLOWLIST)


def _hits(report: AnalysisReport, filename: str) -> list[tuple[int, str]]:
    """(line, rule) pairs for one fixture file, in report order."""
    return [
        (d.line, d.rule)
        for d in report.diagnostics
        if d.file.endswith(filename)
    ]


class TestBadCorpus:
    def setup_method(self) -> None:
        self.report = _analyze("bad")

    def test_r1_wallclock_direct_aliased_and_datetime(self):
        assert _hits(self.report, "sim/wallclock.py") == [
            (11, "R1"),
            (16, "R1"),
            (21, "R1"),
        ]

    def test_r1_alias_resolves_to_real_target(self):
        aliased = [
            d
            for d in self.report.diagnostics
            if d.file.endswith("sim/wallclock.py") and d.line == 16
        ]
        assert len(aliased) == 1
        assert "time.monotonic()" in aliased[0].message

    def test_r2_unseeded_module_level_and_entropy(self):
        assert _hits(self.report, "sim/unseeded.py") == [
            (9, "R2"),
            (14, "R2"),
            (19, "R2"),
        ]

    def test_r3_for_loop_listify_and_comprehension(self):
        assert _hits(self.report, "ordering.py") == [
            (7, "R3"),
            (14, "R3"),
            (19, "R3"),
        ]

    def test_r4_unknown_type_and_missing_fields(self):
        assert _hits(self.report, "obs/emitters.py") == [
            (6, "R4"),
            (7, "R4"),
        ]
        messages = [
            d.message
            for d in self.report.diagnostics
            if d.file.endswith("obs/emitters.py")
        ]
        assert "'not.in.schema' is not declared" in messages[0]
        assert "missing required payload field(s): port" in messages[1]

    def test_r4_dead_schema_entry(self):
        assert _hits(self.report, "obs/schema.py") == [(6, "R4")]
        (dead,) = [
            d
            for d in self.report.diagnostics
            if d.file.endswith("obs/schema.py")
        ]
        assert "'ghost.event' has no emitter" in dead.message

    def test_r5_unfrozen_spec(self):
        assert _hits(self.report, "bad/repro/specs.py") == [(7, "R5")]

    def test_r6_id_and_hash_on_sim_path(self):
        assert _hits(self.report, "sim/identity.py") == [
            (6, "R6"),
            (11, "R6"),
        ]

    def test_r7_fence_catches_stdlib_and_repro_fabric(self):
        hits = _hits(self.report, "sim/fence.py")
        assert hits == [(3, "R7"), (5, "R7")]
        messages = [
            d.message
            for d in self.report.diagnostics
            if d.file.endswith("sim/fence.py")
        ]
        assert "'threading'" in messages[0]
        assert "'repro.experiments.parallel'" in messages[1]

    def test_r7_fence_covers_the_deterministic_core(self):
        hits = _hits(self.report, "core/fence.py")
        assert hits == [(3, "R7"), (5, "R7")]
        messages = [
            d.message
            for d in self.report.diagnostics
            if d.file.endswith("core/fence.py")
        ]
        assert "'multiprocessing'" in messages[0]
        assert "'repro.core.optimizer.parallel'" in messages[1]

    def test_r8_malformed_and_unused(self):
        assert _hits(self.report, "bad/repro/suppress.py") == [
            (3, "R8"),
            (6, "R8"),
        ]

    def test_every_rule_fires_somewhere(self):
        fired = {d.rule for d in self.report.diagnostics}
        assert fired == set(RULE_IDS)

    def test_total_finding_count_is_pinned(self):
        # A new finding (or a silently dropped one) must be a conscious
        # fixture change, not drift.
        assert len(self.report.diagnostics) == 21
        assert not self.report.errors

    def test_diagnostics_render_as_path_line_col_rule(self):
        first = self.report.diagnostics[0]
        rendered = first.render()
        assert rendered == (
            f"{first.file}:{first.line}:{first.col}"
            f" {first.rule} {first.message}"
        )


class TestGoodCorpus:
    def test_clean_and_error_free(self):
        report = _analyze("good")
        assert report.diagnostics == []
        assert report.errors == []
        assert report.ok


class TestAuditedFenceExceptions:
    """The R7 exception table is exactly as large as it needs to be."""

    REPO_SRC = Path(__file__).parents[2] / "src"

    def _fence(self, module: str) -> list:
        from repro.analysis.facts import collect_facts
        from repro.analysis.rules import _check_import_fence

        path = self.REPO_SRC / (module.replace(".", "/") + ".py")
        return _check_import_fence(collect_facts(path, str(path)))

    def test_real_driver_modules_pass_through_the_table(self):
        # With the audited exceptions in place, the real parallel
        # driver and its lazy dispatcher are fence-clean.
        assert self._fence("repro.core.optimizer.parallel") == []
        assert self._fence("repro.core.optimizer.ftsearch") == []

    def test_every_exception_entry_earns_its_keep(self, monkeypatch):
        # Dropping the table must surface findings in the exact modules
        # it names — a stale entry (or a blanket one) fails here.
        import repro.analysis.rules as rules

        monkeypatch.setattr(rules, "_R7_AUDITED_EXCEPTIONS", {})
        for module in (
            "repro.core.optimizer.parallel",
            "repro.core.optimizer.ftsearch",
        ):
            findings = self._fence(module)
            assert findings, f"{module} no longer needs its exception"
            assert all(d.rule == "R7" for d in findings)

    def test_exception_keys_are_exact_modules(self):
        from repro.analysis.rules import _R7_AUDITED_EXCEPTIONS

        for module in _R7_AUDITED_EXCEPTIONS:
            path = self.REPO_SRC / (module.replace(".", "/") + ".py")
            assert path.is_file(), f"exception names missing {module}"

    def test_used_suppression_is_counted_not_reported(self):
        report = _analyze("good")
        assert len(report.suppressed) == 1
        diagnostic, reason = report.suppressed[0]
        assert diagnostic.rule == "R1"
        assert diagnostic.file.endswith("good/repro/suppress.py")
        assert "used suppression" in reason


class TestRuleCatalog:
    def test_eight_rules_with_stable_ids(self):
        assert [rule.rule_id for rule in RULES] == [
            f"R{n}" for n in range(1, 9)
        ]

    def test_sim_path_scoping(self):
        scoped = {r.rule_id for r in RULES if r.sim_path_only}
        assert scoped == {"R6", "R7"}
