"""The typecheck ratchet's mypy-free checks, plus the repo's own state.

Everything here runs without mypy installed: the classification
invariants and the AST annotation-completeness check are pure Python, so
the ratchet's bookkeeping is enforced by the tier-1 suite even on
machines without the lint toolchain.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.typecheck import (
    check_annotations,
    check_classification,
    discover_modules,
    load_module_list,
    main,
    module_for_path,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestClassification:
    MODULES = ["repro", "repro.a", "repro.a.x", "repro.b", "repro.c"]

    def test_clean_partition_is_ok(self):
        problems = check_classification(
            self.MODULES, ["repro.a"], ["repro", "repro.b", "repro.c"]
        )
        assert problems == []

    def test_strict_prefix_covers_submodules(self):
        # repro.a.x is covered by the repro.a prefix and needs no
        # baseline entry of its own.
        problems = check_classification(
            self.MODULES, ["repro.a"], ["repro", "repro.b", "repro.c"]
        )
        assert problems == []

    def test_unclassified_module_is_a_problem(self):
        problems = check_classification(
            self.MODULES, ["repro.a"], ["repro", "repro.b"]
        )
        assert len(problems) == 1
        assert problems[0].startswith("repro.c: unclassified")

    def test_module_in_both_lists_is_a_problem(self):
        problems = check_classification(
            self.MODULES,
            ["repro.a"],
            ["repro", "repro.a.x", "repro.b", "repro.c"],
        )
        assert any(p.startswith("repro.a.x: in both") for p in problems)

    def test_stale_baseline_entry_is_a_problem(self):
        problems = check_classification(
            self.MODULES,
            ["repro.a"],
            ["repro", "repro.b", "repro.c", "repro.gone"],
        )
        assert any("stale baseline" in p for p in problems)

    def test_stale_strict_prefix_is_a_problem(self):
        problems = check_classification(
            self.MODULES,
            ["repro.a", "repro.nothing"],
            ["repro", "repro.b", "repro.c"],
        )
        assert any("stale strict" in p for p in problems)

    def test_prefix_match_does_not_bleed_across_dots(self):
        # "repro.a" must not cover "repro.ab": if it did, repro.ab
        # would be reported as "in both lists" here.
        problems = check_classification(
            ["repro.a.x", "repro.ab"], ["repro.a"], ["repro.ab"]
        )
        assert problems == []


class TestAnnotations:
    def _tree(self, tmp_path: Path, source: str) -> Path:
        root = tmp_path / "src" / "repro"
        root.mkdir(parents=True)
        (root / "__init__.py").write_text('"""Pkg."""\n')
        (root / "mod.py").write_text(source)
        return tmp_path / "src" / "repro"

    def test_fully_annotated_module_passes(self, tmp_path):
        root = self._tree(
            tmp_path,
            "def f(x: int, *args: int, **kw: int) -> int:\n"
            "    return x\n",
        )
        assert check_annotations(["repro"], root) == []

    def test_missing_param_annotation_flagged(self, tmp_path):
        root = self._tree(tmp_path, "def f(x) -> int:\n    return x\n")
        problems = check_annotations(["repro"], root)
        assert len(problems) == 1
        assert "unannotated parameter(s): x" in problems[0]

    def test_missing_return_annotation_flagged(self, tmp_path):
        root = self._tree(tmp_path, "def f(x: int):\n    return x\n")
        problems = check_annotations(["repro"], root)
        assert len(problems) == 1
        assert "no return annotation" in problems[0]

    def test_self_and_cls_exempt(self, tmp_path):
        root = self._tree(
            tmp_path,
            "class C:\n"
            "    def m(self) -> None: ...\n"
            "    @classmethod\n"
            "    def k(cls) -> None: ...\n",
        )
        assert check_annotations(["repro"], root) == []

    def test_non_strict_modules_skipped(self, tmp_path):
        root = self._tree(tmp_path, "def f(x):\n    return x\n")
        assert check_annotations(["repro.other"], root) == []


class TestModuleForPath:
    def test_plain_module(self):
        root = Path("src/repro")
        assert (
            module_for_path("src/repro/sim/kernel.py", root)
            == "repro.sim.kernel"
        )

    def test_package_init(self):
        root = Path("src/repro")
        module = module_for_path("src/repro/sim/__init__.py", root)
        assert module == "repro.sim"

    def test_outside_root_is_none(self):
        assert module_for_path("tests/foo.py", Path("src/repro")) is None


class TestRepoState:
    """The checked-in lists must describe the tree they ship with."""

    def test_lists_exactly_partition_the_tree(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        strict = load_module_list(Path("tools/typing-strict.txt"))
        baseline = load_module_list(Path("tools/typing-baseline.txt"))
        modules = discover_modules(Path("src/repro"))
        assert check_classification(modules, strict, baseline) == []

    def test_strict_modules_fully_annotated(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        strict = load_module_list(Path("tools/typing-strict.txt"))
        assert check_annotations(strict, Path("src/repro")) == []

    def test_analysis_package_is_strict(self, monkeypatch):
        # The linter must obey the discipline it enforces.
        monkeypatch.chdir(REPO_ROOT)
        strict = load_module_list(Path("tools/typing-strict.txt"))
        assert "repro.analysis" in strict

    def test_cli_no_mypy_exits_zero(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["--no-mypy"]) == 0
        assert "typecheck: OK" in capsys.readouterr().out
