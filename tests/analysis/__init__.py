"""Tests for the repro.analysis determinism & event-schema linter."""
