"""Fixture package."""
