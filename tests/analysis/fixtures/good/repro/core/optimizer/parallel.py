"""Good fixture: the audited parallel-driver exception module.

Mirrors the real ``repro.core.optimizer.parallel``: it is cleared for
the fabric and multiprocessing imports because the optimizer package
never imports it at module load time.
"""

import multiprocessing

from repro.experiments.parallel import run_tasks


def fan_out(tasks: list) -> list:
    """The process-bearing driver the exception table clears."""
    multiprocessing.Value("d", 0.0)
    return run_tasks(tasks)
