"""Good fixture: the audited parallel-driver exception module.

Mirrors the real ``repro.core.optimizer.parallel``: it is cleared for
the fabric and multiprocessing imports because the optimizer package
never imports it at module load time.
"""

import multiprocessing

from repro.experiments.parallel import run_tasks


class SharedBound:
    """The audited accessor: the only sanctioned home of raw shared
    state, and every touch happens under the primitive's own lock."""

    def __init__(self) -> None:
        self._value = multiprocessing.Value("d", 0.0)

    def get(self) -> float:
        with self._value.get_lock():
            return float(self._value.value)

    def offer(self, candidate: float) -> None:
        with self._value.get_lock():
            if candidate > self._value.value:
                self._value.value = candidate


def fan_out(tasks: list) -> list:
    """The process-bearing driver the exception table clears."""
    return run_tasks(tasks)
