"""Fixture package (does not import the parallel driver)."""
