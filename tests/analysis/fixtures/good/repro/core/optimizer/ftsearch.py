"""Good fixture: lazy, function-local dispatch to the parallel driver.

Mirrors the real ``repro.core.optimizer.ftsearch``: the cleared import
runs only when a caller explicitly asks for parallel search, never at
module import time.
"""


def ft_search(problem: object, jobs: int = 0) -> object:
    """Serial by default; the parallel import is behind the flag."""
    if jobs:
        from repro.core.optimizer.parallel import parallel_ft_search

        return parallel_ft_search(problem)
    return problem
