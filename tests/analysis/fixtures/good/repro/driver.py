"""Good fixture: fabric submissions that obey R10."""

from dataclasses import dataclass

from repro.experiments.parallel import run_tasks


@dataclass(frozen=True)
class JobSpec:
    """Frozen payload: safe to pickle across the fabric."""

    payload: int


def run_job(job: JobSpec) -> int:
    """Top-level worker with a frozen dataclass payload."""
    return job.payload


def run_indexed(task: tuple[int, str]) -> int:
    """Immutable builtin payloads are fine too."""
    return task[0]


def launch(tasks: list) -> list:
    """Both submissions are hygienic."""
    return run_tasks(run_job, tasks) + run_tasks(run_indexed, tasks)
