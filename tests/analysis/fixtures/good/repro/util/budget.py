"""Good fixture: a budget-confined deadline helper taints no caller.

The read below needs its own waiver (the local rule flags every
wall-clock read), but the effect pass proves it budget-only — the
value never escapes the comparison — so sim-path callers stay clean
with no waiver of their own.
"""

import time


def expired(deadline: float) -> bool:
    """The read only feeds a comparison: budget-only, no taint."""
    # repro: allow[R1] reason=budget-only deadline check, proven non-escaping by the effect pass
    return time.monotonic() > deadline
