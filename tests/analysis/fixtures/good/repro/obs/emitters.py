"""Good fixture: emit sites that agree with the schema."""


def report(log: object) -> None:
    """Every declared type is emitted with its full payload."""
    log.emit("tuple.drop", replica="r0", port=3)
    log.emit("replica.crash", replica="r1", cause="chaos")
