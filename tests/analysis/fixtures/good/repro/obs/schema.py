"""Good fixture: a mini event schema, fully emitted, in both forms."""

EVENT_SCHEMA: dict[str, object] = {
    # Typed form: field names and value tags, all statically validated.
    "tuple.drop": {"replica": "str", "port": "int"},
    # Legacy form: field names only, still accepted.
    "replica.crash": frozenset({"replica"}),
}
