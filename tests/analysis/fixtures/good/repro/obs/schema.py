"""Good fixture: a mini event schema, fully emitted."""

EVENT_SCHEMA: dict[str, frozenset[str]] = {
    "tuple.drop": frozenset({"replica", "port"}),
    "replica.crash": frozenset({"replica"}),
}
