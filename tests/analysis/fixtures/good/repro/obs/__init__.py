"""Fixture package."""
