"""Good fixture: a frozen fabric-crossing Spec dataclass."""

from dataclasses import dataclass


@dataclass(frozen=True)
class RunSpec:
    """Immutable across the pickle boundary."""

    seed: int
    until: float
