"""Fixture package."""
