"""Good fixture: a well-formed, *used* suppression comment."""

import time


def profile_tick() -> float:
    """Legitimate wall-clock read, explicitly waived with a reason."""
    # repro: allow[R1] reason=fixture demonstrating a used suppression
    return time.monotonic()
