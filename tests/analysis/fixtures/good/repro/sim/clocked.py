"""Good fixture: sim-clock stamping, seeded RNGs, sorted iteration."""

import random

from repro.util.budget import expired


def stamp(now: float) -> float:
    """Timestamps come in from the simulation clock."""
    return now


def rng_for(seed: int) -> random.Random:
    """RNGs are constructed from explicit seeds."""
    return random.Random(seed)


def canonical_hosts(hosts: set[str]) -> list[str]:
    """Set iteration goes through sorted()."""
    return sorted(hosts)


def host_count(hosts: set[str]) -> int:
    """Order-neutral consumers of sets are fine."""
    return len(hosts)


def paced(deadline: float) -> bool:
    """Calling a budget-confined helper leaves the sim path untainted."""
    return expired(deadline)
