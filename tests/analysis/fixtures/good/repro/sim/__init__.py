"""Fixture package."""
