"""R7 fixture: core module importing process-bearing machinery."""

import multiprocessing

from repro.core.optimizer.parallel import parallel_ft_search


def drive() -> None:
    """Uses machinery fenced off the deterministic core."""
    multiprocessing.Value("d", 0.0)
    parallel_ft_search(None)
