"""Fixture package."""
