"""R8 fixture: malformed and unused suppression comments."""

# repro: allow[R1]
SUPPRESSED_NOTHING = 1

# repro: allow[R3] reason=there is no set iteration on the next line
UNUSED_BUT_WELL_FORMED = 2
