"""R3 fixture: hash-seed-dependent iteration over sets."""


def loop_over_set(hosts: object) -> list[str]:
    """For loop over a set literal."""
    out = []
    for host in {"a", "b", "c"}:
        out.append(host)
    return out


def listify_keys(table: dict[str, int]) -> list[str]:
    """list() over .keys() without sorted()."""
    return list(table.keys())


def comprehension_over_union(left: set[int], right: set[int]) -> list[int]:
    """Comprehension over a set-union result."""
    return [value for value in left.union(right)]
