"""Interprocedural fixture: helpers hiding nondeterminism one hop down.

The local rules fire here at the intrinsic sites; the point of this
module is what happens in ``repro.sim.leak``, which calls these
wrappers from the sim path and shows *no* local finding at all.
"""

import random
import time


def _read_clock() -> float:
    """The intrinsic wall-clock read, one call below the wrapper."""
    return time.time()


def stamp_run(label: str) -> tuple[str, float]:
    """A wall-clock wrapper two calls deep from any sim-path caller."""
    return label, _read_clock()


def draw() -> float:
    """An unseeded draw from the shared module-level RNG."""
    return random.random()
