"""R10 fixture: fabric submission sites that break task hygiene."""

from dataclasses import dataclass

from repro.experiments.parallel import run_tasks


@dataclass
class MutableJob:
    """Not frozen: workers mutating it diverge across processes."""

    payload: int


def run_unannotated(task):
    """No payload annotation, so immutability cannot be checked."""
    return task


def run_mutable(job: MutableJob) -> int:
    """Annotated with a mutable (unfrozen) payload type."""
    return job.payload


def launch(tasks: list) -> list:
    """Four submissions, four hygiene violations."""
    results = run_tasks(lambda task: task, tasks)
    results += run_tasks(run_unannotated, tasks)

    def run_nested(task: int) -> int:
        return task

    results += run_tasks(run_nested, tasks)
    results += run_tasks(run_mutable, tasks)
    return results
