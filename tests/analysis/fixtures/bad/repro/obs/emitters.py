"""R4 fixture: emit sites that disagree with the schema."""


def report(log: object) -> None:
    """Emit an undeclared type and an under-filled payload."""
    log.emit("not.in.schema", detail=1)
    log.emit("tuple.drop", replica="r0")
    log.emit("replica.crash", replica="r1")
