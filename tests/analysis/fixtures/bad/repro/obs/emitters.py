"""R4 fixture: emit sites that disagree with the schema."""


def report(log: object, **extra: object) -> None:
    """Emit an undeclared type, an under-filled payload, a type clash."""
    log.emit("not.in.schema", detail=1)
    log.emit("tuple.drop", replica="r0")
    log.emit("replica.crash", replica="r1")
    log.emit("typed.sample", count="three", **extra)
