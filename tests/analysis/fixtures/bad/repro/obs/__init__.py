"""Fixture package."""
