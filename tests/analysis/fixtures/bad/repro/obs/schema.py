"""R4 fixture: a mini event schema with dead and ill-typed entries."""

EVENT_SCHEMA: dict[str, object] = {
    "tuple.drop": frozenset({"replica", "port"}),
    "replica.crash": frozenset({"replica"}),
    "ghost.event": frozenset({"who"}),
    # Typed entry: an unknown tag, and two fields no emit site ever
    # passes literally (so their types are never statically checked).
    "typed.sample": {
        "count": "int",
        "ratio": "quaternion",
        "ghostfield": "str",
    },
}
