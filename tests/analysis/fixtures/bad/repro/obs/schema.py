"""R4 fixture: a mini event schema with one dead entry."""

EVENT_SCHEMA: dict[str, frozenset[str]] = {
    "tuple.drop": frozenset({"replica", "port"}),
    "replica.crash": frozenset({"replica"}),
    "ghost.event": frozenset({"who"}),
}
