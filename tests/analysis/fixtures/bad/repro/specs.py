"""R5 fixture: a fabric-crossing Spec dataclass left mutable."""

from dataclasses import dataclass


@dataclass
class RunSpec:
    """Crosses the pickle boundary but is not frozen."""

    seed: int
    until: float
