"""R9 fixture: shared primitives handled outside the audited accessors."""

import multiprocessing


def make_bound() -> object:
    """Every line below breaks the shared-state discipline."""
    best = multiprocessing.Value("d", 0.0)
    best.value = 1.0
    lock = best.get_lock()
    lock.acquire()
    return best
