"""Fixture package."""
