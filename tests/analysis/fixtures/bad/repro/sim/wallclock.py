"""R1 fixture: wall-clock reads, direct and via a local alias."""

import time
from datetime import datetime

_mono = time.monotonic


def stamp() -> float:
    """Direct wall-clock read."""
    return time.time()


def stamp_aliased() -> float:
    """Aliased wall-clock read (the hot-loop evasion pattern)."""
    return _mono()


def today() -> str:
    """Wall-clock date read."""
    return datetime.now().isoformat()
