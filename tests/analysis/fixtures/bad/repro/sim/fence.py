"""R7 fixture: sim-path module importing the fabric and threading."""

import threading

from repro.experiments.parallel import run_tasks


def drive() -> None:
    """Uses the fenced-off machinery."""
    threading.Event()
    run_tasks([])
