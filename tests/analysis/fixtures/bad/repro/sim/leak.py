"""Interprocedural fixture: a sim-path module calling tainted helpers.

Every primitive hides in ``repro.util.timing``, so the per-file rules
find nothing in this file — the findings here exist only through the
call-graph effect inference, which is exactly what the old-miss /
new-catch test in ``tests/analysis/test_callgraph.py`` pins.
"""

from repro.util.timing import draw, stamp_run


def snapshot(events: list) -> tuple:
    """Both calls cross the sim-path boundary into tainted helpers."""
    stamped = stamp_run("snapshot")
    jitter = draw()
    return stamped, jitter, len(events)
