"""R6 fixture: object identity leaking into sim-path values."""


def replica_key(replica: object) -> int:
    """id() is process-dependent."""
    return id(replica)


def digest_part(value: str) -> int:
    """Builtin hash() is hash-seed-dependent."""
    return hash(value)
