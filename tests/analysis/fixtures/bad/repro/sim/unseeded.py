"""R2 fixture: unseeded and OS-entropy randomness."""

import random
import uuid


def fresh_rng() -> random.Random:
    """Unseeded RNG construction."""
    return random.Random()


def module_level_draw() -> float:
    """Draw from the shared module-level RNG."""
    return random.random()


def run_token() -> str:
    """OS-entropy identifier."""
    return uuid.uuid4().hex
