"""Fixture package."""
