"""Tests for the command-line interface (the Fig. 7 workflow)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def bundle_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "app.json"
    code = main(
        [
            "generate",
            "--seed", "3",
            "--pes", "8",
            "--hosts", "3",
            "--cores-per-host", "6",
            "--out", str(path),
        ]
    )
    assert code == 0
    return path


@pytest.fixture(scope="module")
def strategy_path(bundle_path, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "strategy.json"
    code = main(
        [
            "optimize",
            str(bundle_path),
            "--ic", "0.4",
            "--time-limit", "3",
            "--out", str(path),
        ]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_bundle_is_valid_json(self, bundle_path):
        payload = json.loads(bundle_path.read_text())
        assert payload["format"].startswith("repro-application-bundle")
        assert payload["low_rate"] < payload["high_rate"]
        assert len(payload["descriptor"]["graph"]["pes"]) == 8

    def test_generate_deterministic(self, bundle_path, tmp_path):
        other = tmp_path / "again.json"
        assert main(
            [
                "generate", "--seed", "3", "--pes", "8",
                "--hosts", "3", "--cores-per-host", "6",
                "--out", str(other),
            ]
        ) == 0
        assert json.loads(other.read_text()) == json.loads(
            bundle_path.read_text()
        )


class TestOptimize:
    def test_strategy_file_written(self, strategy_path):
        payload = json.loads(strategy_path.read_text())
        assert payload["activations"]

    def test_infeasible_target_fails(self, bundle_path, tmp_path, capsys):
        code = main(
            [
                "optimize", str(bundle_path),
                "--ic", "1.0",
                "--time-limit", "3",
                "--out", str(tmp_path / "nope.json"),
            ]
        )
        assert code == 1
        assert "no strategy" in capsys.readouterr().err

    def test_missing_bundle_fails(self, tmp_path, capsys):
        code = main(
            [
                "optimize", str(tmp_path / "ghost.json"),
                "--ic", "0.5", "--out", str(tmp_path / "s.json"),
            ]
        )
        assert code == 1


class TestEvaluate:
    def test_feasible_strategy_reports_zero_exit(
        self, bundle_path, strategy_path, capsys
    ):
        code = main(
            ["evaluate", str(bundle_path), "--strategy", str(strategy_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pessimistic IC" in out
        assert "satisfied" in out


class TestSimulate:
    def test_best_case_run(self, bundle_path, strategy_path, capsys, tmp_path):
        out_file = tmp_path / "metrics.json"
        code = main(
            [
                "simulate", str(bundle_path),
                "--strategy", str(strategy_path),
                "--duration", "20",
                "--out", str(out_file),
            ]
        )
        assert code == 0
        report = json.loads(out_file.read_text())
        assert report["input"] > 0
        assert report["output"] > 0

    def test_worst_case_run(self, bundle_path, strategy_path, capsys):
        code = main(
            [
                "simulate", str(bundle_path),
                "--strategy", str(strategy_path),
                "--duration", "20",
                "--failure", "worst",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "worst case" in out

    def test_crash_run(self, bundle_path, strategy_path, capsys):
        code = main(
            [
                "simulate", str(bundle_path),
                "--strategy", str(strategy_path),
                "--duration", "30",
                "--failure", "crash",
            ]
        )
        assert code == 0
        assert "host crash" in capsys.readouterr().out


class TestEvaluateVerbose:
    def test_verbose_prints_matrix_and_loads(
        self, bundle_path, strategy_path, capsys
    ):
        code = main(
            [
                "evaluate", str(bundle_path),
                "--strategy", str(strategy_path),
                "--verbose",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "activation matrix" in out
        assert "host load / capacity" in out


class TestExperimentCommand:
    def test_fig4_renders_at_tiny_scale(self, monkeypatch, capsys):
        from repro.experiments import clear_cache

        clear_cache()
        monkeypatch.setenv("REPRO_STUDY_SIZE", "2")
        monkeypatch.setenv("REPRO_STUDY_TIME_LIMIT", "0.3")
        code = main(["experiment", "fig4"])
        clear_cache()
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out

    def test_all_writes_report(self, monkeypatch, capsys, tmp_path):
        from repro.experiments import clear_cache

        clear_cache()
        monkeypatch.setenv("REPRO_STUDY_SIZE", "2")
        monkeypatch.setenv("REPRO_STUDY_TIME_LIMIT", "0.3")
        monkeypatch.setenv("REPRO_CORPUS_SIZE", "1")
        monkeypatch.setenv("REPRO_CRASH_CORPUS", "1")
        monkeypatch.setenv("REPRO_TRACE_SECONDS", "20")
        monkeypatch.setenv("REPRO_FT_TIME_LIMIT", "1.0")
        report = tmp_path / "REPORT.md"
        code = main(["experiment", "all", "--out", str(report)])
        clear_cache()
        assert code == 0
        assert "Fig. 12" in report.read_text()


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_experiment_choices_validated(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestLint:
    def test_list_rules_via_subcommand(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "R1" in out and "R8" in out

    def test_findings_propagate_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text('"""Doc."""\nimport time\nt = time.time()\n')
        code = main(
            [
                "lint", str(bad),
                "--allowlist", str(tmp_path / "absent.txt"),
            ]
        )
        assert code == 1
        assert "R1" in capsys.readouterr().out


class TestObs:
    def test_observed_run_writes_artifacts(
        self, bundle_path, strategy_path, tmp_path, capsys
    ):
        out_dir = tmp_path / "run"
        code = main(
            [
                "obs", str(bundle_path),
                "--strategy", str(strategy_path),
                "--duration", "10",
                "--failures", "none,crash",
                "--queue-seconds", "0.05",
                "--out-dir", str(out_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "switch timeline" in out
        assert "top droppers" in out

        from repro.obs.validate import validate_file

        for mode in ("none", "crash"):
            path = out_dir / f"events-{mode}.jsonl"
            assert path.exists()
            assert validate_file(path) == []
        report = json.loads((out_dir / "report.json").read_text())
        assert [m["mode"] for m in report["modes"]] == ["none", "crash"]
        assert report["fabric"]["n_tasks"] == 2
        crash = report["modes"][1]
        assert crash["event_counts"].get("host.crash", 0) == 1
        assert crash["event_counts"].get("tuple.drop", 0) > 0

    def test_fleet_writes_report_and_valid_events(self, tmp_path, capsys):
        out_dir = tmp_path / "fleet"
        store_dir = tmp_path / "store"
        code = main(
            [
                "fleet",
                "--tenants", "6",
                "--apps", "2",
                "--jobs", "2",
                "--out-dir", str(out_dir),
                "--store-dir", str(store_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet scenario report" in out
        assert "shared pool occupancy" in out

        from repro.obs.validate import validate_file

        events_path = out_dir / "events.jsonl"
        assert events_path.exists()
        assert validate_file(events_path) == []
        report = json.loads((out_dir / "report.json").read_text())
        assert report["admission"]["submitted"] == 6
        assert report["scenario"]["tenants"] == 6
        assert list(store_dir.glob("*.json"))  # strategies persisted

    def test_strategy_and_ic_mutually_exclusive(
        self, bundle_path, strategy_path, tmp_path, capsys
    ):
        code = main(
            [
                "obs", str(bundle_path),
                "--strategy", str(strategy_path),
                "--ic", "0.5",
                "--out-dir", str(tmp_path / "x"),
            ]
        )
        assert code == 2
        assert "exactly one" in capsys.readouterr().err

    def test_unknown_failure_mode_rejected(
        self, bundle_path, strategy_path, tmp_path, capsys
    ):
        code = main(
            [
                "obs", str(bundle_path),
                "--strategy", str(strategy_path),
                "--failures", "meteor",
                "--out-dir", str(tmp_path / "x"),
            ]
        )
        assert code == 2
        assert "unknown failure mode" in capsys.readouterr().err


class TestElastic:
    def test_elastic_writes_artifact_and_valid_events(
        self, tmp_path, capsys
    ):
        out_dir = tmp_path / "elastic"
        code = main(
            [
                "elastic",
                "--tenants", "4",
                "--duration", "10",
                "--jobs", "1",
                "--out-dir", str(out_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "elastic (batched):" in out
        assert "migrations" in out
        assert "fleet sha256:" in out

        from repro.obs.validate import validate_file

        document = json.loads((out_dir / "elastic.json").read_text())
        assert document["fleet"]["ok"] is True
        assert document["fleet"]["elastic"]["migrations"] > 0
        assert len(document["tenants"]) == 4
        for entry in document["tenants"]:
            path = out_dir / f"events-{entry['tenant']}.jsonl"
            assert path.exists()
            assert validate_file(path) == []

    def test_fleet_elastic_flag_runs_autoscaled_dataplane(
        self, tmp_path, capsys
    ):
        out_dir = tmp_path / "fleet-elastic"
        code = main(
            [
                "fleet", "--dataplane", "--elastic",
                "--tenants", "4",
                "--duration", "8",
                "--jobs", "1",
                "--out-dir", str(out_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "elastic dataplane (batched):" in out
        summary = json.loads((out_dir / "dataplane.json").read_text())
        assert summary["ok"] is True
        assert summary["elastic"]["migrations"] > 0

    def test_elastic_batched_and_tuple_granular_agree(self, tmp_path):
        shas = []
        for index, extra in enumerate(([], ["--tuple-granular"])):
            out_dir = tmp_path / f"mode-{index}"
            code = main(
                [
                    "elastic",
                    "--tenants", "2",
                    "--duration", "8",
                    "--jobs", "1",
                    "--out-dir", str(out_dir),
                    *extra,
                ]
            )
            assert code == 0
            document = json.loads((out_dir / "elastic.json").read_text())
            shas.append(document["fleet"]["fleet_sha256"])
        assert shas[0] == shas[1]
