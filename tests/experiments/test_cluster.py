"""Integration tests of the cluster experiment runner (tiny scale)."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    ClusterResults,
    ExperimentScale,
    FailureMode,
    run_cluster_experiment,
)
from repro.workloads import GeneratorParams, generate_application


@pytest.fixture(scope="module")
def tiny_results() -> ClusterResults:
    """A 2-application grid with short traces; shared across tests."""
    scale = ExperimentScale(
        corpus_size=2,
        crash_corpus_size=1,
        trace_seconds=30.0,
        ft_time_limit=1.0,
        ic_targets=(0.5,),
    )
    corpus = [
        generate_application(
            seed, params=GeneratorParams(n_pes=10), name=f"app-{seed}"
        )
        for seed in (21, 22)
    ]
    return run_cluster_experiment(scale, corpus=corpus)


class TestScale:
    def test_validation(self):
        with pytest.raises(ExperimentError):
            ExperimentScale(corpus_size=0)
        with pytest.raises(ExperimentError):
            ExperimentScale(corpus_size=2, crash_corpus_size=5)
        with pytest.raises(ExperimentError):
            ExperimentScale(trace_seconds=0.0)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CORPUS_SIZE", "4")
        monkeypatch.setenv("REPRO_TRACE_SECONDS", "33.5")
        scale = ExperimentScale.from_env()
        assert scale.corpus_size == 4
        assert scale.trace_seconds == 33.5

    def test_env_override_rejects_junk(self, monkeypatch):
        monkeypatch.setenv("REPRO_CORPUS_SIZE", "lots")
        with pytest.raises(ExperimentError):
            ExperimentScale.from_env()


class TestGrid:
    def test_all_variants_present(self, tiny_results):
        assert tiny_results.variant_names == ("NR", "SR", "GRD", "L.5")

    def test_best_and_worst_for_every_app(self, tiny_results):
        for app in tiny_results.apps:
            for variant in tiny_results.variant_names:
                tiny_results.get(app, variant, FailureMode.BEST)
                tiny_results.get(app, variant, FailureMode.WORST)

    def test_crash_runs_limited_to_subset(self, tiny_results):
        assert len(tiny_results.crash_apps) == 1

    def test_missing_run_raises(self, tiny_results):
        with pytest.raises(ExperimentError):
            tiny_results.get("ghost", "SR", FailureMode.BEST)

    def test_nr_normalizations_are_one(self, tiny_results):
        assert all(v == 1.0 for v in tiny_results.normalized_cpu("NR"))
        assert all(
            v == pytest.approx(1.0)
            for v in tiny_results.peak_output_ratio("NR")
        )

    def test_measured_ic_rejects_best_mode(self, tiny_results):
        with pytest.raises(ExperimentError):
            tiny_results.measured_ic("SR", FailureMode.BEST)


class TestShapes:
    """The paper's qualitative findings, at tiny scale."""

    def test_sr_costs_more_than_laar(self, tiny_results):
        sr = sum(tiny_results.normalized_cpu("SR"))
        laar = sum(tiny_results.normalized_cpu("L.5"))
        assert sr > laar > len(tiny_results.apps)  # LAAR above NR's 1.0

    def test_nr_processes_nothing_in_worst_case(self, tiny_results):
        assert all(
            v == 0.0
            for v in tiny_results.measured_ic("NR", FailureMode.WORST)
        )

    def test_laar_honours_ic_bound_in_worst_case(self, tiny_results):
        for value in tiny_results.measured_ic("L.5", FailureMode.WORST):
            assert value >= 0.5 * 0.9  # small transition slack

    def test_run_results_have_consistent_counters(self, tiny_results):
        for app in tiny_results.apps:
            run = tiny_results.get(app, "SR", FailureMode.BEST)
            assert run.input > 0
            assert 0 <= run.output
            assert run.processed > 0
            assert run.cpu_time > 0
