"""Tests for the text rendering helpers."""

from __future__ import annotations

from repro.core.optimizer import PruneRule, SearchOutcome
from repro.experiments import BoxStats
from repro.experiments.report import (
    ascii_boxplot,
    format_box_table,
    format_outcome_table,
    format_prune_table,
    format_series,
    format_table,
)


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(
            ["name", "value"], [["a", 1.23456], ["bb", 2]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.235" in text  # floats get three decimals
        assert "bb" in text

    def test_empty_rows(self):
        text = format_table(["h1", "h2"], [])
        assert "h1" in text


class TestAsciiBoxplot:
    def test_markers_present(self):
        stats = BoxStats.from_values([1, 2, 3, 4, 5, 6, 7, 8, 9])
        line = ascii_boxplot(stats, 0.0, 10.0, width=40)
        assert len(line) == 40
        for marker in "[]M|":
            assert marker in line

    def test_median_between_quartiles(self):
        # Quartiles far enough apart that the markers cannot collide.
        stats = BoxStats.from_values([10, 20, 30, 40, 50])
        line = ascii_boxplot(stats, 0.0, 60.0, width=60)
        assert line.index("[") <= line.index("M") <= line.index("]")

    def test_degenerate_range(self):
        stats = BoxStats.from_values([5.0])
        assert ascii_boxplot(stats, 5.0, 5.0, width=10) == "-" * 10


class TestFigureTables:
    def test_box_table_contains_variants(self):
        table = format_box_table(
            "title",
            {
                "NR": BoxStats.from_values([1.0, 1.0]),
                "SR": BoxStats.from_values([1.8, 1.9]),
            },
        )
        assert "NR" in table and "SR" in table and "title" in table

    def test_outcome_table(self):
        counts = {
            0.5: {o: 1 for o in SearchOutcome},
            0.9: {o: 2 for o in SearchOutcome},
        }
        table = format_outcome_table("fig4", counts)
        assert "BST" in table and "TMO" in table
        assert "0.5" in table and "0.9" in table

    def test_prune_table(self):
        shares = {rule: 0.25 for rule in PruneRule}
        heights = {rule: 3.0 for rule in PruneRule}
        table = format_prune_table("fig6", shares, heights)
        for rule in PruneRule:
            assert rule.value in table

    def test_series_stride(self):
        text = format_series(
            "fig3",
            list(range(10)),
            {"in": [float(i) for i in range(10)]},
            stride=5,
        )
        lines = text.splitlines()
        # title + header + separator + rows for t=0 and t=5.
        assert len(lines) == 5
        assert lines[-1].startswith("5")
