"""Tests for the consolidated report generator (tiny scales)."""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentScale, StudyScale, clear_cache
from repro.experiments.report_all import generate_report


@pytest.fixture(scope="module")
def tiny_report(tmp_path_factory):
    clear_cache()
    cluster_scale = ExperimentScale(
        corpus_size=2,
        crash_corpus_size=1,
        trace_seconds=30.0,
        ft_time_limit=1.0,
        ic_targets=(0.5,),
    )
    study_scale = StudyScale(
        instances=3,
        ic_targets=(0.5, 0.9),
        time_limit=0.5,
        host_range=(2, 3),
        pes_per_host_range=(2, 4),
    )
    path = tmp_path_factory.mktemp("report") / "REPORT.md"
    text = generate_report(
        path=path, cluster_scale=cluster_scale, study_scale=study_scale
    )
    yield path, text
    clear_cache()


class TestGenerateReport:
    def test_file_written(self, tiny_report):
        path, text = tiny_report
        assert path.read_text() == text

    def test_contains_every_figure(self, tiny_report):
        _, text = tiny_report
        for marker in (
            "Fig. 3",
            "Fig. 4",
            "Fig. 5",
            "Fig. 6",
            "Fig. 9 (top)",
            "Fig. 10",
            "Fig. 11 (top)",
            "Fig. 12",
        ):
            assert marker in text, f"missing {marker}"

    def test_header_mentions_scales(self, tiny_report):
        _, text = tiny_report
        assert "2 applications on 30 s traces" in text
        assert "3 FT-Search instances" in text
