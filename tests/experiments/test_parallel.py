"""The process-parallel experiment fabric: knob resolution and the
serial/parallel bit-identity contract.

The determinism tests pin a corpus of small applications whose
FT-Search runs exhaust their search spaces well inside the time budget:
an anytime search truncated by wall clock is inherently
timing-dependent, so bit-identity is only a meaningful contract for
runs whose budgets never bind. Wall-clock-derived fields (``elapsed``,
the time ratios) are excluded for the same reason.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import ExperimentError
from repro.experiments.cluster import run_cluster_experiment
from repro.experiments.ftsearch_study import run_ftsearch_study
from repro.experiments.parallel import (
    FabricProfile,
    resolve_jobs,
    run_tasks,
)
from repro.experiments.scale import ExperimentScale, StudyScale
from repro.workloads.generator import (
    ClusterParams,
    GeneratorParams,
    generate_corpus,
)


# ----------------------------------------------------------------------
# resolve_jobs
# ----------------------------------------------------------------------

def test_explicit_argument_wins(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "7")
    assert resolve_jobs(3) == 3


def test_env_variable_used_when_no_argument(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert resolve_jobs() == 5


def test_defaults_to_cpu_count(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs() == (os.cpu_count() or 1)


def test_junk_env_value_rejected(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "many")
    with pytest.raises(ExperimentError):
        resolve_jobs()


@pytest.mark.parametrize("jobs", (0, -2))
def test_non_positive_jobs_rejected(jobs):
    with pytest.raises(ExperimentError):
        resolve_jobs(jobs)


# ----------------------------------------------------------------------
# run_tasks
# ----------------------------------------------------------------------

def _square(x: int) -> int:
    return x * x


def test_serial_path_preserves_order():
    assert run_tasks(_square, [3, 1, 2], jobs=1) == [9, 1, 4]


def test_pool_preserves_order():
    tasks = list(range(20))
    assert run_tasks(_square, tasks, jobs=4) == [x * x for x in tasks]


def test_single_task_stays_in_process():
    # Local closures are unpicklable: this only passes on the in-process
    # path, which run_tasks must take for a single task.
    marker = []

    def worker(x):
        marker.append(x)
        return x

    assert run_tasks(worker, [42], jobs=8) == [42]
    assert marker == [42]


# ----------------------------------------------------------------------
# Serial / parallel bit-identity
# ----------------------------------------------------------------------

#: Small enough that every FT-Search run exhausts its space (BST/NUL)
#: far inside the budget — see the module docstring.
_TINY = ExperimentScale(
    corpus_size=2,
    crash_corpus_size=1,
    trace_seconds=8.0,
    ft_time_limit=5.0,
)


def _tiny_corpus():
    return generate_corpus(
        _TINY.corpus_size,
        _TINY.base_seed,
        params=GeneratorParams(n_pes=6, tuple_budget=2000.0),
        cluster=ClusterParams(n_hosts=3, cores_per_host=4),
    )


def test_cluster_experiment_bit_identical_across_jobs():
    corpus = _tiny_corpus()
    serial = run_cluster_experiment(_TINY, corpus=corpus, jobs=1)
    parallel = run_cluster_experiment(_TINY, corpus=corpus, jobs=4)

    assert serial.variant_names == parallel.variant_names
    assert set(serial._rows) == set(parallel._rows)
    for key, row in serial._rows.items():
        # RunResult is a frozen dataclass of scalars: == is bit-identity.
        assert parallel._rows[key] == row


def test_ftsearch_study_deterministic_fields_identical_across_jobs():
    scale = StudyScale(instances=4, ic_targets=(0.5, 0.7), time_limit=5.0)
    serial = run_ftsearch_study(scale, jobs=1)
    parallel = run_ftsearch_study(scale, jobs=4)

    assert len(serial.runs) == len(parallel.runs)
    for a, b in zip(serial.runs, parallel.runs):
        assert (a.app, a.n_hosts, a.n_pes, a.ic_target) == (
            b.app, b.n_hosts, b.n_pes, b.ic_target
        )
        # Searches at this scale exhaust (BST/NUL), so everything but
        # the wall-clock fields must match bit-for-bit.
        assert a.outcome is b.outcome
        assert a.best_cost == b.best_cost
        assert a.cost_ratio == b.cost_ratio
        assert a.stats == b.stats


def test_jobs_env_reaches_the_grid(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "2")
    corpus = _tiny_corpus()
    via_env = run_cluster_experiment(_TINY, corpus=corpus)
    explicit = run_cluster_experiment(_TINY, corpus=corpus, jobs=1)
    assert via_env._rows == explicit._rows


# ----------------------------------------------------------------------
# Fabric profiling
# ----------------------------------------------------------------------

class TestFabricProfile:
    def test_profiling_never_changes_results(self):
        tasks = list(range(8))
        profile = FabricProfile()
        assert run_tasks(_square, tasks, jobs=2, profile=profile) == (
            run_tasks(_square, tasks, jobs=2)
        )

    def test_one_timing_per_task_in_submission_order(self):
        profile = FabricProfile()
        run_tasks(_square, list(range(6)), jobs=2, profile=profile)
        assert [t.index for t in profile.timings] == list(range(6))
        assert all(t.seconds >= 0 for t in profile.timings)
        assert all(t.queue_wait >= 0 for t in profile.timings)

    def test_serial_path_runs_in_process(self):
        profile = FabricProfile()
        run_tasks(_square, [1, 2, 3], jobs=1, profile=profile)
        assert profile.jobs == 1
        assert {t.worker for t in profile.timings} == {os.getpid()}

    def test_summary_shape(self):
        profile = FabricProfile(label="grid")
        run_tasks(_square, list(range(5)), jobs=2, profile=profile)
        summary = profile.summary()
        assert summary["label"] == "grid"
        assert summary["n_tasks"] == 5
        assert summary["jobs"] == 2
        assert summary["wall_seconds"] > 0
        assert 0 < summary["utilization"] <= 1.0
        assert sum(w["tasks"] for w in summary["workers"]) == 5

    def test_empty_profile_summary(self):
        summary = FabricProfile(label="idle").summary()
        assert summary == {
            "label": "idle", "n_tasks": 0, "jobs": 0, "wall_seconds": 0.0,
        }

    def test_record_folds_multiple_calls(self):
        profile = FabricProfile()
        run_tasks(_square, [1, 2], jobs=1, profile=profile)
        run_tasks(_square, [3, 4, 5], jobs=1, profile=profile)
        assert profile.summary()["n_tasks"] == 5


# ----------------------------------------------------------------------
# Observed-run event streams across worker counts
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def observed_inputs(tmp_path_factory):
    """A bundle and a matching strategy on disk, for the obs runner."""
    from repro.core import OptimizationProblem, ft_search
    from repro.workloads import save_bundle
    from repro.workloads.generator import generate_application

    root = tmp_path_factory.mktemp("obs")
    app = generate_application(
        2014,
        params=GeneratorParams(n_pes=6, tuple_budget=2000.0),
        cluster=ClusterParams(n_hosts=3, cores_per_host=4),
    )
    bundle = root / "app.json"
    save_bundle(app, bundle)
    result = ft_search(
        OptimizationProblem(app.deployment, ic_target=0.5), time_limit=5.0
    )
    assert result.strategy is not None
    strategy = root / "strategy.json"
    result.strategy.to_json(strategy)
    return str(bundle), str(strategy)


def test_observed_event_streams_bit_identical_across_jobs(observed_inputs):
    """The telemetry determinism contract: JSONL event streams from the
    observed runs are byte-identical at any worker count, because every
    event is stamped in simulated time."""
    from repro.obs.runner import run_observed_modes

    bundle, strategy = observed_inputs
    kwargs = dict(modes=("none", "crash"), duration=8.0, seed=3)
    serial = run_observed_modes(bundle, strategy, jobs=1, **kwargs)
    parallel = run_observed_modes(bundle, strategy, jobs=4, **kwargs)

    assert [r["mode"] for r in serial] == ["none", "crash"]
    for a, b in zip(serial, parallel):
        assert a["jsonl"] == b["jsonl"]
        assert a == b


# ----------------------------------------------------------------------
# initializer plumbing and PersistentPool
# ----------------------------------------------------------------------

_WORKER_TAG = None


def _install_tag(tag) -> None:
    global _WORKER_TAG
    _WORKER_TAG = tag


def _read_tag(_task):
    return _WORKER_TAG


def test_initializer_runs_in_process_on_serial_path():
    global _WORKER_TAG
    _WORKER_TAG = None
    results = run_tasks(
        _read_tag,
        ["a", "b"],
        jobs=1,
        initializer=_install_tag,
        initargs=("tag",),
    )
    assert results == ["tag", "tag"]
    assert _WORKER_TAG == "tag"  # ran in this process, once
    _WORKER_TAG = None


def test_initializer_reaches_pool_workers():
    results = run_tasks(
        _read_tag,
        list(range(4)),
        jobs=2,
        initializer=_install_tag,
        initargs=("pooled",),
    )
    assert results == ["pooled"] * 4
    assert _WORKER_TAG is None  # parent process untouched


class TestPersistentPool:
    def test_reuses_workers_across_map_calls(self):
        from repro.experiments.parallel import PersistentPool

        with PersistentPool(jobs=2) as pool:
            assert not pool.started
            first = pool.map(_square, [1, 2, 3])
            assert pool.started
            second = pool.map(_square, [4, 5])
        assert first == [1, 4, 9]
        assert second == [16, 25]

    def test_empty_task_list_never_forks(self):
        from repro.experiments.parallel import PersistentPool

        pool = PersistentPool(jobs=2)
        assert pool.map(_square, []) == []
        assert not pool.started
        pool.close()

    def test_initializer_state_survives_between_batches(self):
        from repro.experiments.parallel import PersistentPool

        with PersistentPool(
            jobs=2, initializer=_install_tag, initargs=("sticky",)
        ) as pool:
            assert pool.map(_read_tag, [0]) == ["sticky"]
            assert pool.map(_read_tag, [1, 2]) == ["sticky", "sticky"]

    def test_close_is_idempotent_and_map_reforks(self):
        from repro.experiments.parallel import PersistentPool

        pool = PersistentPool(jobs=2)
        assert pool.map(_square, [2]) == [4]
        pool.close()
        pool.close()
        assert pool.map(_square, [3]) == [9]
        pool.close()

    def test_profile_records_timings(self):
        from repro.experiments.parallel import PersistentPool

        profile = FabricProfile(label="pp")
        with PersistentPool(jobs=2) as pool:
            results = pool.map(_square, [1, 2, 3], profile=profile)
        assert results == [1, 4, 9]
        summary = profile.summary()
        assert summary["n_tasks"] == 3
        assert summary["jobs"] == 2
