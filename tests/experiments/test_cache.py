"""Tests for the experiment result cache."""

from __future__ import annotations

from repro.experiments import (
    ExperimentScale,
    StudyScale,
    clear_cache,
    get_study_results,
)
from repro.experiments import cache as cache_module


class TestCache:
    def setup_method(self):
        clear_cache()

    def teardown_method(self):
        clear_cache()

    def test_study_results_cached_by_scale(self):
        scale = StudyScale(
            instances=2, ic_targets=(0.5,), time_limit=0.5,
            host_range=(2, 2), pes_per_host_range=(2, 3),
        )
        first = get_study_results(scale)
        second = get_study_results(scale)
        assert first is second

    def test_different_scale_misses(self):
        base = dict(
            ic_targets=(0.5,), time_limit=0.5,
            host_range=(2, 2), pes_per_host_range=(2, 3),
        )
        first = get_study_results(StudyScale(instances=2, **base))
        second = get_study_results(StudyScale(instances=3, **base))
        assert first is not second
        assert len(second.runs) == 3

    def test_clear_cache_empties_all_stores(self):
        scale = StudyScale(
            instances=2, ic_targets=(0.5,), time_limit=0.5,
            host_range=(2, 2), pes_per_host_range=(2, 3),
        )
        get_study_results(scale)
        assert cache_module._study_cache
        clear_cache()
        assert not cache_module._study_cache
        assert not cache_module._cluster_cache
        assert not cache_module._fig3_cache

    def test_scales_are_hashable_keys(self):
        # Frozen dataclasses hash by value: equal scales share entries.
        a = ExperimentScale(corpus_size=3, crash_corpus_size=2)
        b = ExperimentScale(corpus_size=3, crash_corpus_size=2)
        assert hash(a) == hash(b)
        assert a == b


class TestKnobSnapshotInvalidation:
    """The memo must key on *all* REPRO_* knobs, not just the ones the
    scale dataclass happens to capture: experiment code may read further
    knobs, and a knob can change while a caller passes an explicit
    scale object."""

    def setup_method(self):
        clear_cache()

    def teardown_method(self):
        clear_cache()

    def _counting_stub(self, monkeypatch, target):
        calls = []

        def fake(scale, jobs=None):
            calls.append(scale)
            return object()

        monkeypatch.setattr(cache_module, target, fake)
        return calls

    def test_changing_knob_invalidates_with_explicit_scale(
        self, monkeypatch
    ):
        calls = self._counting_stub(
            monkeypatch, "run_cluster_experiment"
        )
        scale = ExperimentScale(corpus_size=3, crash_corpus_size=2)
        monkeypatch.delenv("REPRO_EXOTIC_KNOB", raising=False)
        first = cache_module.get_cluster_results(scale)
        assert cache_module.get_cluster_results(scale) is first
        monkeypatch.setenv("REPRO_EXOTIC_KNOB", "1")
        second = cache_module.get_cluster_results(scale)
        assert second is not first
        assert len(calls) == 2
        # Restoring the knob restores the original entry.
        monkeypatch.delenv("REPRO_EXOTIC_KNOB")
        assert cache_module.get_cluster_results(scale) is first

    def test_changing_knob_invalidates_study_and_fig3(self, monkeypatch):
        study_calls = self._counting_stub(
            monkeypatch, "run_ftsearch_study"
        )

        def fake_fig3(duration):
            return object()

        monkeypatch.setattr(cache_module, "run_fig3", fake_fig3)
        scale = StudyScale(
            instances=2, ic_targets=(0.5,), time_limit=0.5,
            host_range=(2, 2), pes_per_host_range=(2, 3),
        )
        monkeypatch.delenv("REPRO_TRACE_SECONDS", raising=False)
        study_a = cache_module.get_study_results(scale)
        fig3_a = cache_module.get_fig3_data(5.0)
        monkeypatch.setenv("REPRO_TRACE_SECONDS", "77")
        assert cache_module.get_study_results(scale) is not study_a
        assert cache_module.get_fig3_data(5.0) is not fig3_a
        assert len(study_calls) == 2

    def test_jobs_knob_does_not_invalidate(self, monkeypatch):
        """REPRO_JOBS is a compute-only knob (results are bit-identical
        across worker counts) and must not key the cache."""
        calls = self._counting_stub(
            monkeypatch, "run_cluster_experiment"
        )
        scale = ExperimentScale(corpus_size=3, crash_corpus_size=2)
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        first = cache_module.get_cluster_results(scale)
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert cache_module.get_cluster_results(scale) is first
        assert len(calls) == 1
