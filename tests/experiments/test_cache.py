"""Tests for the experiment result cache."""

from __future__ import annotations

from repro.experiments import (
    ExperimentScale,
    StudyScale,
    clear_cache,
    get_study_results,
)
from repro.experiments import cache as cache_module


class TestCache:
    def setup_method(self):
        clear_cache()

    def teardown_method(self):
        clear_cache()

    def test_study_results_cached_by_scale(self):
        scale = StudyScale(
            instances=2, ic_targets=(0.5,), time_limit=0.5,
            host_range=(2, 2), pes_per_host_range=(2, 3),
        )
        first = get_study_results(scale)
        second = get_study_results(scale)
        assert first is second

    def test_different_scale_misses(self):
        base = dict(
            ic_targets=(0.5,), time_limit=0.5,
            host_range=(2, 2), pes_per_host_range=(2, 3),
        )
        first = get_study_results(StudyScale(instances=2, **base))
        second = get_study_results(StudyScale(instances=3, **base))
        assert first is not second
        assert len(second.runs) == 3

    def test_clear_cache_empties_all_stores(self):
        scale = StudyScale(
            instances=2, ic_targets=(0.5,), time_limit=0.5,
            host_range=(2, 2), pes_per_host_range=(2, 3),
        )
        get_study_results(scale)
        assert cache_module._study_cache
        clear_cache()
        assert not cache_module._study_cache
        assert not cache_module._cluster_cache
        assert not cache_module._fig3_cache

    def test_scales_are_hashable_keys(self):
        # Frozen dataclasses hash by value: equal scales share entries.
        a = ExperimentScale(corpus_size=3, crash_corpus_size=2)
        b = ExperimentScale(corpus_size=3, crash_corpus_size=2)
        assert hash(a) == hash(b)
        assert a == b
