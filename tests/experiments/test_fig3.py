"""Tests for the Fig. 3 demonstration driver."""

from __future__ import annotations

import statistics

import pytest

from repro.experiments import build_pipeline_application, run_fig3
from repro.experiments.figures import render_fig3


@pytest.fixture(scope="module")
def fig3():
    return run_fig3(duration=45.0)


class TestPipelineApplication:
    def test_matches_section_41(self):
        descriptor, deployment = build_pipeline_application()
        assert list(descriptor.graph.pes) == ["pe1", "pe2"]
        space = descriptor.configuration_space
        assert space.by_label("Low").rate_of("src") == 4.0
        assert space.by_label("High").rate_of("src") == 8.0
        assert space.by_label("Low").probability == pytest.approx(0.8)
        # 100 ms per tuple on the deployment's cores.
        assert descriptor.cpu_cost("src", "pe1") == pytest.approx(0.1e9)


class TestSeries:
    def test_series_cover_the_run(self, fig3):
        for series in (fig3.static, fig3.laar):
            assert len(series.seconds) == 45
            assert len(series.input_rate) == 45
            assert len(series.output_rate) == 45
            assert len(series.cpu_utilization) == 45

    def test_static_saturates_in_high(self, fig3):
        high = slice(17, 29)  # High window is [15, 30) plus settling
        peak_cpu = max(fig3.static.cpu_utilization[high])
        assert peak_cpu > 0.95
        out = statistics.fmean(fig3.static.output_rate[high])
        assert out < 6.0

    def test_laar_follows_input(self, fig3):
        high = slice(20, 29)
        out = statistics.fmean(fig3.laar.output_rate[high])
        assert out == pytest.approx(8.0, rel=0.15)

    def test_laar_cpu_below_static_in_low(self, fig3):
        # After the burst both are in Low; LAAR keeps a replica of pe2
        # deactivated (its L.5 strategy), so it burns less CPU.
        tail = slice(35, 44)
        laar_cpu = statistics.fmean(fig3.laar.cpu_utilization[tail])
        static_cpu = statistics.fmean(fig3.static.cpu_utilization[tail])
        assert laar_cpu <= static_cpu + 1e-9

    def test_render_contains_both_panels(self, fig3):
        text = render_fig3(fig3)
        assert "SR" in text
        assert "LAAR" in text
        assert "configuration switches" in text
