"""Unit tests for the figure builders, on hand-crafted results.

These cover the figure arithmetic (normalisations, summaries, renderers)
without running any simulation: a synthetic :class:`ClusterResults` with
known numbers makes every expected ratio computable by hand.
"""

from __future__ import annotations

import pytest

from repro.core.optimizer import SearchOutcome
from repro.experiments import ExperimentScale, FailureMode
from repro.experiments.cluster import ClusterResults, RunResult
from repro.experiments.figures import (
    fig9_cpu,
    fig9_drops,
    fig10_peak_output,
    fig11_host_crash,
    fig11_worst_case,
    fig12_summary,
    render_fig9,
    render_fig10,
    render_fig11,
    render_fig12,
)

VARIANTS = ("NR", "SR", "L.5")


def run_row(app, variant, mode, cpu, drops, processed, peak):
    return RunResult(
        app=app,
        variant=variant,
        mode=mode,
        cpu_time=cpu,
        drops=drops,
        processed=processed,
        output=processed,
        input=1000,
        peak_output_rate=peak,
        config_switches=0,
    )


@pytest.fixture
def synthetic_results():
    """Two apps; NR is the 100-cpu / 10-peak reference everywhere."""
    rows = []
    for app in ("app-a", "app-b"):
        # best case
        rows.append(run_row(app, "NR", FailureMode.BEST, 100.0, 2, 1000, 10.0))
        rows.append(run_row(app, "SR", FailureMode.BEST, 190.0, 60, 1000, 7.0))
        rows.append(run_row(app, "L.5", FailureMode.BEST, 150.0, 4, 1000, 9.5))
        # worst case
        rows.append(run_row(app, "NR", FailureMode.WORST, 50.0, 0, 0, 0.0))
        rows.append(run_row(app, "SR", FailureMode.WORST, 120.0, 10, 950, 6.0))
        rows.append(run_row(app, "L.5", FailureMode.WORST, 90.0, 2, 530, 8.0))
    # crash mode only for app-a
    rows.append(run_row("app-a", "NR", FailureMode.CRASH, 80.0, 1, 800, 8.0))
    rows.append(run_row("app-a", "SR", FailureMode.CRASH, 170.0, 20, 940, 6.5))
    rows.append(run_row("app-a", "L.5", FailureMode.CRASH, 140.0, 3, 900, 9.0))
    return ClusterResults(
        ExperimentScale(corpus_size=2, crash_corpus_size=1),
        VARIANTS,
        rows,
    )


class TestFig9:
    def test_cpu_ratios(self, synthetic_results):
        stats = fig9_cpu(synthetic_results)
        assert stats["NR"].mean == pytest.approx(1.0)
        assert stats["SR"].mean == pytest.approx(1.9)
        assert stats["L.5"].mean == pytest.approx(1.5)

    def test_drop_ratios(self, synthetic_results):
        stats = fig9_drops(synthetic_results)
        assert stats["SR"].mean == pytest.approx(30.0)
        assert stats["L.5"].mean == pytest.approx(2.0)

    def test_render(self, synthetic_results):
        text = render_fig9(synthetic_results)
        assert "Fig. 9 (top)" in text and "Fig. 9 (bottom)" in text
        assert "1.900" in text


class TestFig10:
    def test_peak_ratios(self, synthetic_results):
        stats = fig10_peak_output(synthetic_results)
        assert stats["SR"].mean == pytest.approx(0.7)
        assert stats["L.5"].mean == pytest.approx(0.95)

    def test_render(self, synthetic_results):
        assert "load peak" in render_fig10(synthetic_results)


class TestFig11:
    def test_worst_case_ic(self, synthetic_results):
        stats = fig11_worst_case(synthetic_results)
        assert stats["NR"].mean == pytest.approx(0.0)
        assert stats["SR"].mean == pytest.approx(0.95)
        assert stats["L.5"].mean == pytest.approx(0.53)

    def test_crash_uses_subset(self, synthetic_results):
        stats = fig11_host_crash(synthetic_results)
        # Only app-a has crash rows: one sample per variant.
        assert stats["L.5"].count == 1
        assert stats["L.5"].mean == pytest.approx(0.9)

    def test_render(self, synthetic_results):
        text = render_fig11(synthetic_results)
        assert "worst-case" in text and "host crash" in text


class TestFig12:
    def test_summary_normalisation(self, synthetic_results):
        summary = fig12_summary(synthetic_results)
        assert summary["SR"]["cost_vs_SR"] == pytest.approx(1.0)
        assert summary["SR"]["drops_vs_SR"] == pytest.approx(1.0)
        assert summary["L.5"]["cost_vs_SR"] == pytest.approx(1.5 / 1.9)
        assert summary["L.5"]["drops_vs_SR"] == pytest.approx(2.0 / 30.0)
        assert summary["L.5"]["worst_case_ic"] == pytest.approx(0.53)

    def test_render(self, synthetic_results):
        text = render_fig12(synthetic_results)
        assert "normalized w.r.t. SR" in text


class TestOutcomeHelpers:
    def test_outcome_share(self):
        from repro.experiments import StudyScale
        from repro.experiments.figures import outcome_share
        from repro.experiments.ftsearch_study import StudyResults, StudyRun
        from repro.core.optimizer import SearchStats

        scale = StudyScale(instances=2, ic_targets=(0.5,))
        runs = [
            StudyRun(
                app="a", n_hosts=2, n_pes=4, ic_target=0.5,
                outcome=SearchOutcome.OPTIMAL, best_cost=1.0, elapsed=0.1,
                cost_ratio=1.0, time_ratio=0.5, stats=SearchStats(),
            ),
            StudyRun(
                app="b", n_hosts=2, n_pes=4, ic_target=0.5,
                outcome=SearchOutcome.INFEASIBLE, best_cost=float("inf"),
                elapsed=0.1, cost_ratio=None, time_ratio=None,
                stats=SearchStats(),
            ),
        ]
        study = StudyResults(scale, runs)
        shares = outcome_share(study, SearchOutcome.OPTIMAL)
        assert shares[0.5] == pytest.approx(0.5)
