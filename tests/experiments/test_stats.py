"""Tests for the box-plot statistics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExperimentError
from repro.experiments import BoxStats


class TestBoxStats:
    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            BoxStats.from_values([])

    def test_nan_rejected(self):
        with pytest.raises(ExperimentError):
            BoxStats.from_values([1.0, float("nan")])

    def test_single_value(self):
        stats = BoxStats.from_values([3.0])
        assert stats.mean == 3.0
        assert stats.median == 3.0
        assert stats.q1 == stats.q3 == 3.0
        assert stats.outliers == ()

    def test_known_quartiles(self):
        stats = BoxStats.from_values([1, 2, 3, 4, 5])
        assert stats.median == 3.0
        assert stats.q1 == 2.0
        assert stats.q3 == 4.0
        assert stats.mean == 3.0

    def test_outlier_detection(self):
        values = [1.0] * 10 + [100.0]
        stats = BoxStats.from_values(values)
        assert 100.0 in stats.outliers
        assert stats.whisker_high == 1.0

    def test_whiskers_within_fences(self):
        stats = BoxStats.from_values([1, 2, 3, 4, 5, 6, 7, 8, 9, 30])
        iqr = stats.q3 - stats.q1
        assert stats.whisker_high <= stats.q3 + 1.5 * iqr
        assert stats.whisker_low >= stats.q1 - 1.5 * iqr

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=60,
        )
    )
    def test_property_ordering_invariants(self, values):
        stats = BoxStats.from_values(values)
        assert stats.minimum <= stats.whisker_low <= stats.q1
        assert stats.q1 <= stats.median <= stats.q3
        assert stats.q3 <= stats.whisker_high <= stats.maximum
        assert stats.minimum <= stats.mean <= stats.maximum
        assert stats.count == len(values)
        # Every outlier lies outside the whiskers.
        for outlier in stats.outliers:
            assert (
                outlier < stats.whisker_low or outlier > stats.whisker_high
            )
