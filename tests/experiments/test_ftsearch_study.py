"""Integration tests of the FT-Search study driver (tiny scale)."""

from __future__ import annotations

import pytest

from repro.core.optimizer import PruneRule, SearchOutcome
from repro.errors import ExperimentError
from repro.experiments import StudyScale, run_ftsearch_study


@pytest.fixture(scope="module")
def tiny_study():
    scale = StudyScale(
        instances=4,
        ic_targets=(0.5, 0.9),
        time_limit=0.8,
        host_range=(2, 3),
        pes_per_host_range=(2, 4),
    )
    return run_ftsearch_study(scale)


class TestScale:
    def test_validation(self):
        with pytest.raises(ExperimentError):
            StudyScale(instances=0)
        with pytest.raises(ExperimentError):
            StudyScale(host_range=(1, 3))


class TestStudy:
    def test_run_count(self, tiny_study):
        assert len(tiny_study.runs) == 4 * 2

    def test_outcome_counts_partition_runs(self, tiny_study):
        for target in (0.5, 0.9):
            counts = tiny_study.outcome_counts(target)
            assert sum(counts.values()) == 4
            assert all(isinstance(k, SearchOutcome) for k in counts)

    def test_ratios_only_from_optimal_runs(self, tiny_study):
        optimal = [
            run
            for run in tiny_study.runs
            if run.outcome is SearchOutcome.OPTIMAL
        ]
        assert len(tiny_study.cost_ratios()) <= len(optimal)
        for ratio in tiny_study.cost_ratios():
            assert ratio >= 1.0 - 1e-9
        for ratio in tiny_study.time_ratios():
            assert 0.0 < ratio <= 1.0 + 1e-9

    def test_merged_stats_accumulate(self, tiny_study):
        merged = tiny_study.merged_stats()
        assert merged.nodes_expanded == sum(
            run.stats.nodes_expanded for run in tiny_study.runs
        )

    def test_prune_shares_normalised(self, tiny_study):
        shares = tiny_study.prune_shares()
        if tiny_study.merged_stats().total_prunes:
            assert sum(shares.values()) == pytest.approx(1.0)
        assert set(shares) == set(PruneRule)

    def test_instances_record_shape(self, tiny_study):
        for run in tiny_study.runs:
            assert run.n_hosts >= 2
            assert run.n_pes >= 2
            assert run.elapsed >= 0.0
