"""Documentation-consistency checks for the scale knobs.

The README and the scale module both promise environment-variable
overrides; these tests keep the promise list and the implementation in
sync (a stale doc here would silently strand users at laptop scale).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import ExperimentScale, StudyScale
from repro.experiments import scale as scale_module

ENV_KNOBS = (
    "REPRO_CORPUS_SIZE",
    "REPRO_CRASH_CORPUS",
    "REPRO_TRACE_SECONDS",
    "REPRO_FT_TIME_LIMIT",
    "REPRO_STUDY_SIZE",
    "REPRO_STUDY_TIME_LIMIT",
    "REPRO_JOBS",
)


@pytest.mark.parametrize("knob", ENV_KNOBS)
def test_every_knob_is_documented_in_the_module(knob):
    assert knob in (scale_module.__doc__ or ""), (
        f"{knob} missing from repro.experiments.scale docstring"
    )


@pytest.mark.parametrize("knob", ENV_KNOBS)
def test_every_knob_is_actually_read(knob, monkeypatch):
    """Setting the variable must change the corresponding scale field."""
    if knob == "REPRO_JOBS":
        # Not a scale field: read by the parallel fabric instead.
        from repro.experiments.parallel import resolve_jobs

        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs() == 3
        return
    values = {
        "REPRO_CORPUS_SIZE": ("corpus_size", "7", 7, ExperimentScale),
        "REPRO_CRASH_CORPUS": ("crash_corpus_size", "2", 2, ExperimentScale),
        "REPRO_TRACE_SECONDS": (
            "trace_seconds", "44.5", 44.5, ExperimentScale,
        ),
        "REPRO_FT_TIME_LIMIT": (
            "ft_time_limit", "9.5", 9.5, ExperimentScale,
        ),
        "REPRO_STUDY_SIZE": ("instances", "5", 5, StudyScale),
        "REPRO_STUDY_TIME_LIMIT": ("time_limit", "0.7", 0.7, StudyScale),
    }
    field, raw, expected, scale_class = values[knob]
    monkeypatch.setenv(knob, raw)
    scale = scale_class.from_env()
    assert getattr(scale, field) == expected


def test_experiments_md_mentions_scaling():
    text = Path(__file__).parents[2].joinpath("EXPERIMENTS.md").read_text()
    assert "REPRO_" in text


def test_readme_mentions_scaling():
    text = Path(__file__).parents[2].joinpath("README.md").read_text()
    assert "REPRO_CORPUS_SIZE" in text
