"""Tests for the IC / cost frontier sweep."""

from __future__ import annotations

import math

import pytest

from repro.core import OptimizationProblem, SearchOutcome, ft_search
from repro.errors import ExperimentError
from repro.experiments.frontier import (
    FrontierPoint,
    ic_cost_frontier,
    render_frontier,
)


@pytest.fixture(scope="module")
def frontier(request):
    from repro.workloads import ClusterParams, GeneratorParams, generate_application

    app = generate_application(
        9,
        params=GeneratorParams(n_pes=8),
        cluster=ClusterParams(n_hosts=3, cores_per_host=6),
    )
    points = ic_cost_frontier(
        app.deployment, targets=(0.0, 0.3, 0.5, 0.95), time_limit=2.0
    )
    return app, points


class TestFrontier:
    def test_empty_targets_rejected(self, pipeline_deployment):
        with pytest.raises(ExperimentError):
            ic_cost_frontier(pipeline_deployment, targets=())

    def test_points_sorted_by_target(self, frontier):
        _, points = frontier
        targets = [p.target for p in points]
        assert targets == sorted(targets)

    def test_cost_monotone_over_feasible_targets(self, frontier):
        _, points = frontier
        feasible = [p for p in points if p.feasible]
        assert len(feasible) >= 2
        costs = [p.cost for p in feasible]
        assert costs == sorted(costs)

    def test_achieved_ic_meets_targets(self, frontier):
        _, points = frontier
        for point in points:
            if point.feasible:
                assert point.achieved_ic >= point.target - 1e-9

    def test_infeasible_edge_reported(self, frontier):
        _, points = frontier
        # 0.95 is beyond what generated 8-PE apps can guarantee.
        hardest = points[-1]
        assert hardest.target == 0.95
        assert not hardest.feasible
        assert math.isinf(hardest.cost)

    def test_penalty_mode_fills_the_infeasible_edge(self, frontier):
        app, points = frontier
        soft = ic_cost_frontier(
            app.deployment,
            targets=(0.95,),
            time_limit=2.0,
            penalty_weight=1e12,
        )
        assert soft[0].feasible  # penalty mode always returns something
        assert 0.0 <= soft[0].achieved_ic <= 1.0

    def test_matches_direct_search(self, frontier):
        app, points = frontier
        direct = ft_search(
            OptimizationProblem(app.deployment, ic_target=0.5),
            time_limit=2.0,
        )
        swept = next(p for p in points if p.target == 0.5)
        if direct.outcome is SearchOutcome.OPTIMAL and (
            swept.outcome is SearchOutcome.OPTIMAL
        ):
            assert swept.cost == pytest.approx(direct.best_cost, rel=1e-6)


class TestRendering:
    def test_render_contains_rows(self, frontier):
        _, points = frontier
        text = render_frontier(points, reference_cost=points[0].cost * 2)
        assert "IC target" in text
        assert "infeasible" in text
        assert "0.30" in text

    def test_render_without_reference(self):
        points = [
            FrontierPoint(0.5, SearchOutcome.OPTIMAL, 10.0, 0.5),
        ]
        text = render_frontier(points)
        assert "-" in text
