"""Tests for variant construction (NR/SR/GRD/L.x)."""

from __future__ import annotations

import pytest

from repro.core import (
    cpu_constraint_violations,
    internal_completeness,
    strategy_cost,
)
from repro.errors import ExperimentError
from repro.experiments import build_variants, laar_variant_name
from repro.workloads import GeneratorParams, generate_application


@pytest.fixture(scope="module")
def small_app():
    return generate_application(11, params=GeneratorParams(n_pes=8))


@pytest.fixture(scope="module")
def variants(small_app):
    return build_variants(small_app, ic_targets=(0.3, 0.5), time_limit=2.0)


class TestNames:
    def test_laar_variant_name(self):
        assert laar_variant_name(0.5) == "L.5"
        assert laar_variant_name(0.65) == "L.65"
        assert laar_variant_name(1.0) == "L1"

    def test_variant_ordering(self, variants):
        assert variants.names == ("NR", "SR", "GRD", "L.3", "L.5")

    def test_unknown_variant_rejected(self, variants):
        with pytest.raises(ExperimentError):
            variants.is_dynamic("GHOST")


class TestStrategies:
    def test_laar_strategies_meet_targets(self, variants):
        for name, target in (("L.3", 0.3), ("L.5", 0.5)):
            strategy = variants.strategies[name]
            assert internal_completeness(strategy) >= target - 1e-9
            assert cpu_constraint_violations(strategy) == []

    def test_guaranteed_ic_reported(self, variants):
        assert variants.guaranteed_ic("L.3") >= 0.3
        assert variants.guaranteed_ic("SR") is None

    def test_nr_single_replica_everywhere(self, variants, small_app):
        nr = variants.strategies["NR"]
        for pe in small_app.descriptor.graph.pes:
            for c in range(2):
                assert nr.active_count(pe, c) == 1

    def test_grd_never_overloads(self, variants):
        assert cpu_constraint_violations(variants.strategies["GRD"]) == []

    def test_cost_ordering(self, variants):
        costs = {
            name: strategy_cost(strategy)
            for name, strategy in variants.strategies.items()
        }
        assert costs["NR"] < costs["L.3"] <= costs["L.5"] < costs["SR"]

    def test_dynamism_flags(self, variants):
        assert not variants.is_dynamic("NR")
        assert not variants.is_dynamic("SR")
        assert variants.is_dynamic("GRD")
        assert variants.is_dynamic("L.5")

    def test_infeasible_target_raises(self, small_app):
        with pytest.raises(ExperimentError, match="no strategy"):
            build_variants(small_app, ic_targets=(1.0,), time_limit=2.0)
