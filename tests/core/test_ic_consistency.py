"""Consistency of the IC machinery: breakdown vs direct functions.

The incremental FT-Search bookkeeping, the direct FIC/BIC functions, and
the per-configuration breakdown must all agree on any strategy.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    ActivationStrategy,
    RateTable,
    ReplicaId,
    best_case_internal_completeness,
    failure_internal_completeness,
    ic_breakdown,
    internal_completeness,
)
from tests.support import random_deployment, random_descriptor


def random_strategy(rng, deployment):
    values = [(True, True), (True, False), (False, True)]
    activations = {}
    n_configs = len(deployment.descriptor.configuration_space)
    for pe in deployment.descriptor.graph.pes:
        for c in range(n_configs):
            a0, a1 = rng.choice(values)
            activations[(ReplicaId(pe, 0), c)] = a0
            activations[(ReplicaId(pe, 1), c)] = a1
    return ActivationStrategy(deployment, activations)


class TestConsistency:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_breakdown_sums_match_direct_functions(self, seed):
        rng = random.Random(seed)
        descriptor = random_descriptor(rng, n_pes=5)
        deployment = random_deployment(rng, descriptor)
        strategy = random_strategy(rng, deployment)
        table = RateTable(descriptor)

        breakdown = ic_breakdown(strategy, rate_table=table)
        fic = failure_internal_completeness(strategy, rate_table=table)
        bic = best_case_internal_completeness(table)
        ic = internal_completeness(strategy, rate_table=table)

        assert breakdown.fic == pytest.approx(fic)
        assert breakdown.bic == pytest.approx(bic)
        assert breakdown.ic == pytest.approx(ic)
        assert sum(f for f, _ in breakdown.per_config.values()) == (
            pytest.approx(fic)
        )
        assert sum(b for _, b in breakdown.per_config.values()) == (
            pytest.approx(bic)
        )

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_per_config_fic_never_exceeds_bic(self, seed):
        rng = random.Random(seed)
        descriptor = random_descriptor(rng, n_pes=5)
        deployment = random_deployment(rng, descriptor)
        strategy = random_strategy(rng, deployment)
        breakdown = ic_breakdown(strategy)
        for fic_c, bic_c in breakdown.per_config.values():
            assert 0.0 <= fic_c <= bic_c + 1e-9

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_ftsearch_reported_ic_matches_reference(
        self, pipeline_deployment, seed
    ):
        """Whatever strategy FT-Search returns, its reported IC equals
        the reference implementation's value."""
        from repro.core import OptimizationProblem, ft_search

        rng = random.Random(seed)
        target = rng.choice([0.3, 0.5, 0.66])
        result = ft_search(
            OptimizationProblem(pipeline_deployment, ic_target=target),
            time_limit=30.0,
        )
        assert result.strategy is not None
        assert internal_completeness(result.strategy) == pytest.approx(
            result.best_ic
        )
