"""Unit tests for the application graph model."""

from __future__ import annotations

import pytest

from repro.core import ApplicationGraph, Component, ComponentKind, Edge
from repro.errors import GraphError


def build_diamond() -> ApplicationGraph:
    return ApplicationGraph.build(
        sources=["src"],
        pes=["a", "b", "c", "d"],
        sinks=["sink"],
        edges=[
            ("src", "a"),
            ("a", "b"),
            ("a", "c"),
            ("b", "d"),
            ("c", "d"),
            ("d", "sink"),
        ],
    )


class TestConstruction:
    def test_component_roles(self):
        graph = build_diamond()
        assert graph.kind("src") is ComponentKind.SOURCE
        assert graph.kind("a") is ComponentKind.PE
        assert graph.kind("sink") is ComponentKind.SINK

    def test_component_name_required(self):
        with pytest.raises(GraphError):
            Component("", ComponentKind.PE)

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Edge("a", "a")

    def test_duplicate_component_rejected(self):
        with pytest.raises(GraphError, match="duplicate component"):
            ApplicationGraph(
                [
                    Component("x", ComponentKind.SOURCE),
                    Component("x", ComponentKind.SINK),
                ],
                [],
            )

    def test_duplicate_edge_rejected(self):
        with pytest.raises(GraphError, match="duplicate edge"):
            ApplicationGraph.build(
                ["s"], ["p"], ["k"],
                [("s", "p"), ("s", "p"), ("p", "k")],
            )

    def test_dangling_edge_rejected(self):
        with pytest.raises(GraphError, match="not a component"):
            ApplicationGraph.build(["s"], ["p"], ["k"], [("s", "ghost")])

    def test_cycle_rejected(self):
        with pytest.raises(GraphError, match="cycle"):
            ApplicationGraph.build(
                ["s"], ["p", "q"], ["k"],
                [("s", "p"), ("p", "q"), ("q", "p"), ("q", "k")],
            )

    def test_source_with_predecessor_rejected(self):
        with pytest.raises(GraphError):
            ApplicationGraph.build(
                ["s", "s2"], ["p"], ["k"],
                [("s", "p"), ("p", "k"), ("p", "s2")],
            )

    def test_pe_without_successor_rejected(self):
        with pytest.raises(GraphError, match="must have predecessors"):
            ApplicationGraph.build(
                ["s"], ["p", "orphan"], ["k"], [("s", "p"), ("p", "k")]
            )

    def test_no_source_rejected(self):
        with pytest.raises(GraphError, match="no data source"):
            ApplicationGraph([Component("k", ComponentKind.SINK)], [])

    def test_no_sink_rejected(self):
        with pytest.raises(GraphError, match="no data sink"):
            ApplicationGraph([Component("s", ComponentKind.SOURCE)], [])


class TestTraversal:
    def test_pred_matches_edges(self):
        graph = build_diamond()
        assert set(graph.pred("d")) == {"b", "c"}
        assert graph.pred("src") == ()

    def test_succ_matches_edges(self):
        graph = build_diamond()
        assert set(graph.succ("a")) == {"b", "c"}
        assert graph.succ("sink") == ()

    def test_topological_order_respects_edges(self):
        graph = build_diamond()
        order = graph.topological_order
        position = {name: i for i, name in enumerate(order)}
        for edge in graph.edges:
            assert position[edge.tail] < position[edge.head]

    def test_pes_are_topologically_ordered(self):
        graph = build_diamond()
        pes = graph.pes
        assert pes.index("a") < pes.index("b")
        assert pes.index("b") < pes.index("d")
        assert pes.index("c") < pes.index("d")

    def test_downstream_of(self):
        graph = build_diamond()
        assert graph.downstream_of("a") == {"b", "c", "d", "sink"}
        assert graph.downstream_of("d") == {"sink"}

    def test_upstream_of(self):
        graph = build_diamond()
        assert graph.upstream_of("d") == {"src", "a", "b", "c"}
        assert graph.upstream_of("src") == frozenset()

    def test_depth_of(self):
        graph = build_diamond()
        assert graph.depth_of("src") == 0
        assert graph.depth_of("a") == 1
        assert graph.depth_of("d") == 3

    def test_pe_input_edges(self):
        graph = build_diamond()
        edges = graph.pe_input_edges("d")
        assert {(e.tail, e.head) for e in edges} == {("b", "d"), ("c", "d")}

    def test_pe_input_edges_rejects_non_pe(self):
        graph = build_diamond()
        with pytest.raises(GraphError):
            graph.pe_input_edges("sink")

    def test_unknown_component_raises(self):
        graph = build_diamond()
        with pytest.raises(GraphError):
            graph.pred("ghost")

    def test_contains_and_len(self):
        graph = build_diamond()
        assert "a" in graph
        assert "ghost" not in graph
        assert len(graph) == 6


class TestSerialisation:
    def test_round_trip(self):
        graph = build_diamond()
        clone = ApplicationGraph.from_dict(graph.to_dict())
        assert clone.to_dict() == graph.to_dict()
        assert clone.topological_order == graph.topological_order
