"""Tests for the text renderers of core model objects."""

from __future__ import annotations

from repro.core import (
    ActivationStrategy,
    ReplicaId,
    host_load_report,
    strategy_table,
)


class TestStrategyTable:
    def test_all_active_shows_full_bits(self, pipeline_deployment):
        strategy = ActivationStrategy.all_active(pipeline_deployment)
        table = strategy_table(strategy)
        lines = table.splitlines()
        assert "Low" in lines[0] and "High" in lines[0]
        for line in lines[1:]:
            assert "11" in line

    def test_partial_activation_bits(self, pipeline_deployment):
        strategy = ActivationStrategy.all_active(pipeline_deployment).replace(
            {(ReplicaId("pe2", 0), 1): False}
        )
        table = strategy_table(strategy)
        pe2_line = next(
            line for line in table.splitlines() if line.startswith("pe2")
        )
        # Low column full, High column 01.
        assert "11" in pe2_line and "01" in pe2_line

    def test_one_row_per_pe(self, diamond_deployment):
        strategy = ActivationStrategy.all_active(diamond_deployment)
        lines = strategy_table(strategy).splitlines()
        assert len(lines) == 1 + len(
            diamond_deployment.descriptor.graph.pes
        )


class TestHostLoadReport:
    def test_fractions_reported(self, pipeline_deployment):
        strategy = ActivationStrategy.all_active(pipeline_deployment)
        report = host_load_report(strategy)
        lines = report.splitlines()
        assert lines[0].startswith("host")
        assert len(lines) == 1 + len(pipeline_deployment.host_names)
        # The roomy two-core deployment: Low at 0.40, High at 0.80.
        assert "0.40" in report and "0.80" in report

    def test_overload_marker(self, pipeline_descriptor):
        from repro.core import Host
        from repro.placement import balanced_placement

        hosts = [
            Host("h0", cores=2, cycles_per_core=0.5e9),
            Host("h1", cores=2, cycles_per_core=0.5e9),
        ]
        deployment = balanced_placement(pipeline_descriptor, hosts, 2)
        strategy = ActivationStrategy.all_active(deployment)
        report = host_load_report(strategy)
        assert "1.60!" in report  # Eq. 11 violation flagged
