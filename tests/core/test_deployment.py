"""Unit tests for hosts, replicas, and replicated deployments."""

from __future__ import annotations

import pytest

from repro.core import (
    Host,
    RateTable,
    ReplicaId,
    ReplicatedDeployment,
)
from repro.errors import DeploymentError

GIGA = 1.0e9


class TestHost:
    def test_capacity(self):
        host = Host("h", cores=4, cycles_per_core=2.0 * GIGA)
        assert host.capacity == pytest.approx(8.0 * GIGA)

    def test_rejects_zero_cores(self):
        with pytest.raises(DeploymentError):
            Host("h", cores=0)

    def test_rejects_nonpositive_cycles(self):
        with pytest.raises(DeploymentError):
            Host("h", cycles_per_core=0.0)

    def test_rejects_empty_name(self):
        with pytest.raises(DeploymentError):
            Host("")


class TestReplicaId:
    def test_rejects_negative_index(self):
        with pytest.raises(DeploymentError):
            ReplicaId("pe", -1)

    def test_ordering_is_stable(self):
        assert ReplicaId("a", 0) < ReplicaId("a", 1) < ReplicaId("b", 0)


def manual_deployment(pipeline_descriptor, assignment=None):
    hosts = [Host("h0", cores=2, cycles_per_core=GIGA),
             Host("h1", cores=2, cycles_per_core=GIGA)]
    if assignment is None:
        assignment = {
            ReplicaId("pe1", 0): "h0",
            ReplicaId("pe1", 1): "h1",
            ReplicaId("pe2", 0): "h0",
            ReplicaId("pe2", 1): "h1",
        }
    return ReplicatedDeployment(pipeline_descriptor, hosts, assignment, 2)


class TestDeploymentValidation:
    def test_valid_deployment(self, pipeline_descriptor):
        deployment = manual_deployment(pipeline_descriptor)
        assert deployment.host_of(ReplicaId("pe1", 0)) == "h0"
        assert set(deployment.replicas_on("h1")) == {
            ReplicaId("pe1", 1),
            ReplicaId("pe2", 1),
        }

    def test_replicas_sorted_by_topology(self, pipeline_descriptor):
        deployment = manual_deployment(pipeline_descriptor)
        assert deployment.replicas == (
            ReplicaId("pe1", 0),
            ReplicaId("pe1", 1),
            ReplicaId("pe2", 0),
            ReplicaId("pe2", 1),
        )

    def test_same_host_replicas_rejected(self, pipeline_descriptor):
        assignment = {
            ReplicaId("pe1", 0): "h0",
            ReplicaId("pe1", 1): "h0",
            ReplicaId("pe2", 0): "h0",
            ReplicaId("pe2", 1): "h1",
        }
        with pytest.raises(DeploymentError, match="share a host"):
            manual_deployment(pipeline_descriptor, assignment)

    def test_missing_replica_rejected(self, pipeline_descriptor):
        assignment = {
            ReplicaId("pe1", 0): "h0",
            ReplicaId("pe2", 0): "h0",
            ReplicaId("pe2", 1): "h1",
        }
        with pytest.raises(DeploymentError, match="replicas 0..1"):
            manual_deployment(pipeline_descriptor, assignment)

    def test_unknown_pe_rejected(self, pipeline_descriptor):
        assignment = {
            ReplicaId("ghost", 0): "h0",
            ReplicaId("ghost", 1): "h1",
        }
        with pytest.raises(DeploymentError, match="unknown PE"):
            manual_deployment(pipeline_descriptor, assignment)

    def test_unknown_host_rejected(self, pipeline_descriptor):
        assignment = {
            ReplicaId("pe1", 0): "h9",
            ReplicaId("pe1", 1): "h1",
            ReplicaId("pe2", 0): "h0",
            ReplicaId("pe2", 1): "h1",
        }
        with pytest.raises(DeploymentError, match="unknown host"):
            manual_deployment(pipeline_descriptor, assignment)

    def test_bad_replication_factor(self, pipeline_descriptor):
        with pytest.raises(DeploymentError):
            ReplicatedDeployment(pipeline_descriptor, [Host("h")], {}, 0)


class TestLoadQueries:
    def test_host_load_all_active(self, pipeline_descriptor):
        deployment = manual_deployment(pipeline_descriptor)
        table = RateTable(pipeline_descriptor)
        # h0 carries one replica of each PE; High config: 0.8e9 x 2.
        assert deployment.host_load("h0", 1, table) == pytest.approx(1.6 * GIGA)

    def test_host_load_respects_active_map(self, pipeline_descriptor):
        deployment = manual_deployment(pipeline_descriptor)
        table = RateTable(pipeline_descriptor)
        active = {replica: False for replica in deployment.replicas}
        active[ReplicaId("pe1", 0)] = True
        assert deployment.host_load("h0", 1, table, active) == (
            pytest.approx(0.8 * GIGA)
        )

    def test_overload_detection(self, pipeline_descriptor):
        # Single-core 1 GHz hosts: High with everything active needs
        # 1.6e9 > 1.0e9 per host.
        hosts = [Host("h0", cores=1, cycles_per_core=GIGA),
                 Host("h1", cores=1, cycles_per_core=GIGA)]
        assignment = {
            ReplicaId("pe1", 0): "h0",
            ReplicaId("pe1", 1): "h1",
            ReplicaId("pe2", 0): "h0",
            ReplicaId("pe2", 1): "h1",
        }
        deployment = ReplicatedDeployment(
            pipeline_descriptor, hosts, assignment, 2
        )
        table = RateTable(pipeline_descriptor)
        assert not deployment.is_overloaded(0, table)
        assert deployment.is_overloaded(1, table)
        assert deployment.overloaded_hosts(1, table) == ("h0", "h1")


class TestSerialisation:
    def test_round_trip(self, pipeline_descriptor):
        deployment = manual_deployment(pipeline_descriptor)
        clone = ReplicatedDeployment.from_dict(
            pipeline_descriptor, deployment.to_dict()
        )
        assert clone.to_dict() == deployment.to_dict()
