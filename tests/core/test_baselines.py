"""Tests for the NR / SR / GRD baseline variants (Sec. 5.2)."""

from __future__ import annotations

import pytest

from repro.core import (
    ActivationStrategy,
    Host,
    RateTable,
    ReplicaId,
    ReplicatedDeployment,
    cpu_constraint_violations,
    greedy_deactivation,
    non_replicated,
    static_replication,
    strategy_cost,
)
from repro.errors import OptimizationError

GIGA = 1.0e9


@pytest.fixture
def tight_deployment(pipeline_descriptor):
    """Single-core hosts: High overloads with full replication (Fig. 3)."""
    hosts = [Host("h0", cores=1, cycles_per_core=GIGA),
             Host("h1", cores=1, cycles_per_core=GIGA)]
    assignment = {
        ReplicaId("pe1", 0): "h0",
        ReplicaId("pe1", 1): "h1",
        ReplicaId("pe2", 0): "h1",
        ReplicaId("pe2", 1): "h0",
    }
    return ReplicatedDeployment(pipeline_descriptor, hosts, assignment, 2)


class TestStaticReplication:
    def test_everything_active(self, pipeline_deployment):
        strategy = static_replication(pipeline_deployment)
        for replica in pipeline_deployment.replicas:
            assert strategy.activations_of(replica) == (True, True)


class TestNonReplicated:
    def test_derived_from_reference_high_activations(self, pipeline_deployment):
        # Reference keeps only replica 1 of pe1 in High.
        reference = static_replication(pipeline_deployment).replace(
            {(ReplicaId("pe1", 0), 1): False}
        )
        nr = non_replicated(reference, high_config_index=1)
        # pe1: only replica 1 was active in High -> keep replica 1.
        assert nr.activations_of(ReplicaId("pe1", 1)) == (True, True)
        assert nr.activations_of(ReplicaId("pe1", 0)) == (False, False)
        # pe2: both were active -> lowest index (0) kept.
        assert nr.activations_of(ReplicaId("pe2", 0)) == (True, True)
        assert nr.activations_of(ReplicaId("pe2", 1)) == (False, False)

    def test_single_replica_everywhere(self, pipeline_deployment):
        reference = static_replication(pipeline_deployment)
        nr = non_replicated(reference, 1)
        for pe in ("pe1", "pe2"):
            for c in range(2):
                assert nr.active_count(pe, c) == 1

    def test_rejects_reference_without_active_replica(
        self, pipeline_deployment
    ):
        dead = ActivationStrategy(
            pipeline_deployment,
            {
                (replica, c): False
                for replica in pipeline_deployment.replicas
                for c in range(2)
            },
            require_one_active=False,
        )
        with pytest.raises(OptimizationError):
            non_replicated(dead, 1)


class TestGreedy:
    def test_resolves_high_overload(self, tight_deployment):
        strategy = greedy_deactivation(tight_deployment)
        assert cpu_constraint_violations(strategy) == []

    def test_keeps_full_replication_where_it_fits(self, tight_deployment):
        strategy = greedy_deactivation(tight_deployment)
        # Low fits fully replicated (0.8e9 per host), so greedy leaves it.
        assert strategy.active_count("pe1", 0) == 2
        assert strategy.active_count("pe2", 0) == 2

    def test_deactivates_just_enough(self, tight_deployment):
        strategy = greedy_deactivation(tight_deployment)
        # High: each host carries 1.6e9; dropping one replica per host
        # brings it to 0.8e9. Exactly one PE replica per host goes.
        assert strategy.active_count("pe1", 1) + strategy.active_count(
            "pe2", 1
        ) == 2

    def test_prefers_upstream_pes(self, tight_deployment):
        strategy = greedy_deactivation(tight_deployment)
        # pe1 and pe2 consume the same CPU; the upstream-first heuristic
        # deactivates pe1 before pe2 on the first overloaded host.
        assert strategy.active_count("pe1", 1) == 1

    def test_cost_between_nr_and_sr(self, tight_deployment):
        table = RateTable(tight_deployment.descriptor)
        sr = static_replication(tight_deployment)
        grd = greedy_deactivation(tight_deployment, table)
        nr = non_replicated(grd, 1)
        assert strategy_cost(nr, table) < strategy_cost(grd, table)
        assert strategy_cost(grd, table) < strategy_cost(sr, table)

    def test_raises_when_unfixable(self, pipeline_descriptor):
        # Hosts so small that even one replica of each PE overloads them.
        hosts = [Host("h0", cores=1, cycles_per_core=0.1 * GIGA),
                 Host("h1", cores=1, cycles_per_core=0.1 * GIGA)]
        assignment = {
            ReplicaId("pe1", 0): "h0",
            ReplicaId("pe1", 1): "h1",
            ReplicaId("pe2", 0): "h1",
            ReplicaId("pe2", 1): "h0",
        }
        deployment = ReplicatedDeployment(
            pipeline_descriptor, hosts, assignment, 2
        )
        with pytest.raises(OptimizationError, match="stuck"):
            greedy_deactivation(deployment)
