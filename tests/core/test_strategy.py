"""Unit tests for activation strategies (Eq. 4 / Eq. 12, JSON format)."""

from __future__ import annotations

import pytest

from repro.core import ActivationStrategy, ReplicaId
from repro.errors import StrategyError


def strategy_with(deployment, overrides):
    """All-active strategy with ``{(pe, replica, config): state}`` overrides."""
    activations = {
        (replica, c): True
        for replica in deployment.replicas
        for c in range(2)
    }
    for (pe, index, c), state in overrides.items():
        activations[(ReplicaId(pe, index), c)] = state
    return ActivationStrategy(deployment, activations)


class TestConstruction:
    def test_all_active(self, pipeline_deployment):
        strategy = ActivationStrategy.all_active(pipeline_deployment)
        for replica in pipeline_deployment.replicas:
            assert strategy.is_active(replica, 0)
            assert strategy.is_active(replica, 1)
        assert strategy.name == "SR"

    def test_single_replica(self, pipeline_deployment):
        strategy = ActivationStrategy.single_replica(
            pipeline_deployment, {"pe1": 0, "pe2": 1}
        )
        assert strategy.is_active(ReplicaId("pe1", 0), 0)
        assert not strategy.is_active(ReplicaId("pe1", 1), 0)
        assert strategy.active_count("pe2", 1) == 1

    def test_single_replica_requires_all_pes(self, pipeline_deployment):
        with pytest.raises(StrategyError, match="no chosen replica"):
            ActivationStrategy.single_replica(pipeline_deployment, {"pe1": 0})

    def test_eq12_violation_rejected(self, pipeline_deployment):
        with pytest.raises(StrategyError, match="Eq. 12"):
            strategy_with(
                pipeline_deployment,
                {("pe1", 0, 1): False, ("pe1", 1, 1): False},
            )

    def test_eq12_can_be_disabled_for_tests(self, pipeline_deployment):
        activations = {
            (replica, c): False
            for replica in pipeline_deployment.replicas
            for c in range(2)
        }
        strategy = ActivationStrategy(
            pipeline_deployment, activations, require_one_active=False
        )
        assert strategy.active_count("pe1", 0) == 0

    def test_unknown_replica_rejected(self, pipeline_deployment):
        with pytest.raises(StrategyError, match="unknown replica"):
            ActivationStrategy(
                pipeline_deployment, {(ReplicaId("ghost", 0), 0): True}
            )

    def test_config_out_of_range_rejected(self, pipeline_deployment):
        with pytest.raises(StrategyError, match="out of range"):
            ActivationStrategy(
                pipeline_deployment, {(ReplicaId("pe1", 0), 5): True}
            )


class TestQueries:
    def test_fully_replicated(self, pipeline_deployment):
        strategy = strategy_with(
            pipeline_deployment, {("pe1", 1, 1): False}
        )
        assert strategy.fully_replicated("pe1", 0)
        assert not strategy.fully_replicated("pe1", 1)

    def test_active_replicas(self, pipeline_deployment):
        strategy = strategy_with(
            pipeline_deployment, {("pe2", 0, 1): False}
        )
        active = strategy.active_replicas(1)
        assert ReplicaId("pe2", 0) not in active
        assert ReplicaId("pe2", 1) in active

    def test_active_map_matches_is_active(self, pipeline_deployment):
        strategy = strategy_with(
            pipeline_deployment, {("pe1", 0, 0): False}
        )
        mapping = strategy.active_map(0)
        for replica, state in mapping.items():
            assert state == strategy.is_active(replica, 0)

    def test_activations_of(self, pipeline_deployment):
        strategy = strategy_with(
            pipeline_deployment, {("pe1", 0, 1): False}
        )
        assert strategy.activations_of(ReplicaId("pe1", 0)) == (True, False)

    def test_replace_revalidates(self, pipeline_deployment):
        strategy = ActivationStrategy.all_active(pipeline_deployment)
        with pytest.raises(StrategyError, match="Eq. 12"):
            strategy.replace(
                {
                    (ReplicaId("pe1", 0), 0): False,
                    (ReplicaId("pe1", 1), 0): False,
                }
            )

    def test_equality_and_hash(self, pipeline_deployment):
        a = ActivationStrategy.all_active(pipeline_deployment)
        b = ActivationStrategy.all_active(pipeline_deployment, name="other")
        assert a == b  # the name does not affect identity
        assert hash(a) == hash(b)
        c = strategy_with(pipeline_deployment, {("pe1", 0, 0): False})
        assert a != c


class TestSerialisationProperty:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    @settings(
        max_examples=30,
        deadline=None,
        # The deployment fixture is immutable; sharing it across
        # generated inputs is safe.
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(bits=st.lists(st.integers(min_value=0, max_value=2),
                         min_size=4, max_size=4))
    def test_random_strategy_json_round_trip(
        self, pipeline_deployment, bits
    ):
        """Any valid activation table survives the HAController JSON
        format byte-for-byte (value 0/1/2 = only-0 / only-1 / both)."""
        values = [(True, False), (False, True), (True, True)]
        activations = {}
        cells = [
            (pe, c) for pe in ("pe1", "pe2") for c in range(2)
        ]
        for (pe, c), choice in zip(cells, bits):
            a0, a1 = values[choice]
            activations[(ReplicaId(pe, 0), c)] = a0
            activations[(ReplicaId(pe, 1), c)] = a1
        strategy = ActivationStrategy(pipeline_deployment, activations)
        clone = ActivationStrategy.from_json(
            pipeline_deployment, strategy.to_json()
        )
        assert clone == strategy


class TestSerialisation:
    def test_json_round_trip(self, tmp_path, pipeline_deployment):
        strategy = strategy_with(
            pipeline_deployment, {("pe2", 1, 1): False}
        )
        path = tmp_path / "strategy.json"
        strategy.to_json(path)
        clone = ActivationStrategy.from_json(pipeline_deployment, path)
        assert clone == strategy

    def test_invalid_json_rejected(self, pipeline_deployment):
        with pytest.raises(StrategyError, match="invalid strategy JSON"):
            ActivationStrategy.from_json(pipeline_deployment, "{oops")
