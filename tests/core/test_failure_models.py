"""Direct tests for the failure models of Sec. 4.3 / 4.4.

The :class:`IndependentFailureModel` (future-work item (i)) gets its
formula pinned here, together with its relationship to the pessimistic
model and to the damage-maximizing victim choice of
:func:`repro.dsps.failures.pessimistic_victims`.
"""

from __future__ import annotations

import pytest

from repro.core import (
    ActivationStrategy,
    IndependentFailureModel,
    NoFailureModel,
    PessimisticFailureModel,
    ReplicaId,
)
from repro.dsps import pessimistic_victims
from repro.errors import ModelError


def partial_strategy(deployment, single_in_high):
    """All-active except ``single_in_high`` PEs, which run only replica
    0 in the High configuration (index 1)."""
    activations = {
        (replica, c): True
        for replica in deployment.replicas
        for c in range(2)
    }
    for pe in single_in_high:
        activations[(ReplicaId(pe, 1), 1)] = False
    return ActivationStrategy(deployment, activations)


class TestIndependentFormula:
    def test_phi_is_one_minus_dead_probability(self, pipeline_deployment):
        strategy = ActivationStrategy.all_active(pipeline_deployment)
        model = IndependentFailureModel(0.9)
        # Two active replicas: phi = 1 - 0.1^2.
        assert model.phi("pe1", 0, strategy) == pytest.approx(0.99)

    def test_phi_scales_with_active_count(self, pipeline_deployment):
        strategy = partial_strategy(pipeline_deployment, ["pe1"])
        model = IndependentFailureModel(0.7)
        # pe1 runs a single replica in High: phi drops to a itself.
        assert model.phi("pe1", 1, strategy) == pytest.approx(0.7)
        assert model.phi("pe1", 0, strategy) == pytest.approx(0.91)

    def test_more_active_replicas_never_hurt(self, pipeline_deployment):
        single = partial_strategy(pipeline_deployment, ["pe1"])
        full = ActivationStrategy.all_active(pipeline_deployment)
        for availability in (0.1, 0.5, 0.9):
            model = IndependentFailureModel(availability)
            assert model.phi("pe1", 1, full) >= model.phi(
                "pe1", 1, single
            )

    def test_zero_active_means_zero_phi(self, pipeline_deployment):
        activations = {
            (replica, c): replica.pe != "pe1" or c != 1
            for replica in pipeline_deployment.replicas
            for c in range(2)
        }
        strategy = ActivationStrategy(
            pipeline_deployment, activations, require_one_active=False
        )
        assert IndependentFailureModel(0.99).phi("pe1", 1, strategy) == 0.0

    def test_extreme_availabilities(self, pipeline_deployment):
        strategy = partial_strategy(pipeline_deployment, ["pe2"])
        sure = IndependentFailureModel(1.0)
        never = IndependentFailureModel(0.0)
        none = NoFailureModel()
        for pe in ("pe1", "pe2"):
            for c in range(2):
                assert sure.phi(pe, c, strategy) == none.phi(
                    pe, c, strategy
                )
                assert never.phi(pe, c, strategy) == 0.0

    @pytest.mark.parametrize("availability", [-0.1, 1.5, 2.0])
    def test_rejects_out_of_range_availability(self, availability):
        with pytest.raises(ModelError, match=r"\[0, 1\]"):
            IndependentFailureModel(availability)

    def test_model_name(self):
        assert (
            IndependentFailureModel(0.5).name == "IndependentFailureModel"
        )


class TestAgainstPessimistic:
    """The independent model does not dominate Eq. 14 (nor vice versa)."""

    def test_full_replication_favors_pessimistic(
        self, pipeline_deployment
    ):
        strategy = ActivationStrategy.all_active(pipeline_deployment)
        pessimistic = PessimisticFailureModel()
        independent = IndependentFailureModel(0.6)
        # Eq. 14 rewards full replication with certainty; a lossy
        # independent model cannot reach it.
        assert pessimistic.phi("pe1", 0, strategy) == 1.0
        assert independent.phi("pe1", 0, strategy) < 1.0

    def test_partial_replication_favors_independent(
        self, pipeline_deployment
    ):
        strategy = partial_strategy(pipeline_deployment, ["pe1"])
        pessimistic = PessimisticFailureModel()
        independent = IndependentFailureModel(0.6)
        # A single active replica: the pessimistic model writes the PE
        # off entirely, the independent one keeps its availability.
        assert pessimistic.phi("pe1", 1, strategy) == 0.0
        assert independent.phi("pe1", 1, strategy) == pytest.approx(0.6)


class TestVictimInteraction:
    """Eq. 14's phi is a realized lower bound under the damage-maximal
    victim choice used by the chaos ``pessimistic`` injection."""

    def _realized_phi(self, deployment, strategy, victims, pe, c):
        survivors = [
            replica
            for replica in deployment.replicas_of(pe)
            if replica.replica != victims[pe]
        ]
        return (
            1.0
            if any(strategy.is_active(r, c) for r in survivors)
            else 0.0
        )

    @pytest.mark.parametrize(
        "single_in_high", [[], ["pe1"], ["pe2"], ["pe1", "pe2"]]
    )
    def test_victims_realize_at_least_the_pessimistic_phi(
        self, pipeline_deployment, single_in_high
    ):
        strategy = partial_strategy(pipeline_deployment, single_in_high)
        victims = pessimistic_victims(strategy)
        pessimistic = PessimisticFailureModel()
        for pe in ("pe1", "pe2"):
            for c in range(2):
                realized = self._realized_phi(
                    pipeline_deployment, strategy, victims, pe, c
                )
                assert realized >= pessimistic.phi(pe, c, strategy)

    def test_single_active_replica_is_the_victim(
        self, pipeline_deployment
    ):
        strategy = partial_strategy(pipeline_deployment, ["pe1"])
        victims = pessimistic_victims(strategy)
        # pe1 keeps only replica 0 active in High, so the worst case
        # kills exactly that one (the survivor is the inactive copy).
        assert victims["pe1"] == 0
        assert (
            self._realized_phi(
                pipeline_deployment, strategy, victims, "pe1", 1
            )
            == 0.0
        )

    def test_independent_model_is_not_fooled_by_victims(
        self, pipeline_deployment
    ):
        # The independent model would have promised 0.6 for the very
        # cell the victim silences: dominance checking must therefore
        # only ever trust the pessimistic floor (what the invariant
        # checker's `ic-bound` does).
        strategy = partial_strategy(pipeline_deployment, ["pe1"])
        victims = pessimistic_victims(strategy)
        independent = IndependentFailureModel(0.6)
        realized = self._realized_phi(
            pipeline_deployment, strategy, victims, "pe1", 1
        )
        assert independent.phi("pe1", 1, strategy) > realized
