"""Tests for the Delta(x, c) rate recursion (linear load model)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RateTable, expected_rates
from tests.support import random_descriptor

GIGA = 1.0e9


class TestPipelineRates:
    def test_source_rates_match_configurations(self, pipeline_descriptor):
        rates = expected_rates(pipeline_descriptor)
        assert rates["src"] == (4.0, 8.0)

    def test_unit_selectivity_propagates_rates(self, pipeline_descriptor):
        rates = expected_rates(pipeline_descriptor)
        assert rates["pe1"] == (4.0, 8.0)
        assert rates["pe2"] == (4.0, 8.0)

    def test_sink_sums_inputs(self, pipeline_descriptor):
        rates = expected_rates(pipeline_descriptor)
        assert rates["sink"] == (4.0, 8.0)


class TestDiamondRates:
    def test_fan_out_and_fan_in(self, diamond_descriptor):
        rates = expected_rates(diamond_descriptor)
        # a passes src through: Low 5, High 10.
        assert rates["a"] == (5.0, 10.0)
        # b halves, c multiplies by 1.5.
        assert rates["b"] == (2.5, 5.0)
        assert rates["c"] == (7.5, 15.0)
        # d = 1.0 * b + 0.8 * c.
        assert rates["d"][0] == pytest.approx(2.5 + 0.8 * 7.5)
        assert rates["d"][1] == pytest.approx(5.0 + 0.8 * 15.0)


class TestRateTable:
    def test_replica_load(self, pipeline_descriptor):
        table = RateTable(pipeline_descriptor)
        assert table.replica_load("pe1", 0) == pytest.approx(0.4 * GIGA)
        assert table.replica_load("pe2", 1) == pytest.approx(0.8 * GIGA)

    def test_pe_input_rate(self, diamond_descriptor):
        table = RateTable(diamond_descriptor)
        # d receives b's and c's streams unweighted: 2.5 + 7.5 in Low.
        assert table.pe_input_rate("d", 0) == pytest.approx(10.0)

    def test_total_pe_input_rate_is_bic_integrand(self, pipeline_descriptor):
        table = RateTable(pipeline_descriptor)
        # pe1 receives 4, pe2 receives 4 in Low.
        assert table.total_pe_input_rate(0) == pytest.approx(8.0)

    def test_replica_load_matrix_follows_topo_order(self, diamond_descriptor):
        table = RateTable(diamond_descriptor)
        matrix, pes = table.replica_load_matrix()
        assert pes == diamond_descriptor.graph.pes
        assert matrix.shape == (4, 2)
        for i, pe in enumerate(pes):
            for c in range(2):
                assert matrix[i, c] == pytest.approx(table.replica_load(pe, c))


class TestRateProperties:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_rates_scale_linearly_with_source_rate(self, seed):
        """The linear load model: doubling every source rate doubles every
        component's rate (footnote 2 of the paper)."""
        rng = random.Random(seed)
        descriptor = random_descriptor(rng, n_pes=5)
        rates = expected_rates(descriptor)
        space = descriptor.configuration_space
        # Compare the two configurations of the two-level space: rates must
        # scale by the ratio of the source rates.
        low = space[0].rate_of("src")
        high = space[1].rate_of("src")
        ratio = high / low
        for name, row in rates.items():
            if row[0] == 0:
                assert row[1] == 0
            else:
                assert row[1] / row[0] == pytest.approx(ratio)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_rates_are_nonnegative(self, seed):
        rng = random.Random(seed)
        descriptor = random_descriptor(rng, n_pes=6)
        for row in expected_rates(descriptor).values():
            assert all(rate >= 0 for rate in row)
