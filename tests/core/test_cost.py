"""Tests for the cost model (Eq. 13) and CPU constraint (Eq. 11)."""

from __future__ import annotations

import pytest

from repro.core import (
    ActivationStrategy,
    Host,
    RateTable,
    ReplicaId,
    ReplicatedDeployment,
    cost_breakdown,
    cpu_constraint_violations,
    host_load_table,
    strategy_cost,
)
from repro.errors import ModelError

GIGA = 1.0e9


class TestStrategyCost:
    def test_all_active_pipeline_cost(self, pipeline_deployment):
        strategy = ActivationStrategy.all_active(pipeline_deployment)
        # Low: 2 PEs x 2 replicas x 0.4e9 x 0.8 = 1.28e9;
        # High: 2 x 2 x 0.8e9 x 0.2 = 0.64e9.
        assert strategy_cost(strategy) == pytest.approx(1.92 * GIGA)

    def test_single_replica_costs_half(self, pipeline_deployment):
        full = ActivationStrategy.all_active(pipeline_deployment)
        single = ActivationStrategy.single_replica(
            pipeline_deployment, {"pe1": 0, "pe2": 0}
        )
        assert strategy_cost(single) == pytest.approx(
            strategy_cost(full) / 2.0
        )

    def test_cost_scales_with_billing_period(self, pipeline_deployment):
        strategy = ActivationStrategy.all_active(pipeline_deployment)
        assert strategy_cost(strategy, billing_period=300.0) == pytest.approx(
            300.0 * strategy_cost(strategy)
        )

    def test_cost_rejects_bad_period(self, pipeline_deployment):
        strategy = ActivationStrategy.all_active(pipeline_deployment)
        with pytest.raises(ModelError):
            strategy_cost(strategy, billing_period=-1.0)

    def test_deactivation_strictly_reduces_cost(self, pipeline_deployment):
        full = ActivationStrategy.all_active(pipeline_deployment)
        reduced = full.replace({(ReplicaId("pe2", 1), 1): False})
        assert strategy_cost(reduced) < strategy_cost(full)


class TestCostBreakdown:
    def test_breakdown_sums_to_total(self, pipeline_deployment):
        strategy = ActivationStrategy.all_active(pipeline_deployment)
        breakdown = cost_breakdown(strategy)
        assert breakdown.total == pytest.approx(strategy_cost(strategy))
        assert sum(breakdown.per_config.values()) == pytest.approx(
            breakdown.total
        )
        assert sum(breakdown.per_host.values()) == pytest.approx(
            breakdown.total
        )

    def test_per_host_split_is_even_for_symmetric_placement(
        self, pipeline_deployment
    ):
        strategy = ActivationStrategy.all_active(pipeline_deployment)
        breakdown = cost_breakdown(strategy)
        values = list(breakdown.per_host.values())
        assert values[0] == pytest.approx(values[1])


class TestHostLoads:
    def tight_deployment(self, descriptor):
        hosts = [Host("h0", cores=1, cycles_per_core=GIGA),
                 Host("h1", cores=1, cycles_per_core=GIGA)]
        assignment = {
            ReplicaId("pe1", 0): "h0",
            ReplicaId("pe1", 1): "h1",
            ReplicaId("pe2", 0): "h0",
            ReplicaId("pe2", 1): "h1",
        }
        return ReplicatedDeployment(descriptor, hosts, assignment, 2)

    def test_host_load_table(self, pipeline_descriptor):
        deployment = self.tight_deployment(pipeline_descriptor)
        strategy = ActivationStrategy.all_active(deployment)
        table = host_load_table(strategy)
        assert table[("h0", 0)] == pytest.approx(0.8 * GIGA)
        assert table[("h0", 1)] == pytest.approx(1.6 * GIGA)

    def test_violations_found_in_high_config(self, pipeline_descriptor):
        deployment = self.tight_deployment(pipeline_descriptor)
        strategy = ActivationStrategy.all_active(deployment)
        violations = cpu_constraint_violations(strategy)
        assert {(host, c) for host, c, _, _ in violations} == {
            ("h0", 1),
            ("h1", 1),
        }

    def test_deactivation_clears_violations(self, pipeline_descriptor):
        deployment = self.tight_deployment(pipeline_descriptor)
        strategy = ActivationStrategy.all_active(deployment).replace(
            {
                (ReplicaId("pe1", 1), 1): False,
                (ReplicaId("pe2", 0), 1): False,
            }
        )
        assert cpu_constraint_violations(strategy) == []

    def test_exact_capacity_counts_as_violation(self, pipeline_descriptor):
        """Eq. 11 is strict: load == K leaves no headroom and is rejected."""
        hosts = [Host("h0", cores=1, cycles_per_core=0.8 * GIGA),
                 Host("h1", cores=1, cycles_per_core=0.8 * GIGA)]
        assignment = {
            ReplicaId("pe1", 0): "h0",
            ReplicaId("pe1", 1): "h1",
            ReplicaId("pe2", 0): "h0",
            ReplicaId("pe2", 1): "h1",
        }
        deployment = ReplicatedDeployment(
            pipeline_descriptor, hosts, assignment, 2
        )
        single = ActivationStrategy.single_replica(
            deployment, {"pe1": 0, "pe2": 0}
        )
        table = RateTable(pipeline_descriptor)
        # Replica 0 of both PEs lives on h0: Low load = 0.8e9 == capacity,
        # which the strict inequality rejects.
        violations = cpu_constraint_violations(single, table)
        assert ("h0", 0) in {(host, c) for host, c, _, _ in violations}
