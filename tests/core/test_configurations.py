"""Unit and property tests for the input configuration space."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import ConfigurationSpace, InputConfiguration, bin_rates
from repro.errors import DescriptorError


class TestInputConfiguration:
    def test_rejects_negative_rate(self):
        with pytest.raises(DescriptorError):
            InputConfiguration(0, {"s": -1.0}, 1.0)

    def test_rejects_bad_probability(self):
        with pytest.raises(DescriptorError):
            InputConfiguration(0, {"s": 1.0}, 1.5)

    def test_dominates(self):
        config = InputConfiguration(0, {"a": 5.0, "b": 3.0}, 1.0)
        assert config.dominates({"a": 5.0, "b": 2.0})
        assert not config.dominates({"a": 6.0, "b": 2.0})

    def test_distance(self):
        config = InputConfiguration(0, {"a": 3.0, "b": 4.0}, 1.0)
        assert config.distance_to({"a": 0.0, "b": 0.0}) == pytest.approx(5.0)

    def test_rate_vector_follows_order(self):
        config = InputConfiguration(0, {"a": 1.0, "b": 2.0}, 1.0)
        assert config.rate_vector(["b", "a"]) == (2.0, 1.0)


class TestConfigurationSpace:
    def test_two_level_shape(self):
        space = ConfigurationSpace.two_level("s", 4.0, 8.0, 0.8)
        assert len(space) == 2
        low, high = space.by_label("Low"), space.by_label("High")
        assert low.rate_of("s") == 4.0
        assert high.rate_of("s") == 8.0
        assert low.probability == pytest.approx(0.8)
        assert high.probability == pytest.approx(0.2)

    def test_two_level_rejects_inverted_rates(self):
        with pytest.raises(DescriptorError):
            ConfigurationSpace.two_level("s", 8.0, 4.0, 0.8)

    def test_cartesian_product_of_two_sources(self):
        space = ConfigurationSpace.from_source_rates(
            {
                "a": [(1.0, 0.5), (2.0, 0.5)],
                "b": [(10.0, 0.25), (20.0, 0.75)],
            }
        )
        assert len(space) == 4
        total = sum(c.probability for c in space)
        assert total == pytest.approx(1.0)
        # Independence: P(a=1, b=10) = 0.5 * 0.25.
        match = [
            c
            for c in space
            if c.rate_of("a") == 1.0 and c.rate_of("b") == 10.0
        ]
        assert len(match) == 1
        assert match[0].probability == pytest.approx(0.125)

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(DescriptorError, match="sum to 1"):
            ConfigurationSpace.from_source_rates({"a": [(1.0, 0.5), (2.0, 0.4)]})

    def test_mismatched_sources_rejected(self):
        with pytest.raises(DescriptorError):
            ConfigurationSpace(
                [
                    InputConfiguration(0, {"a": 1.0}, 0.5),
                    InputConfiguration(1, {"b": 1.0}, 0.5),
                ]
            )

    def test_indexes_must_be_sequential(self):
        with pytest.raises(DescriptorError, match="indexes"):
            ConfigurationSpace(
                [
                    InputConfiguration(1, {"a": 1.0}, 0.5),
                    InputConfiguration(0, {"a": 2.0}, 0.5),
                ]
            )

    def test_expected_rate(self):
        space = ConfigurationSpace.two_level("s", 4.0, 8.0, 0.8)
        assert space.expected_rate("s") == pytest.approx(0.8 * 4 + 0.2 * 8)

    def test_sorted_by_total_rate_puts_hungry_first(self):
        space = ConfigurationSpace.two_level("s", 4.0, 8.0, 0.8)
        order = space.sorted_by_total_rate()
        assert space[order[0]].rate_of("s") == 8.0

    def test_round_trip(self):
        space = ConfigurationSpace.two_level("s", 4.0, 8.0, 0.8)
        clone = ConfigurationSpace.from_dict(space.to_dict())
        assert clone.to_dict() == space.to_dict()

    def test_unknown_label(self):
        space = ConfigurationSpace.two_level("s", 4.0, 8.0, 0.8)
        with pytest.raises(DescriptorError):
            space.by_label("Medium")

    def test_index_out_of_range(self):
        space = ConfigurationSpace.two_level("s", 4.0, 8.0, 0.8)
        with pytest.raises(DescriptorError):
            space[7]


class TestBinRates:
    def test_single_value_collapses_to_one_bin(self):
        assert bin_rates([3.0, 3.0, 3.0], bins=4) == [(3.0, 1.0)]

    def test_probabilities_sum_to_one(self):
        result = bin_rates([1, 2, 3, 4, 5, 6, 7, 8], bins=4)
        assert sum(p for _, p in result) == pytest.approx(1.0)

    def test_bins_use_upper_edges(self):
        result = bin_rates([0.0, 10.0], bins=2)
        rates = [r for r, _ in result]
        # Upper edges 5.0 and 10.0: a configuration built from a bin never
        # underestimates the load the bin represents.
        assert rates == [5.0, 10.0]

    def test_empty_observations_rejected(self):
        with pytest.raises(DescriptorError):
            bin_rates([], bins=2)

    def test_invalid_bins_rejected(self):
        with pytest.raises(DescriptorError):
            bin_rates([1.0], bins=0)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=50,
        ),
        st.integers(min_value=1, max_value=10),
    )
    def test_property_bins_cover_all_observations(self, observations, bins):
        result = bin_rates(observations, bins)
        assert sum(p for _, p in result) == pytest.approx(1.0)
        # The largest bin edge dominates every observation.
        assert max(r for r, _ in result) >= max(observations) - 1e-9
        # Rates come out sorted.
        rates = [r for r, _ in result]
        assert rates == sorted(rates)
