"""Tests for the internal completeness metric (Eq. 5-8)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ActivationStrategy,
    IndependentFailureModel,
    NoFailureModel,
    PessimisticFailureModel,
    RateTable,
    ReplicaId,
    best_case_internal_completeness,
    failure_aware_rates,
    failure_internal_completeness,
    ic_breakdown,
    internal_completeness,
)
from repro.errors import ModelError
from tests.support import random_deployment, random_descriptor


def partial_strategy(deployment, single_in_high):
    """All-active except the PEs in ``single_in_high`` which keep only
    replica 0 in the High configuration (index 1)."""
    activations = {
        (replica, c): True
        for replica in deployment.replicas
        for c in range(2)
    }
    for pe in single_in_high:
        activations[(ReplicaId(pe, 1), 1)] = False
    return ActivationStrategy(deployment, activations)


class TestBIC:
    def test_pipeline_bic(self, pipeline_deployment, pipeline_rate_table):
        # Low: pe1 and pe2 each receive 4 t/s, p=0.8 -> 6.4.
        # High: each receives 8 t/s, p=0.2 -> 3.2. Total 9.6 per second.
        bic = best_case_internal_completeness(pipeline_rate_table)
        assert bic == pytest.approx(9.6)

    def test_bic_scales_with_billing_period(self, pipeline_rate_table):
        one = best_case_internal_completeness(pipeline_rate_table, 1.0)
        many = best_case_internal_completeness(pipeline_rate_table, 300.0)
        assert many == pytest.approx(300.0 * one)

    def test_bic_rejects_bad_period(self, pipeline_rate_table):
        with pytest.raises(ModelError):
            best_case_internal_completeness(pipeline_rate_table, 0.0)


class TestPessimisticIC:
    def test_all_active_has_ic_one(self, pipeline_deployment):
        strategy = ActivationStrategy.all_active(pipeline_deployment)
        assert internal_completeness(strategy) == pytest.approx(1.0)

    def test_pipeline_partial_matches_hand_computation(
        self, pipeline_deployment
    ):
        # pe2 single in High: loses pe2's High contribution (0.2 * 8) from
        # FIC: (9.6 - 1.6) / 9.6.
        strategy = partial_strategy(pipeline_deployment, ["pe2"])
        assert internal_completeness(strategy) == pytest.approx(8.0 / 9.6)

    def test_upstream_kill_cascades(self, pipeline_deployment):
        # pe1 single in High: pe1 contributes 0 there AND starves pe2.
        strategy = partial_strategy(pipeline_deployment, ["pe1"])
        assert internal_completeness(strategy) == pytest.approx(6.4 / 9.6)

    def test_diamond_cascade(self, diamond_deployment):
        # Killing "a" in High zeroes the whole High configuration:
        # IC = P(Low) contribution only.
        strategy = partial_strategy(diamond_deployment, ["a"])
        breakdown = ic_breakdown(strategy)
        fic_high, bic_high = breakdown.per_config[1]
        assert fic_high == 0.0
        assert breakdown.ic == pytest.approx(
            sum(f for f, _ in breakdown.per_config.values()) / breakdown.bic
        )

    def test_failure_aware_rates_zero_downstream(self, diamond_deployment):
        strategy = partial_strategy(diamond_deployment, ["a"])
        delta_hat = failure_aware_rates(strategy, PessimisticFailureModel())
        assert delta_hat["a"][1] == 0.0
        assert delta_hat["b"][1] == 0.0
        assert delta_hat["d"][1] == 0.0
        # Low configuration untouched.
        assert delta_hat["a"][0] == pytest.approx(5.0)


class TestOtherFailureModels:
    def test_no_failure_model_gives_ic_one(self, pipeline_deployment):
        strategy = partial_strategy(pipeline_deployment, ["pe1", "pe2"])
        ic = internal_completeness(strategy, NoFailureModel())
        assert ic == pytest.approx(1.0)

    def test_independent_model_bounds(self, pipeline_deployment):
        strategy = partial_strategy(pipeline_deployment, ["pe2"])
        for availability in (0.0, 0.5, 0.9, 1.0):
            independent = internal_completeness(
                strategy, IndependentFailureModel(availability)
            )
            assert 0.0 <= independent <= 1.0 + 1e-12

    def test_independent_model_extremes(self, pipeline_deployment):
        strategy = partial_strategy(pipeline_deployment, ["pe2"])
        # Perfectly available replicas behave like the no-failure case;
        # never-available replicas process nothing.
        assert internal_completeness(
            strategy, IndependentFailureModel(1.0)
        ) == pytest.approx(
            internal_completeness(strategy, NoFailureModel())
        )
        assert internal_completeness(
            strategy, IndependentFailureModel(0.0)
        ) == pytest.approx(0.0)

    def test_independent_model_monotone_in_availability(
        self, pipeline_deployment
    ):
        strategy = partial_strategy(pipeline_deployment, ["pe1"])
        values = [
            internal_completeness(strategy, IndependentFailureModel(a))
            for a in (0.1, 0.5, 0.9)
        ]
        assert values == sorted(values)

    def test_independent_model_rejects_bad_availability(self):
        with pytest.raises(ModelError):
            IndependentFailureModel(1.5)


class TestICProperties:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_ic_in_unit_interval(self, seed):
        rng = random.Random(seed)
        descriptor = random_descriptor(rng, n_pes=5)
        deployment = random_deployment(rng, descriptor)
        # Random strategy obeying Eq. 12.
        activations = {}
        for pe in descriptor.graph.pes:
            for c in range(len(descriptor.configuration_space)):
                value = rng.choice(
                    [(True, True), (True, False), (False, True)]
                )
                activations[(ReplicaId(pe, 0), c)] = value[0]
                activations[(ReplicaId(pe, 1), c)] = value[1]
        strategy = ActivationStrategy(deployment, activations)
        ic = internal_completeness(strategy)
        assert 0.0 <= ic <= 1.0 + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_deactivation_never_increases_ic(self, seed):
        """Monotonicity: flipping one replica from active to inactive can
        only reduce (pessimistic) IC."""
        rng = random.Random(seed)
        descriptor = random_descriptor(rng, n_pes=4)
        deployment = random_deployment(rng, descriptor)
        strategy = ActivationStrategy.all_active(deployment)
        ic_before = internal_completeness(strategy)
        pe = rng.choice(descriptor.graph.pes)
        c = rng.randrange(len(descriptor.configuration_space))
        reduced = strategy.replace({(ReplicaId(pe, 1), c): False})
        ic_after = internal_completeness(reduced)
        assert ic_after <= ic_before + 1e-9

    def test_fic_equals_bic_when_all_active(self, pipeline_deployment):
        strategy = ActivationStrategy.all_active(pipeline_deployment)
        table = RateTable(pipeline_deployment.descriptor)
        fic = failure_internal_completeness(strategy, rate_table=table)
        bic = best_case_internal_completeness(table)
        assert fic == pytest.approx(bic)
