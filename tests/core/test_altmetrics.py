"""Tests for the alternative completeness metrics (Sec. 4.3 candidates)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ActivationStrategy,
    NoFailureModel,
    ReplicaId,
    internal_completeness,
)
from repro.core.altmetrics import (
    average_replication_factor,
    output_completeness,
)
from tests.support import random_deployment, random_descriptor


def partial(deployment, single_in_high):
    activations = {
        (replica, c): True
        for replica in deployment.replicas
        for c in range(2)
    }
    for pe in single_in_high:
        activations[(ReplicaId(pe, 1), 1)] = False
    return ActivationStrategy(deployment, activations)


class TestOutputCompleteness:
    def test_all_active_is_one(self, pipeline_deployment):
        strategy = ActivationStrategy.all_active(pipeline_deployment)
        assert output_completeness(strategy) == pytest.approx(1.0)

    def test_no_failures_is_one(self, pipeline_deployment):
        strategy = partial(pipeline_deployment, ["pe1", "pe2"])
        assert output_completeness(strategy, NoFailureModel()) == (
            pytest.approx(1.0)
        )

    def test_pipeline_sink_loss(self, pipeline_deployment):
        # Killing pe2 in High removes the High share of the output:
        # baseline 0.8*4 + 0.2*8 = 4.8; expected 0.8*4 = 3.2.
        strategy = partial(pipeline_deployment, ["pe2"])
        assert output_completeness(strategy) == pytest.approx(3.2 / 4.8)

    def test_differs_from_ic_on_asymmetric_graphs(self, diamond_deployment):
        """The paper's argument: output completeness can disagree with IC
        because it only looks at the sinks."""
        strategy = partial(diamond_deployment, ["b"])
        ic = internal_completeness(strategy)
        oc = output_completeness(strategy)
        # Killing b removes b's and d's processing from IC, but only the
        # b-branch contribution from the output.
        assert oc != pytest.approx(ic)


class TestAverageReplicationFactor:
    def test_static_replication_is_k(self, pipeline_deployment):
        strategy = ActivationStrategy.all_active(pipeline_deployment)
        assert average_replication_factor(strategy) == pytest.approx(2.0)

    def test_single_replica_is_one(self, pipeline_deployment):
        strategy = ActivationStrategy.single_replica(
            pipeline_deployment, {"pe1": 0, "pe2": 0}
        )
        assert average_replication_factor(strategy) == pytest.approx(1.0)

    def test_partial_weighting(self, pipeline_deployment):
        # pe2 single in High (p=0.2): 2 - 0.2/2 = 1.9 average.
        strategy = partial(pipeline_deployment, ["pe2"])
        assert average_replication_factor(strategy) == pytest.approx(1.9)

    def test_blind_to_position(self, pipeline_deployment):
        """The paper's criticism: the replication factor cannot tell an
        upstream deactivation (which starves everything downstream) from
        a downstream one — IC can."""
        upstream = partial(pipeline_deployment, ["pe1"])
        downstream = partial(pipeline_deployment, ["pe2"])
        assert average_replication_factor(upstream) == pytest.approx(
            average_replication_factor(downstream)
        )
        assert internal_completeness(upstream) < internal_completeness(
            downstream
        )


class TestMetricProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_bounds(self, seed):
        rng = random.Random(seed)
        descriptor = random_descriptor(rng, n_pes=5)
        deployment = random_deployment(rng, descriptor)
        activations = {}
        for pe in descriptor.graph.pes:
            for c in range(2):
                a0, a1 = rng.choice(
                    [(True, True), (True, False), (False, True)]
                )
                activations[(ReplicaId(pe, 0), c)] = a0
                activations[(ReplicaId(pe, 1), c)] = a1
        strategy = ActivationStrategy(deployment, activations)
        oc = output_completeness(strategy)
        arf = average_replication_factor(strategy)
        assert 0.0 <= oc <= 1.0 + 1e-9
        assert 1.0 - 1e-9 <= arf <= 2.0 + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_output_completeness_at_least_ic_on_trees(self, seed):
        """On any application, IC counts losses at every PE while output
        completeness only counts what misses the sinks; a PE failure
        always hurts IC at least as early. (Checked empirically: for the
        single-deactivation case OC >= IC does not hold in general, so we
        only assert both react to the same deactivation.)"""
        rng = random.Random(seed)
        descriptor = random_descriptor(rng, n_pes=4)
        deployment = random_deployment(rng, descriptor)
        full = ActivationStrategy.all_active(deployment)
        pe = rng.choice(descriptor.graph.pes)
        c = rng.randrange(2)
        reduced = full.replace({(ReplicaId(pe, 1), c): False})
        assert output_completeness(reduced) <= 1.0 + 1e-9
        assert internal_completeness(reduced) <= 1.0 + 1e-9
        # Both metrics are monotone under deactivation.
        assert output_completeness(reduced) <= output_completeness(full) + 1e-9
