"""Unit tests for application descriptors."""

from __future__ import annotations

import pytest

from repro.core import (
    ApplicationDescriptor,
    ApplicationGraph,
    ConfigurationSpace,
    EdgeProfile,
)
from repro.errors import DescriptorError

GIGA = 1.0e9


def simple_graph():
    return ApplicationGraph.build(
        ["src"], ["p"], ["sink"], [("src", "p"), ("p", "sink")]
    )


def simple_space():
    return ConfigurationSpace.two_level("src", 4.0, 8.0, 0.8)


class TestEdgeProfile:
    def test_rejects_negative_selectivity(self):
        with pytest.raises(DescriptorError):
            EdgeProfile(selectivity=-1.0, cpu_cost=1.0)

    def test_rejects_negative_cost(self):
        with pytest.raises(DescriptorError):
            EdgeProfile(selectivity=1.0, cpu_cost=-1.0)

    def test_rejects_nan(self):
        with pytest.raises(DescriptorError):
            EdgeProfile(selectivity=float("nan"), cpu_cost=1.0)


class TestDescriptorValidation:
    def test_missing_profile_rejected(self):
        with pytest.raises(DescriptorError, match="missing profile"):
            ApplicationDescriptor(simple_graph(), {}, simple_space())

    def test_profile_for_unknown_edge_rejected(self):
        profiles = {
            ("src", "p"): EdgeProfile(1.0, 1.0),
            ("src", "ghost"): EdgeProfile(1.0, 1.0),
        }
        with pytest.raises(DescriptorError, match="unknown edge"):
            ApplicationDescriptor(simple_graph(), profiles, simple_space())

    def test_profile_into_sink_rejected(self):
        profiles = {
            ("src", "p"): EdgeProfile(1.0, 1.0),
            ("p", "sink"): EdgeProfile(1.0, 1.0),
        }
        with pytest.raises(DescriptorError, match="non-PE"):
            ApplicationDescriptor(simple_graph(), profiles, simple_space())

    def test_space_source_mismatch_rejected(self):
        profiles = {("src", "p"): EdgeProfile(1.0, 1.0)}
        wrong_space = ConfigurationSpace.two_level("other", 4.0, 8.0, 0.8)
        with pytest.raises(DescriptorError, match="do not match"):
            ApplicationDescriptor(simple_graph(), profiles, wrong_space)

    def test_accessors(self):
        profiles = {("src", "p"): EdgeProfile(0.5, 2.0)}
        descriptor = ApplicationDescriptor(
            simple_graph(), profiles, simple_space(), name="x"
        )
        assert descriptor.selectivity("src", "p") == 0.5
        assert descriptor.cpu_cost("src", "p") == 2.0
        assert descriptor.name == "x"
        with pytest.raises(DescriptorError):
            descriptor.selectivity("p", "src")


class TestDescriptorSerialisation:
    def test_json_round_trip(self, tmp_path, pipeline_descriptor):
        path = tmp_path / "descriptor.json"
        pipeline_descriptor.to_json(path)
        clone = ApplicationDescriptor.from_json(path)
        assert clone.to_dict() == pipeline_descriptor.to_dict()

    def test_text_round_trip(self, pipeline_descriptor):
        text = pipeline_descriptor.to_json()
        clone = ApplicationDescriptor.from_json(text)
        assert clone.to_dict() == pipeline_descriptor.to_dict()

    def test_invalid_json_rejected(self):
        with pytest.raises(DescriptorError, match="invalid descriptor JSON"):
            ApplicationDescriptor.from_json("{not json")


class TestLoadHelper:
    def test_pe_cycles_per_second(self, pipeline_descriptor):
        # pe1: gamma=0.1e9, Delta(src, Low)=4 -> 0.4e9 cycles/s.
        assert pipeline_descriptor.pe_cycles_per_second("pe1", 0) == (
            pytest.approx(0.4 * GIGA)
        )
        # pe2 receives pe1's output (selectivity 1): same figure.
        assert pipeline_descriptor.pe_cycles_per_second("pe2", 1) == (
            pytest.approx(0.8 * GIGA)
        )
