"""The exception hierarchy contract: everything derives from ReproError."""

from __future__ import annotations

import pytest

from repro.errors import (
    DeploymentError,
    DescriptorError,
    ExperimentError,
    GraphError,
    InfeasibleError,
    ModelError,
    OptimizationError,
    ReproError,
    RTreeError,
    SimulationError,
    StrategyError,
    WorkloadError,
)

LEAF_ERRORS = [
    GraphError,
    DescriptorError,
    DeploymentError,
    StrategyError,
    InfeasibleError,
    OptimizationError,
    SimulationError,
    RTreeError,
    WorkloadError,
    ExperimentError,
    ModelError,
]


@pytest.mark.parametrize("error", LEAF_ERRORS)
def test_every_error_is_a_repro_error(error):
    assert issubclass(error, ReproError)
    with pytest.raises(ReproError):
        raise error("boom")


def test_model_errors_group_structural_failures():
    for error in (GraphError, DescriptorError, DeploymentError, StrategyError):
        assert issubclass(error, ModelError)


def test_infeasible_is_an_optimization_error():
    assert issubclass(InfeasibleError, OptimizationError)


def test_catching_the_base_class_catches_library_failures():
    from repro.core import ApplicationGraph

    with pytest.raises(ReproError):
        ApplicationGraph.build([], [], [], [])
