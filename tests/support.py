"""Test helpers: random model builders shared by unit and property tests.

Not a pytest plugin — plain functions imported by test modules. The
random builders use an explicit :class:`random.Random` so hypothesis can
drive them through integer seeds while examples stay reproducible.
"""

from __future__ import annotations

import itertools
import random
from typing import Sequence

from repro.core import (
    ActivationStrategy,
    ApplicationDescriptor,
    ApplicationGraph,
    ConfigurationSpace,
    EdgeProfile,
    Host,
    ReplicaId,
    ReplicatedDeployment,
)
from repro.placement import balanced_placement

GIGA = 1.0e9


def random_descriptor(
    rng: random.Random,
    n_pes: int = 4,
    n_configs: int = 2,
    max_extra_edges: int = 3,
) -> ApplicationDescriptor:
    """A random small application with a single source and sink.

    The graph is a random chain through all PEs (guaranteeing every PE is
    connected) plus up to ``max_extra_edges`` random forward edges; PEs
    with no successor are wired to the sink.
    """
    pes = [f"pe{i}" for i in range(n_pes)]
    edges: set[tuple[str, str]] = {("src", pes[0])}
    for i in range(1, n_pes):
        # Connect each PE to a random earlier PE (keeps the DAG property).
        tail = pes[rng.randrange(i)]
        edges.add((tail, pes[i]))
    for _ in range(rng.randrange(max_extra_edges + 1)):
        i, j = sorted(rng.sample(range(n_pes), 2))
        edges.add((pes[i], pes[j]))
    heads_with_out = {tail for tail, _ in edges}
    for pe in pes:
        if pe not in heads_with_out:
            edges.add((pe, "sink"))

    graph = ApplicationGraph.build(["src"], pes, ["sink"], sorted(edges))

    profiles = {}
    for tail, head in edges:
        if head == "sink":
            continue
        profiles[(tail, head)] = EdgeProfile(
            selectivity=rng.uniform(0.5, 1.5),
            cpu_cost=rng.uniform(0.005, 0.05) * GIGA,
        )

    if n_configs == 2:
        low = rng.uniform(1.0, 10.0)
        space = ConfigurationSpace.two_level(
            "src", low, low * rng.uniform(1.5, 2.5), rng.uniform(0.5, 0.9)
        )
    else:
        rates = sorted(rng.uniform(1.0, 20.0) for _ in range(n_configs))
        weights = [rng.uniform(0.1, 1.0) for _ in range(n_configs)]
        total = sum(weights)
        space = ConfigurationSpace.from_source_rates(
            {"src": [(r, w / total) for r, w in zip(rates, weights)]}
        )
    return ApplicationDescriptor(graph, profiles, space, name="random")


def random_deployment(
    rng: random.Random,
    descriptor: ApplicationDescriptor,
    n_hosts: int = 2,
    headroom: float = 1.2,
) -> ReplicatedDeployment:
    """A balanced deployment sized so full replication in the *least*
    loaded configuration fits with ``headroom`` slack.

    This keeps random problems in the interesting regime: feasible for at
    least some strategies without being trivially over-provisioned.
    """
    from repro.core import RateTable

    rate_table = RateTable(descriptor)
    n_pes = len(descriptor.graph.pes)
    n_configs = len(descriptor.configuration_space)
    min_total = min(
        sum(
            rate_table.replica_load(pe, c) for pe in descriptor.graph.pes
        )
        for c in range(n_configs)
    )
    cores = max(1, -(-2 * n_pes // n_hosts))  # ceil division
    per_core = headroom * 2 * min_total / (n_hosts * cores)
    per_core = max(per_core, 1.0)
    hosts = [
        Host(f"h{i}", cores=cores, cycles_per_core=per_core)
        for i in range(n_hosts)
    ]
    return balanced_placement(descriptor, hosts, replication_factor=2)


def enumerate_strategies(
    deployment: ReplicatedDeployment,
) -> Sequence[ActivationStrategy]:
    """All 3^(|P|*|C|) valid activation strategies (small problems only)."""
    pes = deployment.descriptor.graph.pes
    n_configs = len(deployment.descriptor.configuration_space)
    cells = [(pe, c) for pe in pes for c in range(n_configs)]
    values = [(True, True), (True, False), (False, True)]
    strategies = []
    for combo in itertools.product(values, repeat=len(cells)):
        activations = {}
        for (pe, c), (a0, a1) in zip(cells, combo):
            activations[(ReplicaId(pe, 0), c)] = a0
            activations[(ReplicaId(pe, 1), c)] = a1
        strategies.append(ActivationStrategy(deployment, activations))
    return strategies
