"""API quality gates: documentation and export hygiene.

A reproduction repo is only adoptable if its public surface is
documented; these tests make that a hard requirement instead of a hope.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

PUBLIC_MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    )
    if "__main__" not in name
)


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_every_module_has_a_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module_name} has no module docstring"
    )


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_every_module_declares_exports(module_name):
    module = importlib.import_module(module_name)
    if module_name.endswith(
        (".errors",)
    ) or not module_name.count("."):
        return
    assert hasattr(module, "__all__"), f"{module_name} lacks __all__"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_exports_exist_and_are_documented(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), (
            f"{module_name}.__all__ lists missing name {name!r}"
        )
        exported = getattr(module, name)
        if inspect.isclass(exported) or inspect.isfunction(exported):
            assert exported.__doc__ and exported.__doc__.strip(), (
                f"{module_name}.{name} is exported but undocumented"
            )


def test_top_level_packages_importable():
    for package in (
        "repro.core",
        "repro.placement",
        "repro.rtree",
        "repro.sim",
        "repro.dsps",
        "repro.laar",
        "repro.workloads",
        "repro.experiments",
        "repro.service",
        "repro.cli",
    ):
        importlib.import_module(package)


def test_version_exported():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2
