"""Tests for replicated placement algorithms."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Host, RateTable
from repro.errors import DeploymentError
from repro.placement import balanced_placement, round_robin_placement
from tests.support import random_descriptor

GIGA = 1.0e9


def hosts(n, cores=4, cycles=GIGA):
    return [Host(f"h{i}", cores=cores, cycles_per_core=cycles) for i in range(n)]


class TestBalancedPlacement:
    def test_anti_affinity(self, diamond_descriptor):
        deployment = balanced_placement(diamond_descriptor, hosts(3))
        for pe in diamond_descriptor.graph.pes:
            homes = {
                deployment.host_of(r) for r in deployment.replicas_of(pe)
            }
            assert len(homes) == 2

    def test_core_limits_respected(self, diamond_descriptor):
        deployment = balanced_placement(
            diamond_descriptor, hosts(4, cores=2)
        )
        for host in deployment.host_names:
            assert len(deployment.replicas_on(host)) <= 2

    def test_load_is_balanced(self, diamond_descriptor):
        deployment = balanced_placement(diamond_descriptor, hosts(2))
        table = RateTable(diamond_descriptor)
        loads = [
            sum(
                table.replica_load(r.pe, 1)
                for r in deployment.replicas_on(host)
            )
            for host in deployment.host_names
        ]
        # LPT keeps the max/min spread small for this symmetric case.
        assert max(loads) <= 2.0 * min(loads)

    def test_insufficient_cores_rejected(self, diamond_descriptor):
        with pytest.raises(DeploymentError, match="not enough cores"):
            balanced_placement(diamond_descriptor, hosts(1, cores=2))

    def test_single_host_rejected_for_k2(self, diamond_descriptor):
        with pytest.raises(DeploymentError, match="anti-affinity"):
            balanced_placement(diamond_descriptor, hosts(1, cores=16))

    def test_deterministic(self, diamond_descriptor):
        a = balanced_placement(diamond_descriptor, hosts(3))
        b = balanced_placement(diamond_descriptor, hosts(3))
        assert a.to_dict() == b.to_dict()


class TestRoundRobinPlacement:
    def test_anti_affinity(self, diamond_descriptor):
        deployment = round_robin_placement(diamond_descriptor, hosts(3))
        for pe in diamond_descriptor.graph.pes:
            homes = {
                deployment.host_of(r) for r in deployment.replicas_of(pe)
            }
            assert len(homes) == 2

    def test_spreads_over_all_hosts(self, diamond_descriptor):
        deployment = round_robin_placement(diamond_descriptor, hosts(4))
        used = {
            deployment.host_of(r) for r in deployment.replicas
        }
        assert len(used) == 4


class TestPlacementProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_hosts=st.integers(min_value=2, max_value=5),
    )
    def test_every_replica_assigned_once(self, seed, n_hosts):
        rng = random.Random(seed)
        descriptor = random_descriptor(rng, n_pes=6)
        cores = -(-2 * 6 // n_hosts)  # ceil: enough slots for 12 replicas
        deployment = balanced_placement(descriptor, hosts(n_hosts, cores=cores))
        assert len(deployment.replicas) == 2 * len(descriptor.graph.pes)
        for replica in deployment.replicas:
            assert deployment.host_of(replica) in deployment.host_names
