"""Tests for the cross-tenant host pool (repro.placement.packing)."""

from __future__ import annotations

import pytest

from repro.core import Host
from repro.errors import DeploymentError
from repro.placement import HostPool


def pool(n=3, cores=8):
    return HostPool([Host(f"s{i}", cores=cores) for i in range(n)])


class TestReserve:
    def test_maps_local_hosts_to_distinct_shared_hosts(self):
        p = pool()
        mapping = p.reserve("t0", {"a": 2, "b": 3, "c": 1})
        assert mapping is not None
        assert sorted(mapping) == ["a", "b", "c"]
        assert len(set(mapping.values())) == 3  # distinctness
        assert p.used_cores == 6

    def test_worst_fit_spreads_load(self):
        p = pool(n=2, cores=8)
        p.reserve("t0", {"a": 4})
        mapping = p.reserve("t1", {"a": 2})
        # s0 has 4 free, s1 has 8 free: worst-fit picks the emptier s1.
        assert mapping == {"a": "s1"}

    def test_ties_break_by_name(self):
        p = pool(n=3, cores=8)
        assert p.reserve("t0", {"a": 1}) == {"a": "s0"}

    def test_all_or_nothing_on_capacity_miss(self):
        p = pool(n=2, cores=4)
        # Two local hosts fit, three cannot map to distinct shared hosts.
        assert p.reserve("t0", {"a": 1, "b": 1, "c": 1}) is None
        assert p.used_cores == 0
        assert p.tenants == ()

    def test_rejects_when_cores_run_out(self):
        p = pool(n=2, cores=4)
        assert p.reserve("t0", {"a": 4, "b": 4}) is not None
        assert p.reserve("t1", {"a": 1}) is None

    def test_distinctness_can_reject_despite_free_cores(self):
        p = pool(n=2, cores=8)
        # 16 free cores, but three local hosts need three distinct
        # shared hosts.
        assert p.reserve("t0", {"a": 2, "b": 2, "c": 2}) is None

    def test_double_reservation_is_an_error(self):
        p = pool()
        p.reserve("t0", {"a": 1})
        with pytest.raises(DeploymentError, match="already holds"):
            p.reserve("t0", {"a": 1})

    def test_invalid_requests_rejected(self):
        p = pool()
        with pytest.raises(DeploymentError, match="request cores"):
            p.reserve("t0", {})
        with pytest.raises(DeploymentError, match=">= 1 core"):
            p.reserve("t0", {"a": 0})

    def test_duplicate_host_names_rejected(self):
        with pytest.raises(DeploymentError, match="duplicate host"):
            HostPool([Host("s0", cores=2), Host("s0", cores=2)])


class TestRelease:
    def test_release_returns_all_cores(self):
        p = pool()
        p.reserve("t0", {"a": 3, "b": 2})
        p.reserve("t1", {"a": 4})
        p.release("t0")
        assert p.used_cores == 4
        assert p.tenants == ("t1",)
        # The freed cores are reusable.
        assert p.reserve("t2", {"a": 8}) is not None

    def test_release_unknown_tenant_is_an_error(self):
        with pytest.raises(DeploymentError, match="no reservation"):
            pool().release("ghost")


class TestAccounting:
    def test_isolation_ledger_tracks_tenant_cores(self):
        p = pool(n=2, cores=8)
        p.reserve("t0", {"a": 3})
        p.reserve("t1", {"a": 2, "b": 2})
        occupancy = p.occupancy()
        held = {
            host["host"]: host["tenants"] for host in occupancy["hosts"]
        }
        assert sum(c for tenants in held.values() for c in tenants.values()) == 7
        assert occupancy["used_cores"] == 7
        assert occupancy["free_cores"] == 9
        assert occupancy["tenants"] == 2

    def test_placement_of_round_trips(self):
        p = pool()
        mapping = p.reserve("t0", {"a": 1, "b": 1})
        assert p.placement_of("t0") == mapping
        with pytest.raises(DeploymentError):
            p.placement_of("t1")

    def test_occupancy_is_canonical(self):
        import json

        p = pool()
        p.reserve("t1", {"x": 2})
        p.reserve("t0", {"x": 1})
        a = json.dumps(p.occupancy(), sort_keys=True)
        q = pool()
        q.reserve("t1", {"x": 2})
        q.reserve("t0", {"x": 1})
        assert json.dumps(q.occupancy(), sort_keys=True) == a


class TestHostLifecycle:
    def test_cordoned_host_receives_no_new_reservations(self):
        p = pool(n=2)
        p.cordon("s0")
        mapping = p.reserve("t0", {"a": 1})
        assert mapping == {"a": "s1"}
        assert p.host_state("s0") == "cordoned"
        assert p.host_state("s1") == "up"

    def test_cordon_rejects_whole_reservation_when_no_room_left(self):
        p = pool(n=2)
        p.cordon("s0")
        assert p.reserve("t0", {"a": 1, "b": 1}) is None

    def test_uncordon_restores_service(self):
        p = pool(n=1)
        p.cordon("s0")
        assert p.reserve("t0", {"a": 1}) is None
        p.uncordon("s0")
        assert p.reserve("t0", {"a": 1}) == {"a": "s0"}

    def test_drain_reports_resident_tenants(self):
        p = pool(n=2)
        p.reserve("tb", {"a": 4})
        p.reserve("ta", {"a": 2})
        host = p.placement_of("tb")["a"]
        residents = p.drain(host)
        assert "tb" in residents
        assert residents == tuple(sorted(residents))
        assert p.host_state(host) == "draining"

    def test_reclaim_refuses_while_cores_held(self):
        p = pool(n=2)
        p.reserve("t0", {"a": 2})
        host = p.placement_of("t0")["a"]
        p.drain(host)
        with pytest.raises(DeploymentError):
            p.reclaim(host)
        p.release("t0")
        assert p.reclaim(host) == 8
        assert p.host_state(host) == "reclaimed"
        assert p.free_cores(host) == 0

    def test_uncordon_undoes_reclaim(self):
        p = pool(n=1)
        p.drain("s0")
        p.reclaim("s0")
        assert p.free_cores("s0") == 0
        p.uncordon("s0")
        assert p.host_state("s0") == "up"
        assert p.free_cores("s0") == 8

    def test_unknown_host_rejected(self):
        p = pool()
        for op in (p.cordon, p.uncordon, p.drain, p.reclaim, p.host_state):
            with pytest.raises(DeploymentError):
                op("nope")

    def test_occupancy_distinguishes_reserved_from_draining(self):
        p = pool(n=3)
        p.reserve("t0", {"a": 3})
        p.reserve("t1", {"a": 2})
        drained = p.placement_of("t0")["a"]
        p.drain(drained)
        occupancy = p.occupancy()
        assert occupancy["used_cores"] == 5
        assert occupancy["draining_cores"] == 3
        assert occupancy["reclaimed_cores"] == 0
        by_name = {h["host"]: h for h in occupancy["hosts"]}
        assert by_name[drained]["draining"] == 3
        assert by_name[drained]["state"] == "draining"

    def test_occupancy_excludes_reclaimed_capacity(self):
        p = pool(n=2, cores=4)
        p.reserve("t0", {"a": 2})
        other = next(
            h.name for h in p.hosts
            if h.name != p.placement_of("t0")["a"]
        )
        p.drain(other)
        p.reclaim(other)
        occupancy = p.occupancy()
        assert occupancy["total_cores"] == 8
        assert occupancy["reclaimed_cores"] == 4
        assert occupancy["used_cores"] == 2
        assert occupancy["free_cores"] == 2
        # Utilization is against *available* capacity, not raw total.
        assert occupancy["utilization"] == 0.5
        by_name = {h["host"]: h for h in occupancy["hosts"]}
        assert by_name[other]["used"] == 0
        assert by_name[other]["free"] == 0
        assert by_name[other]["state"] == "reclaimed"
