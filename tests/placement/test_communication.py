"""Tests for communication accounting and communication-aware placement."""

from __future__ import annotations

import pytest

from repro.core import Host, RateTable
from repro.dsps import InputTrace, StreamPlatform, TraceSegment
from repro.errors import DeploymentError
from repro.placement import (
    balanced_placement,
    communication_aware_placement,
    deployment_traffic,
    expected_traffic,
)

GIGA = 1.0e9


def hosts(n, cores=4, cycles=GIGA):
    return [
        Host(f"h{i}", cores=cores, cycles_per_core=cycles) for i in range(n)
    ]


class TestExpectedTraffic:
    def test_pipeline_edges(self, pipeline_descriptor):
        traffic = expected_traffic(pipeline_descriptor)
        # Only the PE->PE edge counts; src->pe1 is external ingress.
        assert set(traffic) == {("pe1", "pe2")}
        # E[rate] = 0.8*4 + 0.2*8 = 4.8 t/s.
        assert traffic[("pe1", "pe2")] == pytest.approx(4.8)

    def test_diamond_edges(self, diamond_descriptor):
        traffic = expected_traffic(diamond_descriptor)
        assert ("a", "b") in traffic and ("c", "d") in traffic
        assert ("src", "a") not in traffic


class TestDeploymentTraffic:
    def test_colocated_chain_has_zero_cut(self, pipeline_descriptor):
        from repro.core import ReplicaId, ReplicatedDeployment

        assignment = {
            ReplicaId("pe1", 0): "h0",
            ReplicaId("pe2", 0): "h0",
            ReplicaId("pe1", 1): "h1",
            ReplicaId("pe2", 1): "h1",
        }
        deployment = ReplicatedDeployment(
            pipeline_descriptor, hosts(2), assignment, 2
        )
        # Each receiver replica shares a host with one sender replica;
        # the cross pairs (sender on the other host) contribute rate/k
        # each: 2 receivers x 1 cross sender x 4.8/2 = 4.8.
        assert deployment_traffic(deployment) == pytest.approx(4.8)

    def test_anti_located_chain_has_full_cut(self, pipeline_descriptor):
        from repro.core import ReplicaId, ReplicatedDeployment

        assignment = {
            ReplicaId("pe1", 0): "h0",
            ReplicaId("pe2", 0): "h1",
            ReplicaId("pe1", 1): "h1",
            ReplicaId("pe2", 1): "h0",
        }
        deployment = ReplicatedDeployment(
            pipeline_descriptor, hosts(2), assignment, 2
        )
        # Receivers still each share a host with one sender here (pe2#0
        # on h1 with pe1#1, etc.) - traffic identical by symmetry.
        assert deployment_traffic(deployment) == pytest.approx(4.8)


class TestCommunicationAwarePlacement:
    def test_never_worse_than_lpt(self, diamond_descriptor):
        lpt = balanced_placement(diamond_descriptor, hosts(3))
        aware = communication_aware_placement(diamond_descriptor, hosts(3))
        assert deployment_traffic(aware) <= deployment_traffic(lpt) + 1e-9

    def test_constraints_preserved(self, diamond_descriptor):
        aware = communication_aware_placement(diamond_descriptor, hosts(3))
        table = RateTable(diamond_descriptor)
        for pe in diamond_descriptor.graph.pes:
            homes = {aware.host_of(r) for r in aware.replicas_of(pe)}
            assert len(homes) == 2
        for host in aware.host_names:
            assert len(aware.replicas_on(host)) <= 4
        # Load safety: within 10% of LPT's worst host.
        lpt = balanced_placement(diamond_descriptor, hosts(3))
        for c in range(2):
            lpt_max = max(
                lpt.host_load(h, c, table) for h in lpt.host_names
            )
            aware_max = max(
                aware.host_load(h, c, table) for h in aware.host_names
            )
            assert aware_max <= lpt_max * 1.10 + 1e-9

    def test_validation(self, diamond_descriptor):
        with pytest.raises(DeploymentError):
            communication_aware_placement(
                diamond_descriptor, hosts(3), load_tolerance=-0.1
            )
        with pytest.raises(DeploymentError):
            communication_aware_placement(
                diamond_descriptor, hosts(3), max_passes=0
            )

    def test_deterministic(self, diamond_descriptor):
        a = communication_aware_placement(diamond_descriptor, hosts(3))
        b = communication_aware_placement(diamond_descriptor, hosts(3))
        assert a.to_dict() == b.to_dict()


class TestRuntimeNetworkAccounting:
    def test_counters_split_by_host(self, pipeline_descriptor):
        deployment = balanced_placement(
            pipeline_descriptor, hosts(2, cores=2, cycles=0.5 * GIGA)
        )
        platform = StreamPlatform(
            deployment,
            {"src": InputTrace([TraceSegment(4.0, 10.0, "Low")])},
        )
        metrics = platform.run()
        network = metrics.network
        # 40 source tuples x 2 pe1 replicas of ingress.
        assert network.ingress_tuples == 80
        # pe2's primary forwards ~40 tuples to the sink (egress).
        assert network.egress_tuples == pytest.approx(40, abs=2)
        # pe1 primary -> both pe2 replicas: one local, one remote per
        # tuple under the balanced placement.
        assert network.inter_host_tuples > 0
        assert (
            network.inter_host_tuples + network.intra_host_tuples
            == pytest.approx(80, abs=4)
        )
        assert sum(network.per_link.values()) == network.inter_host_tuples

    def test_simulated_traffic_matches_model(self, pipeline_descriptor):
        deployment = balanced_placement(
            pipeline_descriptor, hosts(2, cores=2, cycles=0.5 * GIGA)
        )
        duration = 30.0
        platform = StreamPlatform(
            deployment,
            {"src": InputTrace([TraceSegment(4.0, duration, "Low")])},
        )
        metrics = platform.run()
        # Model: Low-only trace -> 4 t/s on the pe1->pe2 edge; per tuple
        # the primary sends to 2 receivers, of which the cross-host share
        # is what deployment_traffic estimates at rate/k per pair.
        measured_rate = metrics.network.inter_host_tuples / duration
        # With one fixed primary the true cut is 1 remote receiver x 4 t/s.
        assert measured_rate == pytest.approx(4.0, rel=0.1)