"""Shared fixtures: the paper's Sec. 4.1 pipeline and richer graph shapes."""

from __future__ import annotations

import pytest

from repro.core import (
    ApplicationDescriptor,
    ApplicationGraph,
    ConfigurationSpace,
    EdgeProfile,
    Host,
    RateTable,
)
from repro.placement import balanced_placement

GIGA = 1.0e9


@pytest.fixture
def pipeline_descriptor() -> ApplicationDescriptor:
    """The minimal scenario of Sec. 4.1 / Fig. 1.

    Two PEs in a pipeline, selectivity 1, 100 ms per tuple on a 1 GHz
    core (0.1e9 cycles); one source with Low = 4 t/s (p = 0.8) and
    High = 8 t/s (p = 0.2).
    """
    graph = ApplicationGraph.build(
        sources=["src"],
        pes=["pe1", "pe2"],
        sinks=["sink"],
        edges=[("src", "pe1"), ("pe1", "pe2"), ("pe2", "sink")],
    )
    space = ConfigurationSpace.two_level("src", 4.0, 8.0, 0.8)
    profiles = {
        ("src", "pe1"): EdgeProfile(selectivity=1.0, cpu_cost=0.1 * GIGA),
        ("pe1", "pe2"): EdgeProfile(selectivity=1.0, cpu_cost=0.1 * GIGA),
    }
    return ApplicationDescriptor(graph, profiles, space, name="pipeline")


@pytest.fixture
def pipeline_deployment(pipeline_descriptor):
    """Fig. 2a: the pipeline replicated twice over two hosts.

    Hosts have two 1 GHz cores each, so the High configuration with full
    replication (1.6e9 cycles/s per host) fits only by deactivation when
    capacity is single-core; with two cores it is feasible — tests pick
    the deployment they need.
    """
    hosts = [
        Host("h0", cores=2, cycles_per_core=GIGA),
        Host("h1", cores=2, cycles_per_core=GIGA),
    ]
    return balanced_placement(pipeline_descriptor, hosts, replication_factor=2)


@pytest.fixture
def tight_pipeline_deployment(pipeline_descriptor):
    """Fig. 2a with the paper's single-core hosts.

    Each host holds one replica of each PE and saturates in the High
    configuration when everything is active (exactly the Fig. 3 scenario:
    High needs 160% of the total CPU).
    """
    hosts = [
        Host("h0", cores=2, cycles_per_core=0.5 * GIGA),
        Host("h1", cores=2, cycles_per_core=0.5 * GIGA),
    ]
    return balanced_placement(pipeline_descriptor, hosts, replication_factor=2)


@pytest.fixture
def diamond_descriptor() -> ApplicationDescriptor:
    """A fan-out / fan-in DAG exercising multi-predecessor PEs.

        src -> a -> b -> d -> sink
                \\-> c -/

    with non-trivial selectivities so rate propagation is not the
    identity.
    """
    graph = ApplicationGraph.build(
        sources=["src"],
        pes=["a", "b", "c", "d"],
        sinks=["sink"],
        edges=[
            ("src", "a"),
            ("a", "b"),
            ("a", "c"),
            ("b", "d"),
            ("c", "d"),
            ("d", "sink"),
        ],
    )
    space = ConfigurationSpace.two_level("src", 5.0, 10.0, 0.75)
    profiles = {
        ("src", "a"): EdgeProfile(selectivity=1.0, cpu_cost=0.02 * GIGA),
        ("a", "b"): EdgeProfile(selectivity=0.5, cpu_cost=0.03 * GIGA),
        ("a", "c"): EdgeProfile(selectivity=1.5, cpu_cost=0.01 * GIGA),
        ("b", "d"): EdgeProfile(selectivity=1.0, cpu_cost=0.02 * GIGA),
        ("c", "d"): EdgeProfile(selectivity=0.8, cpu_cost=0.015 * GIGA),
    }
    return ApplicationDescriptor(graph, profiles, space, name="diamond")


@pytest.fixture
def diamond_deployment(diamond_descriptor):
    hosts = [
        Host("h0", cores=4, cycles_per_core=GIGA),
        Host("h1", cores=4, cycles_per_core=GIGA),
    ]
    return balanced_placement(diamond_descriptor, hosts, replication_factor=2)


@pytest.fixture
def pipeline_rate_table(pipeline_descriptor) -> RateTable:
    return RateTable(pipeline_descriptor)
