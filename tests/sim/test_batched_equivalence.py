"""Byte-identity matrix: batched engine vs tuple-granular execution.

The batched engine's contract (ROADMAP item 6) is that flipping
``PlatformConfig.batching`` changes wall-clock time and nothing else:
event logs, metrics, and chaos digests must be byte-identical. This
module pins that contract across every entry point that exposes the
flag — the fleet data plane, seeded chaos campaigns, and observed
runs — and proves the comparison has teeth with a seeded-divergence
mutation that must make the hashes differ.

The per-tenant digests compared here include the SHA-256 of the
canonical event stream, so "equal digests" means byte-identical logs.
Only the ``"engine"`` key (the batched engine's own counters) may
legitimately differ between modes; it is stripped before comparing.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.chaos import CampaignSpec, run_campaign
from repro.core.optimizer import OptimizationProblem, ft_search
from repro.dsps.batched import FallbackTracker
from repro.fleet.dataplane import (
    DataplaneParams,
    TenantTask,
    run_tenant,
    summarize_dataplane,
)
from repro.obs.runner import FAILURE_MODES, ObservedRunSpec, run_observed
from repro.workloads import (
    ClusterParams,
    GeneratorParams,
    generate_application,
    save_bundle,
)

CHAOS_SEEDS = range(5)

#: Small fleet slice: chaos_every=4 puts scripted crashes on tenants
#: 0, 4, 8 and slow-host windows on tenants 2, 6, 10, so the matrix
#: exercises the fallback path and the pure closed-form path together.
FLEET = DataplaneParams(tenants=12, chaos_every=4, duration=30.0)


def _without_engine(digest: dict) -> dict:
    return {k: v for k, v in digest.items() if k != "engine"}


def _fleet_digests(params: DataplaneParams, batching: bool) -> list[dict]:
    return [
        run_tenant(TenantTask(params, tenant, batching=batching))
        for tenant in range(params.tenants)
    ]


@pytest.fixture(scope="module")
def fleet_pair() -> tuple[list[dict], list[dict]]:
    return (
        _fleet_digests(FLEET, batching=False),
        _fleet_digests(FLEET, batching=True),
    )


class TestFleetDataplane:
    def test_digests_identical_modulo_engine(self, fleet_pair):
        tuple_mode, batched = fleet_pair
        for t_digest, b_digest in zip(tuple_mode, batched):
            t_clean = _without_engine(dict(t_digest, batching=None))
            b_clean = _without_engine(dict(b_digest, batching=None))
            assert t_clean == b_clean, t_digest["tenant"]

    def test_fleet_sha_identical(self, fleet_pair):
        tuple_mode, batched = fleet_pair
        t_summary = summarize_dataplane(tuple_mode)
        b_summary = summarize_dataplane(batched)
        assert t_summary["fleet_sha256"] == b_summary["fleet_sha256"]
        assert t_summary["ok"] and b_summary["ok"]

    def test_chaos_tenants_fall_back(self, fleet_pair):
        _, batched = fleet_pair
        chaotic = [d for d in batched if d["fallback_windows"]]
        assert chaotic, "chaos_every=4 must open fallback windows"
        micro = sum(d["engine"]["micro_events"] for d in chaotic)
        assert micro > 0, "fallback windows must run tuple-granular"

    def test_quiet_tenant_runs_closed_form(self, fleet_pair):
        _, batched = fleet_pair
        quiet = next(d for d in batched if not d["fallback_windows"])
        engine = quiet["engine"]
        assert engine["micro_events"] == 0
        assert engine["runs"] > 0, "run-commit tier must engage"
        assert engine["cascades"] > engine["runs"], (
            "runs must commit multi-cascade trains"
        )

    def test_slo_rollups_present_and_identical(self, fleet_pair):
        # The digests compared above include the slo.* event stream
        # (events_sha256 covers it) and the summary dict; make the SLO
        # coverage explicit so a regression reads as an SLO failure.
        tuple_mode, batched = fleet_pair
        for t_digest, b_digest in zip(tuple_mode, batched):
            assert t_digest["log_complete"] is True
            slo = t_digest["slo"]
            assert slo["n_windows"] > 0
            assert json.dumps(slo, sort_keys=True) == json.dumps(
                b_digest["slo"], sort_keys=True
            )

    def test_worker_count_does_not_change_slo_streams(self, fleet_pair):
        from repro.fleet.scenario import run_fleet_dataplane

        _, batched = fleet_pair
        summary, digests = run_fleet_dataplane(
            dataclasses.replace(FLEET, batching=True), jobs=4
        )
        expected = summarize_dataplane(batched)["fleet_sha256"]
        assert summary["fleet_sha256"] == expected
        assert json.dumps(digests, sort_keys=True) == json.dumps(
            batched, sort_keys=True
        )


class TestSeededDivergence:
    """Prove the comparison can fail: a mutated engine must be caught."""

    def test_suppressed_fallback_diverges(self, monkeypatch):
        params = DataplaneParams(tenants=1, chaos_every=1, duration=30.0)
        honest = run_tenant(TenantTask(params, 0, batching=True))
        assert honest["fallback_windows"] > 0

        monkeypatch.setattr(
            FallbackTracker, "on_control", lambda self, reason: None
        )
        mutated = run_tenant(TenantTask(params, 0, batching=True))
        assert mutated["events_sha256"] != honest["events_sha256"], (
            "suppressing fallback windows must change the event stream"
        )


@pytest.fixture(scope="module")
def proven_paths(tmp_path_factory) -> tuple[str, str]:
    directory: Path = tmp_path_factory.mktemp("batched-equivalence")
    app = generate_application(
        7,
        GeneratorParams(n_pes=4, low_rate_range=(2.0, 6.0)),
        ClusterParams(n_hosts=3, cores_per_host=4),
    )
    save_bundle(app, directory / "bundle.json")
    result = ft_search(OptimizationProblem(app.deployment, ic_target=0.5))
    assert result.found_solution
    result.strategy.to_json(directory / "strategy.json")
    return str(directory / "bundle.json"), str(directory / "strategy.json")


class TestChaosCampaigns:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_campaign_digest_identical(self, proven_paths, seed):
        bundle, strategy = proven_paths
        digests = []
        for batching in (False, True):
            spec = CampaignSpec(
                bundle=bundle,
                strategy=strategy,
                seed=seed,
                duration=40.0,
                n_injections=3,
                heartbeat_interval=0.5 if seed % 2 else None,
                batching=batching,
            )
            digests.append(run_campaign(spec))
        assert json.dumps(digests[0], sort_keys=True) == json.dumps(
            digests[1], sort_keys=True
        )


class TestObservedRuns:
    @pytest.mark.parametrize("mode", FAILURE_MODES)
    def test_observed_digest_identical(self, proven_paths, mode):
        bundle, strategy = proven_paths
        digests = []
        for batching in (False, True):
            spec = ObservedRunSpec(
                bundle=bundle,
                strategy=strategy,
                mode=mode,
                duration=30.0,
                batching=batching,
            )
            digests.append(run_observed(spec))
        assert json.dumps(digests[0], sort_keys=True) == json.dumps(
            digests[1], sort_keys=True
        )
        assert digests[0]["slo"]["n_windows"] > 0
        assert digests[0]["log_complete"] is True


def _elastic_params():
    """Migration-heavy slice: every tenant autoscales around its
    diurnal peak, tenant 0/4 consolidate a host at night, tenant 1/5
    run a live rebalance move, and tenant 1's scripted host kill lands
    inside its open migration window (the chaos-mid-migration path)."""
    from repro.elastic import ElasticParams

    return ElasticParams(tenants=8, chaos_every=4, duration=12.0)


def _elastic_digests(batching: bool) -> list[dict]:
    from repro.elastic import ElasticTask, run_elastic_tenant

    params = _elastic_params()
    return [
        run_elastic_tenant(ElasticTask(params, tenant, batching=batching))
        for tenant in range(params.tenants)
    ]


@pytest.fixture(scope="module")
def elastic_pair() -> tuple[list[dict], list[dict]]:
    return (_elastic_digests(False), _elastic_digests(True))


class TestElasticDataplane:
    """The byte-identity contract holds across live migrations."""

    def test_digests_identical_modulo_engine(self, elastic_pair):
        tuple_mode, batched = elastic_pair
        for t_digest, b_digest in zip(tuple_mode, batched):
            t_clean = _without_engine(dict(t_digest, batching=None))
            b_clean = _without_engine(dict(b_digest, batching=None))
            assert t_clean == b_clean, t_digest["tenant"]

    def test_fleet_sha_identical_and_clean(self, elastic_pair):
        from repro.elastic import summarize_elastic

        tuple_mode, batched = elastic_pair
        t_summary = summarize_elastic(tuple_mode)
        b_summary = summarize_elastic(batched)
        assert t_summary["fleet_sha256"] == b_summary["fleet_sha256"]
        assert t_summary["ok"] and b_summary["ok"]
        assert t_summary["elastic"]["migrations"] > 0
        assert t_summary["elastic"]["aborted"] > 0, (
            "the chaos-mid-migration slot must abort at least one"
            " migration"
        )

    def test_worker_count_does_not_change_elastic_streams(
        self, elastic_pair
    ):
        from repro.elastic import summarize_elastic
        from repro.elastic.scenario import run_elastic_fleet

        _, batched = elastic_pair
        summary, digests = run_elastic_fleet(
            dataclasses.replace(_elastic_params(), batching=True), jobs=4
        )
        expected = summarize_elastic(batched)["fleet_sha256"]
        assert summary["fleet_sha256"] == expected
        assert json.dumps(digests, sort_keys=True) == json.dumps(
            batched, sort_keys=True
        )
