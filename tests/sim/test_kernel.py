"""Tests for the discrete-event simulation kernel."""

from __future__ import annotations

import math

import pytest

from repro.errors import SimulationError
from repro.sim import Environment


class TestScheduling:
    def test_events_fire_in_time_order(self):
        env = Environment()
        log = []
        env.schedule(2.0, lambda: log.append("b"))
        env.schedule(1.0, lambda: log.append("a"))
        env.schedule(3.0, lambda: log.append("c"))
        env.run()
        assert log == ["a", "b", "c"]

    def test_ties_break_fifo(self):
        env = Environment()
        log = []
        for name in "abc":
            env.schedule(1.0, lambda n=name: log.append(n))
        env.run()
        assert log == ["a", "b", "c"]

    def test_clock_advances_to_event_times(self):
        env = Environment()
        seen = []
        env.schedule(5.0, lambda: seen.append(env.now))
        env.run()
        assert seen == [5.0]
        assert env.now == 5.0

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.schedule(-1.0, lambda: None)

    def test_cancelled_event_does_not_fire(self):
        env = Environment()
        log = []
        handle = env.schedule(1.0, lambda: log.append("x"))
        handle.cancel()
        env.run()
        assert log == []

    def test_run_until_stops_the_clock(self):
        env = Environment()
        log = []
        env.schedule(1.0, lambda: log.append(1))
        env.schedule(10.0, lambda: log.append(10))
        env.run(until=5.0)
        assert log == [1]
        assert env.now == 5.0
        env.run()
        assert log == [1, 10]

    def test_run_until_is_inclusive(self):
        env = Environment()
        log = []
        env.schedule(5.0, lambda: log.append("edge"))
        env.run(until=5.0)
        assert log == ["edge"]

    def test_run_until_past_rejected(self):
        env = Environment()
        env.schedule(5.0, lambda: None)
        env.run()
        with pytest.raises(SimulationError):
            env.run(until=1.0)

    def test_schedule_at(self):
        env = Environment(start_time=10.0)
        seen = []
        env.schedule_at(12.0, lambda: seen.append(env.now))
        env.run()
        assert seen == [12.0]
        with pytest.raises(SimulationError):
            env.schedule_at(5.0, lambda: None)

    def test_events_scheduled_during_run_fire(self):
        env = Environment()
        log = []

        def first():
            log.append(("first", env.now))
            env.schedule(1.0, lambda: log.append(("second", env.now)))

        env.schedule(1.0, first)
        env.run()
        assert log == [("first", 1.0), ("second", 2.0)]

    def test_peek(self):
        env = Environment()
        assert env.peek() == math.inf
        handle = env.schedule(3.0, lambda: None)
        assert env.peek() == 3.0
        handle.cancel()
        assert env.peek() == math.inf

    def test_cancelled_events_counted_separately(self):
        env = Environment()
        kept = env.schedule(1.0, lambda: None)
        for _ in range(3):
            env.schedule(2.0, lambda: None).cancel()
        env.run()
        assert kept.cancelled is False
        assert env.events_processed == 1
        assert env.events_cancelled == 3

    def test_peek_purge_counts_cancelled(self):
        env = Environment()
        env.schedule(1.0, lambda: None).cancel()
        assert env.peek() == math.inf
        assert env.events_cancelled == 1
        assert env.events_processed == 0


class TestProcesses:
    def test_timeout_yields_advance_clock(self):
        env = Environment()
        trace = []

        def worker():
            trace.append(env.now)
            yield 1.5
            trace.append(env.now)
            yield 2.5
            trace.append(env.now)

        env.process(worker())
        env.run()
        assert trace == [0.0, 1.5, 4.0]

    def test_signal_wakes_process_with_value(self):
        env = Environment()
        received = []

        def waiter(signal):
            value = yield signal
            received.append((env.now, value))

        signal = env.signal()
        env.process(waiter(signal))
        env.schedule(3.0, lambda: signal.trigger("payload"))
        env.run()
        assert received == [(3.0, "payload")]

    def test_pre_triggered_signal_resumes_immediately(self):
        env = Environment()
        received = []
        signal = env.signal()
        signal.trigger(42)

        def waiter():
            value = yield signal
            received.append(value)

        env.process(waiter())
        env.run()
        assert received == [42]

    def test_signal_double_trigger_rejected(self):
        env = Environment()
        signal = env.signal()
        signal.trigger()
        with pytest.raises(SimulationError):
            signal.trigger()

    def test_done_signal_carries_return_value(self):
        env = Environment()
        results = []

        def worker():
            yield 1.0
            return "finished"

        def watcher(process):
            value = yield process.done
            results.append(value)

        process = env.process(worker())
        env.process(watcher(process))
        env.run()
        assert results == ["finished"]

    def test_interrupt_stops_process(self):
        env = Environment()
        trace = []

        def worker():
            trace.append("start")
            yield 5.0
            trace.append("never")

        process = env.process(worker())
        env.schedule(1.0, process.interrupt)
        env.run()
        assert trace == ["start"]
        assert not process.alive

    def test_invalid_yield_raises(self):
        env = Environment()

        def worker():
            yield "nonsense"

        env.process(worker())
        with pytest.raises(SimulationError, match="unsupported"):
            env.run()

    def test_many_interleaved_processes_deterministic(self):
        env = Environment()
        log = []

        def worker(name, period):
            for _ in range(3):
                yield period
                log.append((env.now, name))

        env.process(worker("fast", 1.0))
        env.process(worker("slow", 1.5))
        env.run()
        # At t=3.0 both workers fire; "slow" enqueued its event earlier
        # (at t=1.5 vs t=2.0), so FIFO tie-breaking runs it first.
        assert log == [
            (1.0, "fast"),
            (1.5, "slow"),
            (2.0, "fast"),
            (3.0, "slow"),
            (3.0, "fast"),
            (4.5, "slow"),
        ]
