"""Smart-city traffic control: the paper's motivating scenario.

The introduction motivates LAAR with an application that controls traffic
light signals from periodic vehicle position reports: during rush hour
(high system load) it is preferable to compute on incomplete information
than to delay control decisions, while off-peak accuracy matters.

This example models that application explicitly:

    vehicles --> ingest --> map_match --+--> zone_north --> congestion --> signal_ctl
                                        +--> zone_south --/
                                        +--> incidents  ------------------^

Vehicle reports arrive at 6 t/s off-peak (70 % of the day) and 14 t/s
during rush hour. The application runs replicated on three city-cloud
hosts sized so rush hour overloads full replication. The operator signs
an SLA with IC >= 0.6 — the redundancy of position reports tolerates 40 %
loss under worst-case failures.

The script computes the LAAR strategy, then simulates rush hour with a
host crash (16 s detection + migration, as measured for Streams in the
paper's reference [19]) and reports the measured completeness against the
guarantee.

Run:  python examples/smart_city_traffic.py
"""

import random

from repro.core import (
    ApplicationDescriptor,
    ApplicationGraph,
    ConfigurationSpace,
    EdgeProfile,
    Host,
    OptimizationProblem,
    ft_search,
    internal_completeness,
    static_replication,
)
from repro.dsps import (
    PlatformConfig,
    inject_host_crash,
    plan_host_crash,
    two_level_trace,
)
from repro.laar import ExtendedApplication, MiddlewareConfig
from repro.placement import balanced_placement

GIGA = 1.0e9


def build_traffic_application() -> ApplicationDescriptor:
    graph = ApplicationGraph.build(
        sources=["vehicles"],
        pes=[
            "ingest",
            "map_match",
            "zone_north",
            "zone_south",
            "incidents",
            "congestion",
            "signal_ctl",
        ],
        sinks=["signal_plan"],
        edges=[
            ("vehicles", "ingest"),
            ("ingest", "map_match"),
            ("map_match", "zone_north"),
            ("map_match", "zone_south"),
            ("map_match", "incidents"),
            ("zone_north", "congestion"),
            ("zone_south", "congestion"),
            ("incidents", "signal_ctl"),
            ("congestion", "signal_ctl"),
            ("signal_ctl", "signal_plan"),
        ],
    )
    space = ConfigurationSpace.two_level(
        "vehicles", low_rate=6.0, high_rate=14.0, low_probability=0.7
    )
    cost = lambda ms: ms * 1e-3 * GIGA  # noqa: E731 - ms on a 1 GHz core
    profiles = {
        ("vehicles", "ingest"): EdgeProfile(1.0, cost(18.0)),
        ("ingest", "map_match"): EdgeProfile(1.0, cost(35.0)),
        # Each report lands in one zone; roughly half per zone.
        ("map_match", "zone_north"): EdgeProfile(0.5, cost(22.0)),
        ("map_match", "zone_south"): EdgeProfile(0.5, cost(22.0)),
        # Few reports indicate incidents.
        ("map_match", "incidents"): EdgeProfile(0.1, cost(15.0)),
        ("zone_north", "congestion"): EdgeProfile(1.0, cost(28.0)),
        ("zone_south", "congestion"): EdgeProfile(1.0, cost(28.0)),
        ("incidents", "signal_ctl"): EdgeProfile(1.0, cost(10.0)),
        ("congestion", "signal_ctl"): EdgeProfile(1.0, cost(30.0)),
    }
    return ApplicationDescriptor(
        graph, profiles, space, name="smart-city-traffic"
    )


def main() -> None:
    descriptor = build_traffic_application()
    hosts = [
        Host("city-a", cores=5, cycles_per_core=0.28 * GIGA),
        Host("city-b", cores=5, cycles_per_core=0.28 * GIGA),
        Host("city-c", cores=5, cycles_per_core=0.28 * GIGA),
    ]
    deployment = balanced_placement(descriptor, hosts, replication_factor=2)

    from repro.core import RateTable

    table = RateTable(descriptor)
    print("rush-hour overload with full replication:",
          deployment.overloaded_hosts(1, table) or "none")

    result = ft_search(
        OptimizationProblem(deployment, ic_target=0.6), time_limit=10.0
    )
    if result.strategy is None:
        raise SystemExit(f"no strategy found: {result.outcome.value}")
    print(f"FT-Search: {result.outcome.value}, guaranteed IC"
          f" {result.best_ic:.3f} (SLA 0.6)")
    sr_ic = internal_completeness(static_replication(deployment))
    print(f"static replication worst-case IC would be {sr_ic:.3f},"
          " but rush hour overloads it\n")

    # One simulated 'day': 3 minutes with a 60 s rush-hour burst.
    trace = two_level_trace(6.0, 14.0, duration=180.0, high_fraction=1 / 3)
    platform_config = PlatformConfig(arrival_jitter=0.3, seed=7)
    middleware_config = MiddlewareConfig(
        monitor_interval=2.0, rate_tolerance=0.25, down_confirmation=2
    )

    # Reference run: no failures.
    reference = ExtendedApplication(
        deployment, result.strategy, {"vehicles": trace},
        platform_config=platform_config,
        middleware_config=middleware_config,
    )
    best = reference.run()

    # Drill: crash a random city host during rush hour, 16 s recovery.
    drill = ExtendedApplication(
        deployment, result.strategy, {"vehicles": trace},
        platform_config=platform_config,
        middleware_config=middleware_config,
    )
    plan = plan_host_crash(
        drill.platform,
        trace.segment_windows("High"),
        random.Random(99),
        downtime=16.0,
    )
    inject_host_crash(drill.platform, plan)
    failed = drill.run()

    print(f"host crash drill: {plan.host} down at t={plan.crash_time:.0f}s"
          f" for {plan.downtime:.0f}s (during rush hour)")
    measured = failed.tuples_processed / max(1, best.tuples_processed)
    print(f"  signal plans emitted: {failed.total_output}"
          f" (failure-free: {best.total_output})")
    print(f"  measured completeness: {measured:.3f}"
          f"  >= guaranteed {result.best_ic:.3f}: {measured >= result.best_ic}")
    print(f"  reports dropped at queues: {failed.logical_dropped}")
    print(f"  configuration switches: {len(failed.config_switches)}")


if __name__ == "__main__":
    main()
