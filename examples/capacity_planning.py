"""Capacity planning: pricing the reliability knob.

The provider perspective of Section 3: the fee for running an application
depends on the agreed SLA, and LAAR's key property (Fig. 9 / Fig. 12) is
that execution cost tracks the requested IC guarantee. This example takes
one synthetic 24-PE application from the paper's generator and sweeps the
IC target, printing the resulting cost curve — the table a provider would
use to price SLA tiers. It also demonstrates the penalty-mode optimizer
(the paper's future-work item ii), where the IC target becomes a soft
objective instead of a hard constraint.

Run:  python examples/capacity_planning.py
"""

from repro.core import (
    OptimizationProblem,
    SearchOutcome,
    ft_search,
    static_replication,
    strategy_cost,
)
from repro.workloads import generate_application

GIGA = 1.0e9


def main() -> None:
    app = generate_application(seed=2014)
    deployment = app.deployment
    print(f"application: {app.name}  "
          f"({len(app.descriptor.graph.pes)} PEs, "
          f"Low {app.low_rate:.1f} t/s, High {app.high_rate:.1f} t/s)")

    sr_cost = strategy_cost(static_replication(deployment))
    print(f"static replication (IC 1.0 guarantee impossible here —"
          f" High overloads): cost {sr_cost / GIGA:.2f} Gcyc/s\n")

    print("IC target   outcome   cost (Gcyc/s)   vs SR    achieved IC")
    print("-" * 62)
    for target in (0.0, 0.2, 0.4, 0.5, 0.6, 0.7, 0.8):
        result = ft_search(
            OptimizationProblem(deployment, ic_target=target),
            time_limit=3.0,
        )
        if result.strategy is None:
            print(f"{target:9.1f}   {result.outcome.value:7s}   "
                  "-- no feasible strategy --")
            continue
        marker = "" if result.outcome is SearchOutcome.OPTIMAL else " (anytime)"
        print(f"{target:9.1f}   {result.outcome.value:7s}   "
              f"{result.best_cost / GIGA:13.2f}   "
              f"{result.best_cost / sr_cost:5.2f}    "
              f"{result.best_ic:.3f}{marker}")

    # Future-work item (ii): soft IC with a violation penalty. The weight
    # converts an IC deficit into cost units; sweeping it explores the
    # cost/completeness frontier without hard infeasibility.
    print("\npenalty mode (target 0.8, which is infeasible as a hard"
          " constraint for most generated apps):")
    print("penalty weight   cost (Gcyc/s)   achieved IC")
    print("-" * 46)
    for weight in (0.0, 1e9, 1e10, 1e11):
        result = ft_search(
            OptimizationProblem(deployment, ic_target=0.8),
            time_limit=3.0,
            penalty_weight=weight,
        )
        print(f"{weight:14.1e}   {result.best_cost / GIGA:13.2f}   "
              f"{result.best_ic:.3f}")


if __name__ == "__main__":
    main()
