"""Profile-then-deploy: the full provider workflow of Section 3.

A customer hands the provider an application *without* a descriptor —
just the dataflow graph, the operators, and an example input trace. The
provider then (paper, Sec. 3):

1. runs a *preliminary profiling step* to measure per-edge selectivities
   and per-tuple CPU costs;
2. infers the source rate distribution from the example trace via
   binning [12];
3. feeds the assembled descriptor to FT-Search and deploys the
   application with the resulting LAAR strategy.

This example executes all three steps against the simulator and verifies
the strategy computed from the *inferred* descriptor performs like one
computed from ground truth.

Run:  python examples/profile_and_deploy.py
"""

import random

from repro.core import (
    ApplicationDescriptor,
    ApplicationGraph,
    ConfigurationSpace,
    EdgeProfile,
    Host,
    OptimizationProblem,
    ft_search,
)
from repro.dsps import InputTrace, StreamPlatform, TraceSegment, two_level_trace
from repro.laar import ExtendedApplication, MiddlewareConfig
from repro.placement import balanced_placement
from repro.workloads import infer_source_rates, profile_application

GIGA = 1.0e9


def customer_application():
    """What the customer provides: graph + (hidden) true behaviour."""
    graph = ApplicationGraph.build(
        sources=["events"],
        pes=["parse", "enrich", "window", "detect"],
        sinks=["alerts"],
        edges=[
            ("events", "parse"),
            ("parse", "enrich"),
            ("enrich", "window"),
            ("enrich", "detect"),
            ("window", "detect"),
            ("detect", "alerts"),
        ],
    )
    true_profiles = {
        ("events", "parse"): EdgeProfile(1.0, 0.03 * GIGA),
        ("parse", "enrich"): EdgeProfile(1.0, 0.05 * GIGA),
        ("enrich", "window"): EdgeProfile(0.6, 0.04 * GIGA),
        ("enrich", "detect"): EdgeProfile(0.9, 0.02 * GIGA),
        ("window", "detect"): EdgeProfile(1.2, 0.03 * GIGA),
    }
    return graph, true_profiles


def main() -> None:
    graph, true_profiles = customer_application()
    hosts = [
        Host("n0", cores=4, cycles_per_core=0.3 * GIGA),
        Host("n1", cores=4, cycles_per_core=0.3 * GIGA),
        Host("n2", cores=4, cycles_per_core=0.3 * GIGA),
    ]

    # The customer's example trace: mostly calm, bursty at times.
    example_trace = two_level_trace(3.0, 6.5, duration=120.0,
                                    high_fraction=1 / 3)
    arrival_times = list(
        example_trace.arrival_times(random.Random(5), jitter=0.3)
    )

    # Step 1+2: a profiling run on a staging deployment. The provider
    # does not know selectivities/costs yet, so it stages with the true
    # (hidden) behaviour — in the simulator that means building the
    # platform from the true profiles and only *measuring* them.
    print("step 1: profiling run on staging deployment...")
    staging_space = ConfigurationSpace.two_level("events", 3.0, 6.5, 2 / 3)
    hidden = ApplicationDescriptor(
        graph, true_profiles, staging_space, name="hidden-truth"
    )
    staging = balanced_placement(hidden, hosts, 2)
    platform = StreamPlatform(
        staging, {"events": InputTrace([TraceSegment(3.0, 90.0, "Low")])}
    )
    metrics = platform.run()

    inferred_rates = infer_source_rates(
        arrival_times, duration=example_trace.duration, window=2.0, bins=2
    )
    print(f"   inferred source rates: "
          + ", ".join(f"{r:.2f} t/s (p={p:.2f})" for r, p in inferred_rates))

    descriptor = profile_application(
        graph,
        metrics,
        source_rates={"events": inferred_rates},
        cycles_per_core=0.3 * GIGA,
        name="profiled",
    )
    print("   measured selectivities:")
    for pe in graph.pes:
        for edge in graph.pe_input_edges(pe):
            truth = true_profiles[(edge.tail, pe)].selectivity
            measured = descriptor.selectivity(edge.tail, pe)
            print(f"     {edge.tail:>7s} -> {pe:<7s}"
                  f" true {truth:.2f}  measured {measured:.2f}")

    # Step 3: optimize on the inferred descriptor and deploy.
    print("\nstep 2: FT-Search on the inferred descriptor (IC >= 0.55)...")
    deployment = balanced_placement(descriptor, hosts, 2)
    result = ft_search(
        OptimizationProblem(deployment, ic_target=0.55), time_limit=10.0
    )
    print(f"   {result.outcome.value}: cost {result.best_cost / GIGA:.2f}"
          f" Gcyc/s, guaranteed IC {result.best_ic:.3f}")

    print("\nstep 3: production run with the profiled strategy...")
    production = ExtendedApplication(
        deployment,
        result.strategy,
        {"events": example_trace},
        middleware_config=MiddlewareConfig(
            monitor_interval=2.0, rate_tolerance=0.25, down_confirmation=2
        ),
    )
    run = production.run()
    print(f"   input {run.total_input}, output {run.total_output},"
          f" drops {run.logical_dropped},"
          f" switches {len(run.config_switches)}")
    ratio = run.total_output / max(1, run.total_input)
    print(f"   output/input ratio: {ratio:.3f}"
          " (greater than 1: the detect stage amplifies via selectivity)")


if __name__ == "__main__":
    main()
