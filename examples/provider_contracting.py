"""Provider contracting: quoting SLA tiers with the Sec. 3 service model.

A platform provider owns a small host pool and receives a customer
application with a choice of SLA tiers (bronze/silver/gold IC guarantees,
plus a latency clause). The provider quotes a fare per tier — LAAR makes
the fare track the guarantee (Fig. 12's headline) — refuses the tier its
cluster cannot honour, then deploys the accepted tier and produces an SLA
compliance report from a simulated billing period.

Run:  python examples/provider_contracting.py
"""

from repro.core import Host
from repro.dsps import two_level_trace
from repro.errors import InfeasibleError
from repro.laar import ExtendedApplication, MiddlewareConfig
from repro.service import SLA, Contract, PricingPlan, Provisioner
from repro.workloads import generate_application

GIGA = 1.0e9

TIERS = {
    "bronze": SLA(ic_target=0.3, max_latency=2.0),
    "silver": SLA(ic_target=0.5, max_latency=2.0),
    "gold": SLA(ic_target=0.95, max_latency=2.0),  # beyond this cluster
}


def main() -> None:
    # The customer's application, with its descriptor (Sec. 3 item ii).
    app = generate_application(seed=77)
    provider = Provisioner(
        list(app.deployment.hosts), search_time_limit=3.0
    )
    pricing = PricingPlan(
        base_fee=50.0, cpu_rate=0.0004, billing_period=3600.0
    )

    print(f"application: {app.name}"
          f" ({len(app.descriptor.graph.pes)} PEs,"
          f" Low {app.low_rate:.1f} / High {app.high_rate:.1f} t/s)")
    print(f"pricing: {pricing.base_fee:.0f} base +"
          f" {pricing.cpu_rate} per CPU-second, hourly billing\n")

    provisioned = {}
    for tier, sla in TIERS.items():
        contract = Contract(
            descriptor=app.descriptor,
            sla=sla,
            pricing=pricing,
            name=f"{app.name}/{tier}",
        )
        try:
            offer = provider.provision(contract)
        except InfeasibleError:
            print(f"{tier:>7s}: REFUSED — cannot guarantee"
                  f" IC >= {sla.ic_target} on this cluster")
            continue
        provisioned[tier] = offer
        print(f"{tier:>7s}: IC >= {offer.guaranteed_ic:.3f}"
              f" for {offer.fare:8.2f} per hour")

    # The customer picks silver; run one scaled-down 'billing period'.
    chosen = provisioned["silver"]
    print("\ncustomer accepts the silver tier; running a billing period...")
    trace = two_level_trace(
        app.low_rate, app.high_rate, duration=120.0, high_fraction=1 / 3
    )
    extended = ExtendedApplication(
        chosen.deployment,
        chosen.strategy,
        {"src": trace},
        middleware_config=MiddlewareConfig(
            monitor_interval=2.0, rate_tolerance=0.25, down_confirmation=2
        ),
    )
    metrics = extended.run()
    report = chosen.sla_report(metrics)

    print(f"  tuples processed: {metrics.tuples_processed}")
    print(f"  p99 latency: {report.observed_latency:.3f} s"
          f" (clause: <= {chosen.contract.sla.max_latency} s)")
    print(f"  IC clause met: {report.ic_clause_met}"
          f" | latency clause met: {report.latency_clause_met}")
    print(f"  SLA compliant: {report.compliant}")


if __name__ == "__main__":
    main()
