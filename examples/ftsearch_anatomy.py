"""FT-Search anatomy: watching the optimizer work.

Dissects one FT-Search run on a generated application: the search-space
size, how each pruning rule contributed (the Fig. 6 statistics for a
single instance), the anytime trajectory (first solution vs optimum,
Fig. 5), and a side-by-side of the resulting strategy against the greedy
baseline.

Run:  python examples/ftsearch_anatomy.py
"""

from repro.core import (
    OptimizationProblem,
    PruneRule,
    RateTable,
    ft_search,
    greedy_deactivation,
    internal_completeness,
    strategy_cost,
)
from repro.workloads import ClusterParams, GeneratorParams, generate_application

GIGA = 1.0e9


def main() -> None:
    # A mid-sized instance the search can usually close optimally.
    app = generate_application(
        seed=7,
        params=GeneratorParams(n_pes=10),
        cluster=ClusterParams(n_hosts=3, cores_per_host=8),
    )
    deployment = app.deployment
    n_pes = len(app.descriptor.graph.pes)
    n_configs = len(app.descriptor.configuration_space)
    print(f"instance: {n_pes} PEs x {n_configs} configurations")
    print(f"search space: 3^{n_pes * n_configs} ="
          f" {3 ** (n_pes * n_configs):.3e} activation strategies\n")

    problem = OptimizationProblem(deployment, ic_target=0.5)
    result = ft_search(problem, time_limit=30.0)

    stats = result.stats
    print(f"outcome: {result.outcome.value}"
          f" after {result.elapsed:.2f}s,"
          f" {stats.nodes_expanded} nodes,"
          f" {stats.values_tried} values tried,"
          f" {stats.solutions_found} solutions found")
    print(f"optimal cost {result.best_cost / GIGA:.3f} Gcyc/s,"
          f" IC {result.best_ic:.3f}\n")

    if result.first_solution_cost is not None:
        print("anytime behaviour (Fig. 5):")
        print(f"  first solution cost: "
              f"{result.first_solution_cost / GIGA:.3f} Gcyc/s"
              f" ({result.first_solution_cost / result.best_cost:.3f}x"
              " the optimum)")
        print(f"  first solution time: {result.first_solution_time:.4f}s"
              f" / optimum at {result.best_solution_time:.4f}s\n")

    print("pruning effectiveness (Fig. 6):")
    print("  rule   prunes   share   mean height")
    for rule in PruneRule:
        print(f"  {rule.value:5s}  {stats.prune_counts[rule]:7d}"
              f"  {stats.prune_share(rule):6.1%}"
              f"  {stats.mean_prune_height(rule):8.2f}")

    table = RateTable(app.descriptor)
    greedy = greedy_deactivation(deployment, table)
    print("\nversus the greedy baseline (GRD):")
    print(f"  GRD cost {strategy_cost(greedy, table) / GIGA:.3f} Gcyc/s,"
          f" pessimistic IC {internal_completeness(greedy):.3f}"
          " (no guarantee by construction)")
    print(f"  L.5 cost {result.best_cost / GIGA:.3f} Gcyc/s,"
          f" guaranteed IC {result.best_ic:.3f}")


if __name__ == "__main__":
    main()
