"""Quickstart: the paper's Sec. 4.1 pipeline, from model to simulation.

Builds the two-PE pipeline of Fig. 1, deploys it replicated on two hosts
(Fig. 2a), computes a LAAR activation strategy with FT-Search for an IC
target of 0.5, and then simulates both static active replication and LAAR
on a Low-High-Low input trace — reproducing the Fig. 3 effect: static
replication saturates during the burst, LAAR keeps up and costs less.

Run:  python examples/quickstart.py
"""

from repro.core import (
    ApplicationDescriptor,
    ApplicationGraph,
    ConfigurationSpace,
    EdgeProfile,
    Host,
    OptimizationProblem,
    ft_search,
    static_replication,
    strategy_cost,
)
from repro.dsps import two_level_trace
from repro.laar import ExtendedApplication, MiddlewareConfig
from repro.placement import balanced_placement

GIGA = 1.0e9


def build_application() -> ApplicationDescriptor:
    """Fig. 1: src -> PE1 -> PE2 -> sink, 100 ms/tuple, Low 4 t/s (80 %),
    High 8 t/s (20 %)."""
    graph = ApplicationGraph.build(
        sources=["src"],
        pes=["pe1", "pe2"],
        sinks=["sink"],
        edges=[("src", "pe1"), ("pe1", "pe2"), ("pe2", "sink")],
    )
    space = ConfigurationSpace.two_level("src", 4.0, 8.0, 0.8)
    profiles = {
        ("src", "pe1"): EdgeProfile(selectivity=1.0, cpu_cost=0.1 * GIGA),
        ("pe1", "pe2"): EdgeProfile(selectivity=1.0, cpu_cost=0.1 * GIGA),
    }
    return ApplicationDescriptor(graph, profiles, space, name="quickstart")


def main() -> None:
    descriptor = build_application()

    # Two hosts of 1e9 cycles/s each: the High configuration with full
    # replication needs 1.6e9 per host - 160 % of what is available.
    hosts = [
        Host("h0", cores=2, cycles_per_core=0.5 * GIGA),
        Host("h1", cores=2, cycles_per_core=0.5 * GIGA),
    ]
    deployment = balanced_placement(descriptor, hosts, replication_factor=2)

    # Off-line phase: FT-Search solves Eq. 9-12 for IC >= 0.5.
    result = ft_search(
        OptimizationProblem(deployment, ic_target=0.5), time_limit=10.0
    )
    print(f"FT-Search: {result.outcome.value}, "
          f"cost {result.best_cost / GIGA:.2f} Gcycles/s-period, "
          f"guaranteed IC {result.best_ic:.3f}")
    for pe in descriptor.graph.pes:
        states = [
            f"c{c}:{result.strategy.active_count(pe, c)} active"
            for c in range(2)
        ]
        print(f"  {pe}: {', '.join(states)}")

    # Runtime phase: play a 90 s trace with a 30 s High burst.
    trace = {"src": two_level_trace(4.0, 8.0, duration=90.0)}

    sr = static_replication(deployment)
    static_metrics = ExtendedApplication(
        deployment, sr, trace,
        middleware_config=MiddlewareConfig(dynamic=False),
    ).run()

    laar_metrics = ExtendedApplication(
        deployment, result.strategy, trace
    ).run()

    print("\n              static (SR)      LAAR (L.5)")
    print(f"model cost    {strategy_cost(sr) / GIGA:10.2f}    "
          f"{result.best_cost / GIGA:10.2f}   (Gcycles/s)")
    print(f"CPU seconds   {static_metrics.total_cpu_time:10.1f}    "
          f"{laar_metrics.total_cpu_time:10.1f}")
    print(f"tuples in     {static_metrics.total_input:10d}    "
          f"{laar_metrics.total_input:10d}")
    print(f"tuples out    {static_metrics.total_output:10d}    "
          f"{laar_metrics.total_output:10d}")
    print(f"drops         {static_metrics.logical_dropped:10d}    "
          f"{laar_metrics.logical_dropped:10d}")
    peak = (35.0, 58.0)
    print(f"peak out t/s  {static_metrics.output_rate_in_window(*peak):10.2f}    "
          f"{laar_metrics.output_rate_in_window(*peak):10.2f}   (input 8.0)")
    switches = ", ".join(
        f"t={t:.0f}s->config{c}" for t, c in laar_metrics.config_switches
    )
    print(f"\nLAAR configuration switches: {switches}")


if __name__ == "__main__":
    main()
